"""Shared machinery for the figure-reproduction benchmarks.

Every benchmark prints the three-panel table of its figure (time /
candidates / passes per support level) and appends it to
``benchmarks/results.txt`` so the numbers survive pytest's output
capturing; EXPERIMENTS.md is written from those tables.

Environment knobs:

* ``REPRO_BENCH_SCALE``  — |D| of the generated databases (default 2000;
  the paper uses 100000).
* ``REPRO_BENCH_BUDGET`` — per-miner time budget per cell in seconds
  (default 45).  Apriori cells that exceed it are reported as DNF lower
  bounds, like the paper's ">2 orders of magnitude" Figure 4c points.
"""

from pathlib import Path

import pytest

from repro.bench.experiments import ALL_EXPERIMENTS, bench_scale, build_database
from repro.bench.harness import bench_budget, format_rows, run_sweep

RESULTS_PATH = Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    # keep the previous session's tables around as .prev so a partial
    # re-run (e.g. one panel) never destroys a full grid's results
    if RESULTS_PATH.exists():
        RESULTS_PATH.replace(RESULTS_PATH.with_suffix(".prev.txt"))
    yield


def run_experiment(experiment_id, capsys=None):
    """Run one figure panel end-to-end and return its rows."""
    spec = ALL_EXPERIMENTS[experiment_id]
    db = build_database(spec)
    rows = run_sweep(
        db, spec.database, spec.supports_percent,
        time_budget=bench_budget(),
    )
    title = "%s: %s (|L|=%d, |D|=%d)\npaper: %s" % (
        experiment_id, spec.database, spec.num_patterns, len(db),
        spec.paper_expectation,
    )
    report(format_rows(rows, title), capsys)
    return rows


def report(text, capsys=None):
    """Print a table past pytest's capture and append it to results.txt."""
    with open(RESULTS_PATH, "a", encoding="utf-8") as handle:
        handle.write(text)
        handle.write("\n\n")
    if capsys is not None:
        with capsys.disabled():
            print("\n" + text)
    else:
        print("\n" + text)


def rows_by_algorithm(rows, support):
    """Index a sweep's rows: algorithm -> CellResult at one support."""
    return {
        row.algorithm: row
        for row in rows
        if row.min_support_percent == support
    }


def scale_note():
    return "|D|=%d, budget=%.0fs" % (bench_scale(), bench_budget())
