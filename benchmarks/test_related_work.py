"""Related-work comparison (paper Section 5).

"Others, like Partition [16] and Sampling [18], proposed effective ways
to reduce the I/O time.  However, they are still inefficient when the
maximal frequent itemsets are long."  This benchmark measures exactly
that claim: on a concentrated database all of Partition, Sampling and
Apriori must materialise the full frequent collection (CPU-bound), while
Pincer-Search's candidate count collapses; the I/O side shows the
reverse ranking (Partition/Sampling use 2 and ~1 full reads).  The
randomized miner of Gunopulos et al. [5] is run with bounded restarts to
show its trade-off: cheap, sound, but not complete.
"""

import time

import pytest

from conftest import report

from repro.algorithms.apriori import Apriori
from repro.algorithms.partition import PartitionMiner
from repro.algorithms.randomized import RandomizedMFS
from repro.algorithms.sampling import SamplingMiner
from repro.bench.experiments import ExperimentSpec, build_database
from repro.core.pincer import PincerSearch

SPEC = ExperimentSpec("related-work", "T20.I10.D100K", 50, (12.0,), "")


@pytest.mark.benchmark(group="related-work")
def test_related_work_comparison(benchmark, capsys):
    support = SPEC.supports_percent[0]
    db = build_database(SPEC)
    miners = [
        ("pincer-search", PincerSearch()),
        ("apriori", Apriori()),
        ("partition [16]", PartitionMiner(num_partitions=4)),
        ("sampling [18]", SamplingMiner(sample_fraction=0.25, seed=3)),
    ]
    lines = []
    reference = None
    for label, miner in miners:
        started = time.perf_counter()
        result = miner.mine(db, support / 100.0)
        seconds = time.perf_counter() - started
        if reference is None:
            reference = result.mfs
        assert result.mfs == reference, "%s disagrees" % label
        lines.append(
            "  %-16s %8.3fs  passes=%2d  counted=%7d"
            % (label, seconds, result.stats.num_passes,
               result.stats.total_candidates)
        )

    # the randomized miner is sound but has no completeness guarantee
    randomized = RandomizedMFS(max_restarts=60, stall_limit=30, seed=1)
    started = time.perf_counter()
    partial = randomized.mine(db, support / 100.0)
    seconds = time.perf_counter() - started
    assert set(partial.mfs) <= set(reference)
    lines.append(
        "  %-16s %8.3fs  found %d of %d maximal itemsets (sound, "
        "not complete)"
        % ("randomized [5]", seconds, len(partial.mfs), len(reference))
    )

    report(
        "related-work comparison on %s at %g%% (|D|=%d):\n%s"
        % (SPEC.database, support, len(db), "\n".join(lines)),
        capsys,
    )
    benchmark.pedantic(
        lambda: PincerSearch().mine(db, support / 100.0),
        rounds=1, iterations=1,
    )
