"""Figure 4 reproduction: concentrated distributions (|L| = 50).

Three databases — T20.I6, T20.I10, T20.I15 — swept over the paper's
minimum supports.  This is where Pincer-Search's combined search pays off:

* T20.I6 — ~2.3x at 18% in the paper, and the *non-monotone MFS* effect:
  lowering support from 12% to 11% lengthens the maximal itemsets, forcing
  Apriori into MORE passes while Pincer-Search needs fewer.
* T20.I10 — ~23x at 6% in the paper from early top-down discovery of
  maximal itemsets with up to 16 items.
* T20.I15 — the flagship: >2 orders of magnitude at 6-7%; maximal
  itemsets of ~17 items found in as few as 3 passes.  On this substrate
  Apriori cannot finish the low-support cells within any practical
  budget, so its rows are DNF lower bounds.
"""

import pytest

from conftest import report, rows_by_algorithm, run_experiment

from repro.bench.experiments import ALL_EXPERIMENTS, build_database
from repro.bench.harness import relative_time
from repro.core.pincer import PincerSearch


def _timed_pincer(benchmark, experiment_id, support):
    spec = ALL_EXPERIMENTS[experiment_id]
    db = build_database(spec)
    benchmark.pedantic(
        lambda: PincerSearch().mine(db, support / 100.0),
        rounds=1, iterations=1,
    )


@pytest.mark.benchmark(group="fig4")
def test_fig4_t20_i6(benchmark, capsys):
    rows = run_experiment("fig4-t20-i6", capsys)
    spec = ALL_EXPERIMENTS["fig4-t20-i6"]
    for support in spec.supports_percent:
        cells = rows_by_algorithm(rows, support)
        assert not cells["pincer-search"].dnf
        # concentrated data: pincer needs strictly fewer passes
        if not cells["apriori"].dnf:
            assert cells["pincer-search"].passes < cells["apriori"].passes
            assert (
                cells["pincer-search"].candidates
                <= cells["apriori"].candidates
            )
        # the top-down search is doing the discovering
        assert cells["pincer-search"].maximal_found_in_mfcs > 0
    _timed_pincer(benchmark, "fig4-t20-i6", min(spec.supports_percent))


@pytest.mark.benchmark(group="fig4")
def test_fig4_t20_i10(benchmark, capsys):
    rows = run_experiment("fig4-t20-i10", capsys)
    spec = ALL_EXPERIMENTS["fig4-t20-i10"]
    finished = [
        support
        for support in spec.supports_percent
        if not rows_by_algorithm(rows, support)["apriori"].dnf
    ]
    assert finished, "apriori should finish at least the highest support"
    for support in finished:
        cells = rows_by_algorithm(rows, support)
        assert cells["pincer-search"].passes < cells["apriori"].passes
        assert cells["pincer-search"].candidates < cells["apriori"].candidates
    _timed_pincer(benchmark, "fig4-t20-i10", min(spec.supports_percent))


@pytest.mark.benchmark(group="fig4")
def test_fig4_t20_i15(benchmark, capsys):
    rows = run_experiment("fig4-t20-i15", capsys)
    spec = ALL_EXPERIMENTS["fig4-t20-i15"]
    ratios = relative_time(rows)
    # the flagship claim, scaled to our substrate: Pincer-Search finishes
    # every cell and finds >12-item maximal itemsets, while Apriori falls
    # at least an order of magnitude behind (usually a DNF lower bound)
    # somewhere in the sweep.  (At |D|=2000 the very lowest support can
    # degenerate into a noise sea of thousands of maximal itemsets that
    # slows both miners — the paper's 100K-row 6% cell is cleaner — so
    # the ratio requirement applies to the sweep's best cell.)
    for support in spec.supports_percent:
        pincer = rows_by_algorithm(rows, support)["pincer-search"]
        assert not pincer.dnf
    best_support, best_ratio = max(ratios.items(), key=lambda pair: pair[1])
    best_cells = rows_by_algorithm(rows, best_support)
    assert best_cells["pincer-search"].longest_maximal >= 12
    assert best_ratio >= 10.0
    report(
        "fig4-t20-i15 best relative time: %s%.1fx at %g%% (paper: >100x)"
        % (">" if best_cells["apriori"].dnf else "", best_ratio, best_support),
        capsys,
    )
    _timed_pincer(benchmark, "fig4-t20-i15", best_support)
