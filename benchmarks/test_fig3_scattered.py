"""Figure 3 reproduction: scattered distributions (|L| = 2000).

Three databases — T5.I2, T10.I4, T20.I6 — each swept over the paper's
minimum supports, reporting execution time, candidates (after pass 2,
including MFCS candidates), and passes for Apriori vs adaptive
Pincer-Search.

Expected shape (paper Section 4.2, "Scattered Distributions"): the
frequent itemsets are scattered and short, so the MFCS has little to
prune; the adaptive algorithm detects this at pass 2 (few frequent
2-itemsets) and falls back to the bottom-up search, keeping Pincer-Search
within a small constant of Apriori.  The paper's C implementation eked
out up to 1.7x from saved I/O; our in-memory substrate makes I/O free, so
parity (ratio around 1) is the expected outcome here — the headline
Pincer-Search wins live in Figure 4.
"""

import pytest

from conftest import rows_by_algorithm, run_experiment

from repro.bench.experiments import ALL_EXPERIMENTS, build_database
from repro.core.pincer import PincerSearch


def _panel(benchmark, capsys, experiment_id):
    rows = run_experiment(experiment_id, capsys)
    spec = ALL_EXPERIMENTS[experiment_id]
    db = build_database(spec)

    # register the hardest cell (lowest support) as the timed benchmark
    hardest = min(spec.supports_percent)
    benchmark.pedantic(
        lambda: PincerSearch().mine(db, hardest / 100.0),
        rounds=1, iterations=1,
    )

    # shape assertions: both miners agreed (checked inside run_cell);
    # pincer's pass count never exceeds apriori's on any cell (it counts
    # the same levels, possibly finishing early)
    for support in spec.supports_percent:
        cells = rows_by_algorithm(rows, support)
        pincer = cells["pincer-search"]
        apriori = cells["apriori"]
        assert not pincer.dnf, "pincer-search must finish every cell"
        if not apriori.dnf:
            assert pincer.passes <= apriori.passes + 1
    return rows


@pytest.mark.benchmark(group="fig3")
def test_fig3_t5_i2(benchmark, capsys):
    _panel(benchmark, capsys, "fig3-t5-i2")


@pytest.mark.benchmark(group="fig3")
def test_fig3_t10_i4(benchmark, capsys):
    _panel(benchmark, capsys, "fig3-t10-i4")


@pytest.mark.benchmark(group="fig3")
def test_fig3_t20_i6(benchmark, capsys):
    _panel(benchmark, capsys, "fig3-t20-i6")
