"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not part of the paper's figures; these isolate the contribution of each
mechanism:

* **MFCS on/off** — the same bottom-up machinery with the top-down search
  disabled (``NeverMaintain``) vs the pure pincer, on a concentrated
  database: how much do Observation-2 pruning and early maximal discovery
  actually save?
* **adaptive vs pure** — what the Section 3.5 adaptivity buys on a
  scattered database (where the pure MFCS maintenance is the known
  pathology), and what it costs on a concentrated one.
* **counting engines** — naive scan vs hash tree vs trie vs vertical
  bitmaps, same algorithm, same answers.
* **prune-uncovered extension** — the beyond-the-paper candidate filter
  (drop candidates not covered by MFS ∪ MFCS): candidate counts may only
  shrink, answers must not change.
"""

import time

import pytest

from conftest import report

from repro.bench.experiments import ExperimentSpec, build_database
from repro.core.adaptive import NeverMaintain
from repro.core.pincer import PincerSearch
from repro.db.counting import available_engines

CONCENTRATED = ExperimentSpec(
    "ablation-concentrated", "T20.I10.D100K", 50, (9.0,), ""
)
SCATTERED = ExperimentSpec(
    "ablation-scattered", "T10.I4.D100K", 2000, (1.0,), ""
)


def _run(miner, spec, support):
    db = build_database(spec)
    started = time.perf_counter()
    result = miner.mine(db, support / 100.0)
    return result, time.perf_counter() - started


def _line(tag, result, seconds):
    return "%-28s %8.3fs  passes=%2d  candidates=%6d  |MFS|=%d" % (
        tag, seconds, result.stats.num_passes,
        result.stats.total_candidates, len(result.mfs),
    )


@pytest.mark.benchmark(group="ablation")
def test_mfcs_ablation(benchmark, capsys):
    support = CONCENTRATED.supports_percent[0]
    with_mfcs, seconds_on = _run(
        PincerSearch(adaptive=False), CONCENTRATED, support
    )
    without_mfcs, seconds_off = _run(
        PincerSearch(policy=NeverMaintain()), CONCENTRATED, support
    )
    assert with_mfcs.mfs == without_mfcs.mfs
    # the whole point of the MFCS: fewer passes and fewer candidates on
    # concentrated data
    assert with_mfcs.stats.num_passes < without_mfcs.stats.num_passes
    assert (
        with_mfcs.stats.total_candidates
        < without_mfcs.stats.total_candidates
    )
    report(
        "MFCS ablation on %s at %g%%:\n%s\n%s"
        % (
            CONCENTRATED.database, support,
            _line("pincer (MFCS on)", with_mfcs, seconds_on),
            _line("pincer (MFCS off)", without_mfcs, seconds_off),
        ),
        capsys,
    )
    db = build_database(CONCENTRATED)
    benchmark.pedantic(
        lambda: PincerSearch(adaptive=False).mine(db, support / 100.0),
        rounds=1, iterations=1,
    )


@pytest.mark.benchmark(group="ablation")
def test_adaptive_vs_pure(benchmark, capsys):
    lines = []
    for spec, support in ((SCATTERED, SCATTERED.supports_percent[0]),
                          (CONCENTRATED, CONCENTRATED.supports_percent[0])):
        pure, pure_seconds = _run(
            PincerSearch(adaptive=False), spec, support
        )
        adaptive, adaptive_seconds = _run(
            PincerSearch(adaptive=True), spec, support
        )
        assert pure.mfs == adaptive.mfs
        lines.append("%s at %g%%:" % (spec.database, support))
        lines.append("  " + _line("pure", pure, pure_seconds))
        lines.append("  " + _line("adaptive", adaptive, adaptive_seconds))
        if spec is SCATTERED:
            # Section 3.5's motivation: on scattered data the adaptive
            # version must not be slower than the pure one
            assert adaptive_seconds <= pure_seconds * 1.5
    report("adaptive vs pure:\n" + "\n".join(lines), capsys)
    db = build_database(SCATTERED)
    benchmark.pedantic(
        lambda: PincerSearch(adaptive=True).mine(
            db, SCATTERED.supports_percent[0] / 100.0
        ),
        rounds=1, iterations=1,
    )


@pytest.mark.benchmark(group="ablation")
def test_counting_engines(benchmark, capsys):
    spec, support = SCATTERED, 1.5
    db = build_database(spec)
    lines, reference = [], None
    for engine in available_engines():
        started = time.perf_counter()
        result = PincerSearch(engine=engine).mine(db, support / 100.0)
        seconds = time.perf_counter() - started
        if reference is None:
            reference = result.mfs
        assert result.mfs == reference
        lines.append("  %-10s %8.3fs" % (engine, seconds))
    report(
        "counting engines on %s at %g%%:\n%s"
        % (spec.database, support, "\n".join(lines)),
        capsys,
    )
    benchmark.pedantic(
        lambda: PincerSearch(engine="bitmap").mine(db, support / 100.0),
        rounds=1, iterations=1,
    )


@pytest.mark.benchmark(group="ablation")
def test_prune_uncovered_extension(benchmark, capsys):
    support = CONCENTRATED.supports_percent[0]
    plain, plain_seconds = _run(
        PincerSearch(adaptive=False), CONCENTRATED, support
    )
    extended, extended_seconds = _run(
        PincerSearch(adaptive=False, prune_uncovered=True),
        CONCENTRATED, support,
    )
    assert plain.mfs == extended.mfs
    assert (
        extended.stats.total_candidates <= plain.stats.total_candidates
    )
    report(
        "prune-uncovered extension on %s at %g%%:\n%s\n%s"
        % (
            CONCENTRATED.database, support,
            _line("paper pruning", plain, plain_seconds),
            _line("+ uncovered prune", extended, extended_seconds),
        ),
        capsys,
    )
    db = build_database(CONCENTRATED)
    benchmark.pedantic(
        lambda: PincerSearch(
            adaptive=False, prune_uncovered=True
        ).mine(db, support / 100.0),
        rounds=1, iterations=1,
    )
