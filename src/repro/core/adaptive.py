"""Adaptivity policy: when is maintaining the MFCS worthwhile?

Section 3.5 of the paper: "In general, one may not want to use the 'pure'
version of the Pincer Search algorithm.  For instance, in some case there
may be many 2-itemsets, but only a few of them are frequent.  In this case
it may not be worthwhile to maintain the MFCS ... The algorithm we have
implemented is in fact an adaptive version ... This adaptive version does
not maintain the MFCS, when doing so would be counterproductive."

The paper does not publish the exact heuristic, so we expose it as a
policy object with the two natural triggers and paper-guided defaults:

* **size blow-up** — splitting on many scattered infrequent itemsets can
  make the MFCS explode; when its cardinality exceeds an absolute cap or a
  multiple of the bottom-up candidate set, the top-down search costs more
  support counting than it can ever save;
* **futility** — if several consecutive passes counted MFCS elements
  without ever finding one frequent (no maximal itemset discovered
  top-down), the distribution is scattered and the MFCS is pure overhead.

Once the policy gives up, Pincer-Search degenerates gracefully into
Apriori (the MFS is then completed bottom-up), which is exactly the
behaviour the paper describes for its evaluated implementation — and the
"very small overhead of deciding when to use the MFCS" stays in the
measured runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.logsetup import get_logger

logger = get_logger("core.adaptive")


class PassRateEstimator:
    """EWMA of the observed counting throughput (candidates/second).

    The miner times each pass's ``engine.count`` call and feeds the
    smoothed rate back to the engine via
    :meth:`repro.db.base.SupportCounter.note_pass_rate`.  Engines with an
    internal mode choice — the shared-memory plane's row/candidate
    scheduler (:class:`repro.db.parallel.AdaptiveShardScheduler`) — use
    it to predict whether the next pass is long enough to be worth
    work-stealing coordination.  The EWMA keeps one noisy pass (a cold
    cache, a page-in burst) from whipsawing that prediction.
    """

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self._alpha = alpha
        #: smoothed candidates/second; None until the first observation
        self.rate: "float | None" = None

    def observe(self, num_candidates: int, seconds: float) -> "float | None":
        """Record one pass; returns the updated smoothed rate."""
        if num_candidates > 0 and seconds > 0.0:
            rate = num_candidates / seconds
            self.rate = (
                rate
                if self.rate is None
                else (1.0 - self._alpha) * self.rate + self._alpha * rate
            )
        return self.rate


@dataclass
class AdaptivePolicy:
    """Decides each pass whether to keep maintaining the MFCS.

    Parameters
    ----------
    mfcs_size_cap:
        Hard upper bound on ``|MFCS|``; above it the MFCS is abandoned.
    mfcs_ratio_cap:
        Abandon when ``|MFCS| > mfcs_ratio_cap * max(1, |C_k|)``.
    futile_passes:
        Abandon after this many consecutive passes (from pass
        ``min_passes`` on) in which MFCS candidates were counted but no
        maximal frequent itemset was found top-down.  ``0`` disables the
        futility trigger.
    min_passes:
        Give the MFCS at least this many passes before judging futility —
        pass 1 almost always only shrinks the universe element (the paper's
        "goes down m levels in one pass" effect) without finding anything.
    mfcs_work_cap:
        Per-pass budget (item-mask lookups) for the MFCS-gen update; see
        :meth:`repro.core.mfcs.MFCS.update`.  On scattered distributions
        the pass-2 update amounts to maximal-clique maintenance over the
        frequent-pair graph, and this budget is what bounds the "very
        small overhead of deciding when to use the MFCS" the paper
        accounts for in its measurements.
    frequent_ratio_floor / ratio_check_pass / min_ratio_sample:
        The paper's own adaptivity cue, checked *before* the MFCS-gen
        update of pass ``ratio_check_pass`` (the 2-itemset pass): "there
        may be many 2-itemsets, but only a few of them are frequent.  In
        this case it may not be worthwhile to maintain the MFCS, since
        there will not be many frequent itemsets to discover."  On the
        paper's own benchmark families the pass-2 frequent fraction
        separates cleanly: concentrated distributions (``|L| = 50``) sit
        at 0.08-0.17 while scattered ones (``|L| = 2000``) sit below
        0.02, so the 0.04 floor decides correctly with a wide margin
        while skipping the maximal-clique-like MFCS blow-up entirely.
        The check is skipped when fewer than ``min_ratio_sample``
        candidates were counted (tiny universes tell us nothing).
    abandon_length_cap:
        Abandonment is *blocked* once a maximal frequent itemset longer
        than this has been discovered.  Falling back to the bottom-up
        search would materialise the subsets of every discovered maximal
        itemset level by level — exponential in their length, which is
        exactly the cost the MFCS exists to avoid.  The other triggers can
        also misfire in the concentrated endgame: when Observation-2
        pruning empties the bottom-up candidate set while the MFCS still
        holds hundreds of near-maximal elements, the size/ratio numbers
        look pathological precisely because the algorithm is *winning*.
    """

    mfcs_size_cap: int = 10000
    mfcs_ratio_cap: float = 5.0
    futile_passes: int = 4
    min_passes: int = 3
    mfcs_work_cap: int = 2_000_000
    abandon_length_cap: int = 12
    frequent_ratio_floor: float = 0.04
    ratio_check_pass: int = 2
    min_ratio_sample: int = 100

    def __post_init__(self) -> None:
        if self.mfcs_size_cap < 1:
            raise ValueError("mfcs_size_cap must be positive")
        if self.mfcs_ratio_cap <= 0:
            raise ValueError("mfcs_ratio_cap must be positive")
        if self.futile_passes < 0 or self.min_passes < 1:
            raise ValueError("pass thresholds must be non-negative / positive")
        self._futile_streak = 0
        self._abandoned = False
        self.abandon_reason: "str | None" = None

    @property
    def abandoned(self) -> bool:
        """True once the policy has permanently given up on the MFCS."""
        return self._abandoned

    @property
    def update_size_cap(self) -> "int | None":
        """Cap applied *during* MFCS-gen; None disables mid-update aborts.

        Splitting the MFCS on a large batch of infrequent itemsets (the
        pass-2 blow-up of scattered distributions) can explode it far past
        any useful size before the per-pass check runs, so the cap is also
        enforced inside the update.
        """
        return self.mfcs_size_cap

    @property
    def update_work_cap(self) -> "int | None":
        """Work budget per MFCS-gen update; None disables it."""
        return self.mfcs_work_cap

    def abandon(self) -> None:
        """Force permanent abandonment (called on a mid-update cap abort)."""
        logger.info("MFCS-gen update blew past its size/work cap; abandoning")
        self._abandoned = True
        self.abandon_reason = "mfcs-update-cap"

    def keep_after_classification(
        self,
        pass_number: int,
        num_frequent: int,
        num_counted: int,
        longest_maximal: int = 0,
        mfcs_size: int = 0,
        candidate_bound: "int | None" = None,
    ) -> bool:
        """Pre-update check: is this pass still worth an MFCS update?

        Called after the pass's candidates are classified but *before*
        MFCS-gen runs, so a hopeless (scattered) pass 2 skips the
        expensive update altogether.  Two triggers:

        * the paper's frequent-fraction cue (``frequent_ratio_floor``);
        * the Geerts–Goethals–Van den Bussche bound: ``candidate_bound``
          (see :func:`repro.core.bitset.candidate_upper_bound`) is a
          *provable* upper bound on the next bottom-up candidate count,
          so ``mfcs_size > mfcs_ratio_cap * bound`` implies the end-of-pass
          ratio trigger must also fire under MFCS-gen's usual growth —
          this just fires it before the update instead of after.
        """
        if self._abandoned:
            return False
        if longest_maximal > self.abandon_length_cap:
            return True
        if (
            candidate_bound is not None
            and pass_number >= self.min_passes
            and mfcs_size > self.mfcs_ratio_cap * max(1, candidate_bound)
        ):
            logger.info(
                "pass %d: |MFCS|=%d over %.1fx the candidate bound %d; "
                "abandoning MFCS before the update",
                pass_number, mfcs_size, self.mfcs_ratio_cap, candidate_bound,
            )
            self._abandoned = True
            self.abandon_reason = "candidate-bound-ratio"
            return False
        if pass_number != self.ratio_check_pass:
            return True
        if num_counted < self.min_ratio_sample:
            return True
        if num_frequent / num_counted < self.frequent_ratio_floor:
            logger.info(
                "pass %d frequent ratio %.4f below floor %.4f; "
                "abandoning MFCS before the update",
                pass_number, num_frequent / num_counted,
                self.frequent_ratio_floor,
            )
            self._abandoned = True
            self.abandon_reason = "frequent-ratio"
            return False
        return True

    def keep_mfcs(
        self,
        pass_number: int,
        mfcs_size: int,
        num_candidates: int,
        maximal_found_this_pass: int,
        longest_maximal: int = 0,
    ) -> bool:
        """Report the pass outcome; returns False once the MFCS should go.

        Giving up is permanent: re-growing an abandoned MFCS would need the
        full infrequent-set history, which the adaptive algorithm
        deliberately stopped maintaining.  ``longest_maximal`` is the
        length of the longest maximal frequent itemset discovered so far;
        past ``abandon_length_cap`` the MFCS is kept unconditionally.
        """
        if self._abandoned:
            return False
        if longest_maximal > self.abandon_length_cap:
            self._futile_streak = 0
            return True
        if mfcs_size > self.mfcs_size_cap:
            logger.info(
                "pass %d: |MFCS|=%d over size cap %d; abandoning",
                pass_number, mfcs_size, self.mfcs_size_cap,
            )
            self._abandoned = True
            self.abandon_reason = "size-cap"
            return False
        if mfcs_size > self.mfcs_ratio_cap * max(1, num_candidates):
            logger.info(
                "pass %d: |MFCS|=%d over %.1fx the %d candidates; abandoning",
                pass_number, mfcs_size, self.mfcs_ratio_cap, num_candidates,
            )
            self._abandoned = True
            self.abandon_reason = "ratio-cap"
            return False
        if self.futile_passes:
            if maximal_found_this_pass:
                self._futile_streak = 0
            elif pass_number >= self.min_passes:
                self._futile_streak += 1
                if self._futile_streak >= self.futile_passes:
                    logger.info(
                        "pass %d: %d futile MFCS passes in a row; abandoning",
                        pass_number, self._futile_streak,
                    )
                    self._abandoned = True
                    self.abandon_reason = "futility"
                    return False
        return True


class AlwaysMaintain(AdaptivePolicy):
    """Policy of the *pure* Pincer-Search: never abandon the MFCS."""

    def __init__(self) -> None:
        super().__init__()

    @property
    def update_size_cap(self) -> "int | None":
        return None

    @property
    def update_work_cap(self) -> "int | None":
        return None

    def abandon(self) -> None:
        raise AssertionError("the pure Pincer-Search never abandons the MFCS")

    def keep_after_classification(
        self,
        pass_number: int,
        num_frequent: int,
        num_counted: int,
        longest_maximal: int = 0,
        mfcs_size: int = 0,
        candidate_bound: "int | None" = None,
    ) -> bool:
        return True

    def keep_mfcs(
        self,
        pass_number: int,
        mfcs_size: int,
        num_candidates: int,
        maximal_found_this_pass: int,
        longest_maximal: int = 0,
    ) -> bool:
        return True


class NeverMaintain(AdaptivePolicy):
    """Policy that disables the MFCS from the start (Apriori behaviour).

    Exists for the MFCS on/off ablation benchmark.
    """

    def __init__(self) -> None:
        super().__init__()
        self._abandoned = True
        self.abandon_reason = "never-maintain"

    def keep_mfcs(
        self,
        pass_number: int,
        mfcs_size: int,
        num_candidates: int,
        maximal_found_this_pass: int,
        longest_maximal: int = 0,
    ) -> bool:
        return False
