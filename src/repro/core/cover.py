"""Fast subset-cover queries over a family of itemsets.

Both halves of Pincer-Search keep asking one question about a *family* of
itemsets: "is this probe a subset of some member?"  The bottom-up side
asks it against the MFS (Observation-2 pruning in ``L_k`` filtering and
the new prune); the top-down side asks it against the MFCS (minimality
maintenance in MFCS-gen, and finding the elements an infrequent itemset
splits).

A linear scan is O(|family| · |probe|) per query and dominated the
profile, so :class:`CoverIndex` keeps an inverted index from item to a
bitmask of member ids.  Then

* ``covers(probe)`` — does some member contain all items of ``probe``? —
  is the AND of the probe's item masks (non-zero means yes), and
* ``supersets_of(probe)`` decodes the same AND into the member itemsets,

turning each query into a few arbitrary-precision integer operations.
Removals just clear a bit in the ``alive`` mask; ids are recycled through
a free list so long-running MFCS churn does not grow the masks forever.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from .itemset import Itemset


class CoverIndex:
    """Inverted-index family of itemsets supporting subset-cover queries."""

    def __init__(self, members: Iterable[Itemset] = ()) -> None:
        self._members: List[Optional[Itemset]] = []
        self._slot_of: Dict[Itemset, int] = {}
        self._item_masks: Dict[int, int] = {}
        self._alive = 0
        self._free_slots: List[int] = []
        for member in members:
            self.add(member)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slot_of)

    def __iter__(self) -> Iterator[Itemset]:
        return iter(list(self._slot_of))

    def __contains__(self, member: Itemset) -> bool:
        return member in self._slot_of

    def __bool__(self) -> bool:
        return bool(self._slot_of)

    def __repr__(self) -> str:
        return "CoverIndex(%d members)" % len(self._slot_of)

    @property
    def members(self) -> List[Itemset]:
        """Snapshot of the current members."""
        return list(self._slot_of)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, member: Itemset) -> bool:
        """Insert a member; returns False if it was already present."""
        if member in self._slot_of:
            return False
        if self._free_slots:
            slot = self._free_slots.pop()
            self._members[slot] = member
        else:
            slot = len(self._members)
            self._members.append(member)
        self._slot_of[member] = slot
        bit = 1 << slot
        self._alive |= bit
        for item in member:
            self._item_masks[item] = self._item_masks.get(item, 0) | bit
        return True

    def discard(self, member: Itemset) -> bool:
        """Remove a member; returns False if it was not present.

        Item masks keep the stale bit — queries mask with ``alive`` — and
        the slot is recycled after its bit is scrubbed on reuse.
        """
        slot = self._slot_of.pop(member, None)
        if slot is None:
            return False
        bit = 1 << slot
        self._alive &= ~bit
        for item in member:
            self._item_masks[item] &= ~bit
        self._members[slot] = None
        self._free_slots.append(slot)
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def covers(self, probe: Itemset) -> bool:
        """True iff some member is a superset of ``probe``.

        The empty probe is covered whenever the family is non-empty.
        """
        return self._matches(probe) != 0

    def covers_strictly(self, probe: Itemset) -> bool:
        """True iff some member is a *proper* superset of ``probe``."""
        matches = self._matches(probe)
        slot = self._slot_of.get(probe)
        if slot is not None:
            matches &= ~(1 << slot)
        return matches != 0

    def supersets_of(self, probe: Itemset) -> List[Itemset]:
        """All members that contain ``probe``."""
        matches = self._matches(probe)
        found: List[Itemset] = []
        while matches:
            low_bit = matches & -matches
            member = self._members[low_bit.bit_length() - 1]
            assert member is not None
            found.append(member)
            matches ^= low_bit
        return found

    def _matches(self, probe: Itemset) -> int:
        accumulator = self._alive
        masks = self._item_masks
        for item in probe:
            mask = masks.get(item)
            if mask is None:
                return 0
            accumulator &= mask
            if not accumulator:
                return 0
        return accumulator


def as_cover(family: object) -> CoverIndex:
    """Coerce an iterable of itemsets (or a CoverIndex) into a CoverIndex."""
    if isinstance(family, CoverIndex):
        return family
    return CoverIndex(family)  # type: ignore[arg-type]
