"""Fast subset-cover queries over a family of itemsets.

Both halves of Pincer-Search keep asking one question about a *family* of
itemsets: "is this probe a subset of some member?"  The bottom-up side
asks it against the MFS (Observation-2 pruning in ``L_k`` filtering and
the new prune); the top-down side asks it against the MFCS (minimality
maintenance in MFCS-gen, and finding the elements an infrequent itemset
splits).

A linear scan is O(|family| · |probe|) per query and dominated the
profile, so :class:`CoverIndex` keeps an inverted index from item to a
bitmask of member ids.  Then

* ``covers(probe)`` — does some member contain all items of ``probe``? —
  is the AND of the probe's item masks (non-zero means yes), and
* ``supersets_of(probe)`` decodes the same AND into the member itemsets,

turning each query into a few arbitrary-precision integer operations.
Removals just clear a bit in the ``alive`` mask; ids are recycled through
a free list so long-running MFCS churn does not grow the masks forever.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from .itemset import Itemset
from .maskstore import CompressedMaskStore


class CoverIndex:
    """Inverted-index family of itemsets supporting subset-cover queries."""

    def __init__(self, members: Iterable[Itemset] = ()) -> None:
        self._members: List[Optional[Itemset]] = []
        self._slot_of: Dict[Itemset, int] = {}
        self._item_masks: Dict[int, int] = {}
        self._alive = 0
        self._free_slots: List[int] = []
        for member in members:
            self.add(member)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slot_of)

    def __iter__(self) -> Iterator[Itemset]:
        return iter(list(self._slot_of))

    def __contains__(self, member: Itemset) -> bool:
        return member in self._slot_of

    def __bool__(self) -> bool:
        return bool(self._slot_of)

    def __repr__(self) -> str:
        return "CoverIndex(%d members)" % len(self._slot_of)

    @property
    def members(self) -> List[Itemset]:
        """Snapshot of the current members."""
        return list(self._slot_of)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, member: Itemset) -> bool:
        """Insert a member; returns False if it was already present."""
        if member in self._slot_of:
            return False
        if self._free_slots:
            slot = self._free_slots.pop()
            self._members[slot] = member
        else:
            slot = len(self._members)
            self._members.append(member)
        self._slot_of[member] = slot
        bit = 1 << slot
        self._alive |= bit
        for item in member:
            self._item_masks[item] = self._item_masks.get(item, 0) | bit
        return True

    def discard(self, member: Itemset) -> bool:
        """Remove a member; returns False if it was not present.

        Item masks keep the stale bit — queries mask with ``alive`` — and
        the slot is recycled after its bit is scrubbed on reuse.
        """
        slot = self._slot_of.pop(member, None)
        if slot is None:
            return False
        bit = 1 << slot
        self._alive &= ~bit
        for item in member:
            self._item_masks[item] &= ~bit
        self._members[slot] = None
        self._free_slots.append(slot)
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def covers(self, probe: Itemset) -> bool:
        """True iff some member is a superset of ``probe``.

        The empty probe is covered whenever the family is non-empty.
        """
        return self._matches(probe) != 0

    def covers_strictly(self, probe: Itemset) -> bool:
        """True iff some member is a *proper* superset of ``probe``."""
        matches = self._matches(probe)
        slot = self._slot_of.get(probe)
        if slot is not None:
            matches &= ~(1 << slot)
        return matches != 0

    def supersets_of(self, probe: Itemset) -> List[Itemset]:
        """All members that contain ``probe``."""
        matches = self._matches(probe)
        found: List[Itemset] = []
        while matches:
            low_bit = matches & -matches
            member = self._members[low_bit.bit_length() - 1]
            assert member is not None
            found.append(member)
            matches ^= low_bit
        return found

    def _matches(self, probe: Itemset) -> int:
        accumulator = self._alive
        masks = self._item_masks
        for item in probe:
            mask = masks.get(item)
            if mask is None:
                return 0
            accumulator &= mask
            if not accumulator:
                return 0
        return accumulator


#: bit positions set in each byte value, for byte-at-a-time mask walks
_BYTE_BITS = tuple(
    tuple(position for position in range(8) if byte >> position & 1)
    for byte in range(256)
)


class MaskCover:
    """Mask-native inverted cover index over one :class:`ItemUniverse`.

    The same inverted-index idea as :class:`CoverIndex` — per-item bitmaps
    of member slots, queries are early-exit ANDs — but members and probes
    are the kernel's interned *masks*, which changes the cost model in two
    ways that matter to MFCS-gen:

    * ``discard_mask`` is O(1): the slot's bit leaves the ``alive`` mask
      and its per-item table bits go *stale* instead of being scrubbed
      (queries always AND with ``alive``, so stale bits are invisible);
    * ``add_mask`` scrubs lazily on slot reuse, paying only for the XOR
      between the stale mask and the new member.  MFCS-gen replaces an
      element by subsets that differ from it in a single item, and the
      freed slot is reused immediately — so the dominant
      discard-element/add-replacement churn costs O(1) table updates
      instead of O(|element|) per replacement.

    Probes arrive as masks too (``covers_mask``/``supersets_masks``), so
    the kernel's hot paths never materialise tuples; the tuple-facing
    CoverIndex API is kept for the boundary and for drop-in container
    compatibility.  Members outside the universe are delegated to a lazy
    tuple-based :class:`CoverIndex` so behaviour matches CoverIndex on
    every input.

    ``queries``/``node_visits`` mirror :class:`~repro.core.settrie.SetTrie`
    instrumentation: one query per cover question, one visit per item
    bitmap examined before the early exit — the sub-linearity signal the
    observability layer reports as ``mfcs.cover_*``.
    """

    def __init__(
        self,
        universe,
        members: Iterable[Itemset] = (),
        compressed: bool = False,
    ) -> None:
        self._universe = universe
        self._table: List[int] = [0] * len(universe)
        self._masks: List[int] = []  # slot -> current (or stale) mask
        # member mask -> slot; ``compressed`` swaps the dict for the
        # sorted-mask delta store (same mapping subset, ~bytes per member
        # instead of a hash-table entry — see :mod:`repro.core.maskstore`)
        self._slot_of = (
            CompressedMaskStore() if compressed else {}
        )  # type: ignore[assignment]
        self._alive = 0
        self._free_slots: List[int] = []
        self._foreign: Optional[CoverIndex] = None  # out-of-universe members
        self.queries = 0
        self.node_visits = 0
        for member in members:
            self.add(member)

    @property
    def universe(self):
        """The :class:`~repro.core.bitset.ItemUniverse` masks refer to."""
        return self._universe

    @property
    def has_foreign(self) -> bool:
        """True when out-of-universe members live in the tuple side index.

        Mask-level callers must fall back to the tuple API in that case —
        ``covers_mask``/``supersets_masks`` see only in-universe members.
        """
        return bool(self._foreign)

    # ------------------------------------------------------------------
    # container protocol (tuple boundary)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        count = len(self._slot_of)
        return count + len(self._foreign) if self._foreign else count

    def __iter__(self) -> Iterator[Itemset]:
        return iter(self.members)

    def __contains__(self, member: Itemset) -> bool:
        mask = self._universe.raw_mask_of(member)
        if mask is not None and mask in self._slot_of:
            return True
        return bool(self._foreign) and member in self._foreign

    def __bool__(self) -> bool:
        return bool(self._slot_of) or bool(self._foreign)

    def __repr__(self) -> str:
        return "MaskCover(%d members)" % len(self)

    @property
    def members(self) -> List[Itemset]:
        """Snapshot of the current members, decoded through the universe."""
        itemset_of = self._universe.itemset_of
        decoded = [itemset_of(mask) for mask in self._slot_of]
        if self._foreign:
            decoded.extend(self._foreign.members)
        return decoded

    @property
    def member_masks(self) -> List[int]:
        """Snapshot of the in-universe member masks."""
        return list(self._slot_of)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, member: Itemset) -> bool:
        mask = self._universe.try_mask_of(member)
        if mask is None:
            if self._foreign is None:
                self._foreign = CoverIndex()
            return self._foreign.add(member)
        return self.add_mask(mask)

    def discard(self, member: Itemset) -> bool:
        mask = self._universe.raw_mask_of(member)
        if mask is not None and self.discard_mask(mask):
            return True
        return bool(self._foreign) and self._foreign.discard(member)

    def add_mask(self, mask: int) -> bool:
        """Insert a member mask; returns False if already present."""
        if mask in self._slot_of:
            return False
        if self._free_slots:
            slot = self._free_slots.pop()
            stale = self._masks[slot]
            self._masks[slot] = mask
        else:
            slot = len(self._masks)
            stale = 0
            self._masks.append(mask)
        self._slot_of[mask] = slot
        bit = 1 << slot
        self._alive |= bit
        table = self._table
        # scrub-on-reuse: only the symmetric difference with the stale
        # mask needs table edits — O(1) for MFCS-gen's one-item splits
        to_set = mask & ~stale
        while to_set:
            low = to_set & -to_set
            to_set ^= low
            table[low.bit_length() - 1] |= bit
        to_clear = stale & ~mask
        not_bit = ~bit
        while to_clear:
            low = to_clear & -to_clear
            to_clear ^= low
            table[low.bit_length() - 1] &= not_bit
        return True

    def discard_mask(self, mask: int) -> bool:
        """Remove a member mask in O(1); table bits are scrubbed on reuse."""
        slot = self._slot_of.pop(mask, None)
        if slot is None:
            return False
        self._alive &= ~(1 << slot)
        self._free_slots.append(slot)
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def covers(self, probe: Itemset) -> bool:
        mask = self._universe.raw_mask_of(probe)
        if mask is not None and self.covers_mask(mask):
            return True
        return bool(self._foreign) and self._foreign.covers(probe)

    def covers_strictly(self, probe: Itemset) -> bool:
        """True iff some member is a *proper* superset of ``probe``."""
        mask = self._universe.raw_mask_of(probe)
        if mask is not None:
            matches = self._matches_mask(mask)
            slot = self._slot_of.get(mask)
            if slot is not None:
                matches &= ~(1 << slot)
            if matches:
                return True
        return bool(self._foreign) and self._foreign.covers_strictly(probe)

    def supersets_of(self, probe: Itemset) -> List[Itemset]:
        mask = self._universe.raw_mask_of(probe)
        found: List[Itemset] = []
        if mask is not None:
            itemset_of = self._universe.itemset_of
            found = [
                itemset_of(member) for member in self.supersets_masks(mask)
            ]
        if self._foreign:
            found.extend(self._foreign.supersets_of(probe))
        return found

    def covers_mask(self, probe_mask: int) -> bool:
        """True iff some in-universe member mask contains ``probe_mask``."""
        return self._matches_mask(probe_mask) != 0

    def supersets_masks(self, probe_mask: int) -> List[int]:
        """All in-universe member masks containing ``probe_mask``."""
        matches = self._matches_mask(probe_mask)
        masks = self._masks
        found: List[int] = []
        while matches:
            low = matches & -matches
            matches ^= low
            found.append(masks[low.bit_length() - 1])
        return found

    #: item-bitmap probes before switching to direct witness verification
    _PROBE_CUTOFF = 8

    def _matches_mask(self, probe_mask: int) -> int:
        self.queries += 1
        accumulator = self._alive
        if not accumulator:
            return 0
        table = self._table
        byte_bits = _BYTE_BITS
        visits = 0
        base = 0
        # one C-level conversion, then a small-int walk: extracting bits
        # straight off the (universe-wide) probe int would re-allocate a
        # multi-word integer several times per visited bit
        data = probe_mask.to_bytes((probe_mask.bit_length() + 7) // 8, "little")
        for byte in data:
            if byte:
                positions = byte_bits[byte]
                visits += len(positions)
                for position in positions:
                    accumulator &= table[base + position]
                    if not accumulator:
                        self.node_visits += visits
                        return 0
                if visits >= self._PROBE_CUTOFF:
                    break
            base += 8
        else:
            self.node_visits += visits
            return accumulator
        # the first CUTOFF item bitmaps thinned the slots to a handful of
        # candidates; verifying each directly (one wide ANDNOT) beats
        # walking the remaining probe items — a *positive* query can never
        # early-exit the item walk, so long covered probes would otherwise
        # pay one bitmap AND per item they contain
        masks = self._masks
        matches = 0
        remaining = accumulator
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            visits += 1
            if not probe_mask & ~masks[low.bit_length() - 1]:
                matches |= low
        self.node_visits += visits
        return matches


def as_cover(family: object) -> "CoverIndex":
    """Coerce an iterable of itemsets into a cover-query structure.

    Anything already answering the cover protocol (``covers`` +
    ``supersets_of`` — a :class:`CoverIndex`, a
    :class:`~repro.core.settrie.SetTrie`, or an
    :class:`~repro.core.mfcs.MFCS`) passes through untouched, so callers
    keep whatever query complexity the active lattice kernel chose for
    the family.  Plain iterables are indexed into a fresh CoverIndex.
    """
    if hasattr(family, "covers") and hasattr(family, "supersets_of"):
        return family  # type: ignore[return-value]
    return CoverIndex(family)  # type: ignore[arg-type]
