"""A maximality-friendly itemset trie with sub-linear superset queries.

Both halves of Pincer-Search keep asking the same two questions about a
*family* of itemsets: "is this probe a subset of some member?" (``covers``)
and "which members contain this probe?" (``supersets_of``).  The seed
answers them with :class:`~repro.core.cover.CoverIndex`, whose cost per
query grows linearly with the family size (the AND runs over
``|family|``-bit integers, one item at a time).

:class:`SetTrie` is the sub-linear alternative the bitmask kernel routes
those queries through: members are stored as root-to-terminal item paths
(items ascending), so a superset search only descends into children whose
item does not exceed the next probe item — subtrees that cannot complete
the probe are never visited.  When constructed over an
:class:`~repro.core.bitset.ItemUniverse` every node additionally carries a
*guard mask*, the OR of all member masks in its subtree; a child whose
guard lacks a still-needed probe bit is pruned with a single integer AND,
which is what keeps long-probe queries (MFCS elements spanning most of the
universe) from degenerating into full-depth walks.

The structure is API-compatible with ``CoverIndex`` (``add`` / ``discard``
/ ``covers`` / ``covers_strictly`` / ``supersets_of`` / ``members`` and
the container protocol), so :class:`~repro.core.mfcs.MFCS` and the miners
can swap one for the other.  ``queries`` and ``node_visits`` count the
work actually done; the regression tests pin that visits stay sub-linear
in the family size, and the miners surface them through the ``obs``
metrics registry.  All traversals are iterative — member paths can be as
deep as the universe (a fresh MFCS element spans it entirely), which
recursive descent would push past the interpreter's stack limit.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .itemset import Itemset

__all__ = ["SetTrie"]


class _Node:
    """One trie node: children keyed by item, member tuple if terminal."""

    __slots__ = ("children", "member", "guard")

    def __init__(self) -> None:
        self.children: Dict[int, "_Node"] = {}
        self.member: Optional[Itemset] = None  # set iff terminal
        self.guard = 0  # OR of member masks in this subtree (0 = unguarded)


class SetTrie:
    """Itemset family supporting sub-linear subset-cover queries.

    >>> trie = SetTrie([(1, 2, 3), (2, 4)])
    >>> trie.covers((1, 3))
    True
    >>> trie.covers((3, 4))
    False
    >>> sorted(trie.supersets_of((2,)))
    [(1, 2, 3), (2, 4)]
    """

    def __init__(self, members=(), universe=None) -> None:
        self._root = _Node()
        self._members: Dict[Itemset, None] = {}  # insertion-ordered set
        self._universe = universe
        #: query accounting: one ``queries`` tick per covers /
        #: covers_strictly / supersets_of call, one ``node_visits`` tick
        #: per trie node actually inspected.  The sub-linearity regression
        #: tests (and the ``mfcs.cover_*`` obs counters) read these.
        self.queries = 0
        self.node_visits = 0
        for member in members:
            self.add(member)

    # ------------------------------------------------------------------
    # container protocol (CoverIndex-compatible)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[Itemset]:
        return iter(list(self._members))

    def __contains__(self, member: Itemset) -> bool:
        return member in self._members

    def __bool__(self) -> bool:
        return bool(self._members)

    def __repr__(self) -> str:
        return "SetTrie(%d members)" % len(self._members)

    @property
    def members(self) -> List[Itemset]:
        """Snapshot of the current members (insertion order)."""
        return list(self._members)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def _mask(self, itemset_: Itemset) -> int:
        if self._universe is None:
            return 0
        mask = self._universe.try_mask_of(itemset_)
        return 0 if mask is None else mask

    def add(self, member: Itemset) -> bool:
        """Insert a member; returns False if it was already present."""
        if member in self._members:
            return False
        self._members[member] = None
        mask = self._mask(member)
        node = self._root
        node.guard |= mask
        for item in member:
            child = node.children.get(item)
            if child is None:
                child = _Node()
                node.children[item] = child
            child.guard |= mask
            node = child
        node.member = member
        return True

    def discard(self, member: Itemset) -> bool:
        """Remove a member; returns False if it was not present.

        Childless non-terminal nodes are pruned and guard masks recomputed
        along the path, so queries never wander into dead subtrees.
        """
        if member not in self._members:
            return False
        path: List[_Node] = [self._root]
        node = self._root
        for item in member:
            node = node.children[item]
            path.append(node)
        del self._members[member]
        node.member = None
        # prune childless tails, then refresh guards bottom-up
        for depth in range(len(member), 0, -1):
            child = path[depth]
            if child.member is None and not child.children:
                del path[depth - 1].children[member[depth - 1]]
        if self._universe is not None:
            for depth in range(len(member) - 1, -1, -1):
                parent = path[depth]
                guard = 0
                if parent.member is not None:
                    guard = self._mask(parent.member)
                for grandchild in parent.children.values():
                    guard |= grandchild.guard
                parent.guard = guard
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def covers(self, probe: Itemset) -> bool:
        """True iff some member is a superset of ``probe``.

        The empty probe is covered whenever the family is non-empty.
        """
        self.queries += 1
        if not self._members:
            return False
        if not probe:
            return True
        remaining = self._mask(probe)
        if remaining and remaining & ~self._root.guard:
            return False  # some probe item occurs in no member at all
        limit = len(probe)
        visits = 0
        stack = [(self._root, 0, remaining)]
        while stack:
            node, position, rest = stack.pop()
            wanted = probe[position]
            last = position + 1 == limit
            for item, child in node.children.items():
                if item > wanted:
                    continue  # items ascend along paths: wanted unreachable
                visits += 1
                if item == wanted:
                    if last:
                        self.node_visits += visits
                        return True  # any member in this subtree ⊇ probe
                    after = rest & ~(rest & -rest) if rest else 0
                    if after and after & ~child.guard:
                        continue  # guard: a needed bit is absent below
                    stack.append((child, position + 1, after))
                else:  # item < wanted: descend without consuming the probe
                    if rest and rest & ~child.guard:
                        continue
                    stack.append((child, position, rest))
        self.node_visits += visits
        return False

    def covers_strictly(self, probe: Itemset) -> bool:
        """True iff some member is a *proper* superset of ``probe``."""
        self.queries += 1
        if not self._members:
            return False
        if not probe:
            return any(member for member in self._members)
        remaining = self._mask(probe)
        if remaining and remaining & ~self._root.guard:
            return False
        limit = len(probe)
        visits = 0
        stack = [(self._root, 0, remaining, False)]
        while stack:
            node, position, rest, extra = stack.pop()
            wanted = probe[position]
            last = position + 1 == limit
            for item, child in node.children.items():
                if item > wanted:
                    continue
                visits += 1
                if item == wanted:
                    if last:
                        # a proper superset needs one extra item: either
                        # one was consumed on the way down, or the member
                        # path continues past the probe
                        if extra or child.children:
                            self.node_visits += visits
                            return True
                        continue
                    after = rest & ~(rest & -rest) if rest else 0
                    if after and after & ~child.guard:
                        continue
                    stack.append((child, position + 1, after, extra))
                else:
                    if rest and rest & ~child.guard:
                        continue
                    stack.append((child, position, rest, True))
        self.node_visits += visits
        return False

    def supersets_of(self, probe: Itemset) -> List[Itemset]:
        """All members that contain ``probe``."""
        self.queries += 1
        found: List[Itemset] = []
        if not self._members:
            return found
        remaining = self._mask(probe)
        if remaining and remaining & ~self._root.guard:
            return found
        limit = len(probe)
        visits = 0
        stack = [(self._root, 0, remaining)]
        collect: List[_Node] = []
        while stack:
            node, position, rest = stack.pop()
            if position == limit:
                collect.append(node)
                continue
            wanted = probe[position]
            for item, child in node.children.items():
                if item > wanted:
                    continue
                visits += 1
                if item == wanted:
                    after = rest & ~(rest & -rest) if rest else 0
                    if after and after & ~child.guard:
                        continue
                    stack.append((child, position + 1, after))
                else:
                    if rest and rest & ~child.guard:
                        continue
                    stack.append((child, position, rest))
        # every node in ``collect`` roots a subtree whose members all
        # contain the probe; walk them iteratively (paths can be as deep
        # as the universe)
        while collect:
            node = collect.pop()
            visits += 1
            if node.member is not None:
                found.append(node.member)
            collect.extend(node.children.values())
        self.node_visits += visits
        return found
