"""Per-pass and per-run mining statistics.

The paper's Figures 3 and 4 report three quantities per (database,
minimum-support) cell: execution time, number of candidates, and number of
passes.  The stats objects here capture exactly those, with the paper's
accounting conventions:

* a *pass* is one read of the database (one call into the counting engine
  with a non-empty batch);
* the *candidate count* of a pass is the number of itemsets whose support
  was counted in it — for Pincer-Search this "includes the candidates in
  MFCS" (Section 4.1.1);
* the headline candidate total "does not include the candidates in the
  first two passes" (Section 4.1.1), exposed as
  :meth:`MiningStats.candidates_after_pass2`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List

#: Version of the :meth:`MiningStats.to_dict` document — shared with the
#: trace/metrics event schema (see :mod:`repro.obs.schema`).
STATS_SCHEMA_VERSION = 1


@dataclass
class PassStats:
    """What happened in a single pass of the bottom-up loop."""

    pass_number: int
    #: bottom-up candidates counted this pass (|C_k| minus cache hits)
    bottom_up_candidates: int = 0
    #: MFCS elements counted this pass (0 for Apriori)
    mfcs_candidates: int = 0
    #: itemsets classified frequent among the bottom-up candidates
    frequent_found: int = 0
    #: itemsets classified infrequent among the bottom-up candidates
    infrequent_found: int = 0
    #: maximal frequent itemsets discovered in MFCS this pass
    maximal_found: int = 0
    #: frequent itemsets dropped from L_k as subsets of MFS (Observation 2)
    pruned_as_mfs_subsets: int = 0
    #: |MFCS| after the update at the end of the pass
    mfcs_size_after: int = 0
    #: candidates restored by the recovery procedure into C_{k+1}
    recovered_candidates: int = 0
    #: wall-clock seconds spent in this pass
    seconds: float = 0.0

    @property
    def total_candidates(self) -> int:
        """All itemsets counted this pass (paper's per-pass candidate count)."""
        return self.bottom_up_candidates + self.mfcs_candidates

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready mapping of every field (plus the derived total)."""
        data = asdict(self)
        data["total_candidates"] = self.total_candidates
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PassStats":
        """Inverse of :meth:`to_dict`; unknown/derived keys are ignored."""
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


@dataclass
class MiningStats:
    """Accumulated statistics of one mining run."""

    algorithm: str = ""
    passes: List[PassStats] = field(default_factory=list)
    seconds: float = 0.0
    records_read: int = 0
    #: resolved counting engine name ("" when unknown / caller-supplied)
    engine: str = ""
    #: why that engine was picked: the measured density evidence from
    #: :func:`repro.db.counting.engine_decision` (rows / items / nnz /
    #: density / reason), JSON-ready
    engine_evidence: Dict[str, Any] = field(default_factory=dict)
    #: RNG seed of the sample draw for sample-based miners (Toivonen
    #: sampling, sample-seeded partitioned mining); None when the run
    #: involved no sampling.  Recording it is what makes sample-seeded
    #: runs reproducible from their stats document alone.
    sample_seed: Any = None

    def new_pass(self, pass_number: int) -> PassStats:
        """Open stats for the next pass and return them for filling in."""
        stats = PassStats(pass_number=pass_number)
        self.passes.append(stats)
        return stats

    @property
    def num_passes(self) -> int:
        """Number of database reads (the figures' "passes" panel)."""
        return len(self.passes)

    @property
    def total_candidates(self) -> int:
        """All counted itemsets across all passes."""
        return sum(stats.total_candidates for stats in self.passes)

    @property
    def candidates_after_pass2(self) -> int:
        """Counted itemsets excluding passes 1 and 2 (paper's convention).

        For Pincer-Search the MFCS candidates of passes 1 and 2 are also
        excluded, mirroring "the number of candidates shown in the figures
        does not include the candidates in the first two passes" while the
        later passes "include the candidates in MFCS".
        """
        return sum(
            stats.total_candidates
            for stats in self.passes
            if stats.pass_number > 2
        )

    @property
    def total_maximal_found_in_mfcs(self) -> int:
        """How many MFS members were discovered top-down (0 for Apriori)."""
        return sum(stats.maximal_found for stats in self.passes)

    def to_dict(self) -> Dict[str, Any]:
        """The versioned ``mining_stats`` document (JSON-ready).

        Round-trips through :meth:`from_dict`; validated by
        :func:`repro.obs.schema.validate_stats_document`.
        """
        return {
            "v": STATS_SCHEMA_VERSION,
            "type": "mining_stats",
            "algorithm": self.algorithm,
            "seconds": self.seconds,
            "records_read": self.records_read,
            "engine": self.engine,
            "engine_evidence": dict(self.engine_evidence),
            "sample_seed": self.sample_seed,
            "num_passes": self.num_passes,
            "total_candidates": self.total_candidates,
            "candidates_after_pass2": self.candidates_after_pass2,
            "passes": [stats.to_dict() for stats in self.passes],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MiningStats":
        """Rebuild stats from a :meth:`to_dict` document."""
        version = data.get("v", STATS_SCHEMA_VERSION)
        if version != STATS_SCHEMA_VERSION:
            raise ValueError(
                "unsupported stats schema version %r (expected %d)"
                % (version, STATS_SCHEMA_VERSION)
            )
        return cls(
            algorithm=data.get("algorithm", ""),
            seconds=data.get("seconds", 0.0),
            records_read=data.get("records_read", 0),
            engine=data.get("engine", ""),
            engine_evidence=dict(data.get("engine_evidence", {})),
            sample_seed=data.get("sample_seed"),
            passes=[
                PassStats.from_dict(entry) for entry in data.get("passes", [])
            ],
        )

    def summary(self) -> str:
        """One-line human-readable digest used by the CLI."""
        return (
            "%s: %d passes, %d candidates (%d after pass 2), %.3fs"
            % (
                self.algorithm or "run",
                self.num_passes,
                self.total_candidates,
                self.candidates_after_pass2,
                self.seconds,
            )
        )
