"""Version spaces over itemset concepts (the paper's Section 5 framing).

"Our work was inspired by the notion of version space in Mitchell's
machine learning paper [8].  We found that if we treat a newly discovered
frequent itemset as a new positive training instance, a newly discovered
infrequent itemset as a new negative training instance, the candidate set
as the maximally specific generalization (S), and the MFCS as the
maximally general generalization (G), then we will be able to use a
two-way approaching strategy to discover the maximum frequent set."

This module makes that correspondence executable.  The hypothesis space
is the family of downward-closed itemset collections over a universe,
each represented by its positive border; a hypothesis *covers* an itemset
iff the itemset lies under the border.  Training instances are
classified itemsets:

* a positive instance (a frequent itemset) forces every consistent
  hypothesis to cover it — it can only *generalise* the S boundary;
* a negative instance (an infrequent itemset) forbids coverage — it can
  only *specialise* the G boundary.

``S`` is maintained as the maximal positive instances seen (the least
general consistent hypothesis); ``G`` is maintained with exactly the
MFCS-gen splitting rule (the most general consistent hypothesis).  The
version space has *converged* when S's closure equals G's — which for
Pincer-Search is the moment MFCS = MFS.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from .cover import CoverIndex
from .itemset import Itemset, is_subset
from .lattice import downward_closure
from .mfcs import MFCS


class InconsistentInstance(ValueError):
    """A training instance contradicts the earlier ones.

    For anti-monotone concepts this means a negative instance under a
    positive one (or vice versa) — the analogue of noisy labels
    collapsing a classic version space.
    """


class VersionSpace:
    """S/G boundary-set learner for downward-closed itemset concepts."""

    def __init__(self, universe: Iterable[int]) -> None:
        self._universe = tuple(sorted(set(universe)))
        self._specific: Set[Itemset] = set()      # maximal positives: S
        self._specific_cover = CoverIndex()
        self._general = MFCS.for_universe(self._universe)  # G
        self._negatives: List[Itemset] = []

    # ------------------------------------------------------------------
    # boundaries
    # ------------------------------------------------------------------

    @property
    def universe(self) -> Itemset:
        return self._universe

    @property
    def specific_boundary(self) -> Set[Itemset]:
        """S: the positive border of the instances seen so far."""
        return set(self._specific)

    @property
    def general_boundary(self) -> Set[Itemset]:
        """G: the most general consistent hypothesis (an MFCS)."""
        return self._general.elements

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------

    def add_positive(self, instance: Itemset) -> None:
        """A frequent itemset: S generalises to cover it."""
        if not self._general.covers(instance):
            raise InconsistentInstance(
                "positive instance %r lies outside the general boundary "
                "(it is a superset of an earlier negative)" % (instance,)
            )
        if self._specific_cover.covers(instance):
            return  # already entailed by S
        for member in list(self._specific):
            if is_subset(member, instance):
                self._specific.discard(member)
                self._specific_cover.discard(member)
        self._specific.add(instance)
        self._specific_cover.add(instance)

    def add_negative(self, instance: Itemset) -> None:
        """An infrequent itemset: G specialises to exclude it."""
        if self._specific_cover.covers(instance):
            raise InconsistentInstance(
                "negative instance %r is covered by the specific boundary "
                "(it is a subset of an earlier positive)" % (instance,)
            )
        self._negatives.append(instance)
        self._general.exclude(instance)

    def observe(self, instance: Itemset, is_positive: bool) -> None:
        """Route one labelled instance to the matching boundary update."""
        if is_positive:
            self.add_positive(instance)
        else:
            self.add_negative(instance)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def classifies_positive(self, itemset_: Itemset) -> bool:
        """Entailed positive: under S in *every* consistent hypothesis."""
        return self._specific_cover.covers(itemset_)

    def classifies_negative(self, itemset_: Itemset) -> bool:
        """Entailed negative: outside G in every consistent hypothesis."""
        return not self._general.covers(itemset_)

    def is_ambiguous(self, itemset_: Itemset) -> bool:
        """Neither entailed: hypotheses disagree — more training needed.

        These are exactly the itemsets Pincer-Search still has to count.
        """
        return not self.classifies_positive(itemset_) and not (
            self.classifies_negative(itemset_)
        )

    def has_converged(self) -> bool:
        """True when S and G describe the same concept (MFCS = MFS).

        Compared via downward closures, so it is exponential in boundary
        member length — a diagnostic for the small universes this module
        targets, not a hot-path predicate.
        """
        return downward_closure(self._specific) == downward_closure(
            self._general.elements
        )

    def ambiguous_region(self) -> Set[Itemset]:
        """All itemsets on which consistent hypotheses disagree."""
        general_closure = downward_closure(self._general.elements)
        specific_closure = downward_closure(self._specific)
        return general_closure - specific_closure

    def __repr__(self) -> str:
        return "VersionSpace(|S|=%d, |G|=%d, universe=%d items)" % (
            len(self._specific), len(self._general), len(self._universe),
        )


def replay_mining_run(
    universe: Iterable[int],
    classified: Iterable["tuple[Itemset, bool]"],
) -> VersionSpace:
    """Feed a mining run's classifications through a version space.

    ``classified`` yields ``(itemset, is_frequent)`` pairs in discovery
    order — e.g. the support cache of a finished
    :class:`~repro.core.result.MiningResult` against its threshold.  The
    returned space's G boundary is the MFCS the run would hold after
    those discoveries; if the run was complete, the space has converged
    and both boundaries describe the MFS.
    """
    space = VersionSpace(universe)
    for itemset_, is_positive in classified:
        space.observe(itemset_, is_positive)
    return space
