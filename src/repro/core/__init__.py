"""Core of the reproduction: itemset algebra, MFCS, and Pincer-Search."""

from .adaptive import AdaptivePolicy, AlwaysMaintain, NeverMaintain
from .bitset import ItemUniverse, candidate_upper_bound
from .candidates import (
    apriori_join,
    apriori_prune,
    first_level_candidates,
    generate_candidates,
    pincer_prune,
    recovery,
)
from .cover import CoverIndex, MaskCover
from .itemset import EMPTY, Itemset, itemset
from .kernel import BitmaskKernel, LatticeKernel, TupleKernel, make_kernel
from .maskstore import CompressedMaskStore
from .mfcs import MFCS
from .settrie import SetTrie
from .pincer import PincerSearch, pincer_search, resolve_threshold
from .predicate import PredicatePincer, maximal_satisfying_sets
from .result import MiningResult, MiningTimeout
from .stats import MiningStats, PassStats
from .versionspace import InconsistentInstance, VersionSpace, replay_mining_run

__all__ = [
    "EMPTY",
    "AdaptivePolicy",
    "AlwaysMaintain",
    "BitmaskKernel",
    "CompressedMaskStore",
    "CoverIndex",
    "InconsistentInstance",
    "ItemUniverse",
    "Itemset",
    "LatticeKernel",
    "MFCS",
    "MaskCover",
    "SetTrie",
    "TupleKernel",
    "MiningResult",
    "MiningStats",
    "MiningTimeout",
    "NeverMaintain",
    "PassStats",
    "PincerSearch",
    "PredicatePincer",
    "VersionSpace",
    "apriori_join",
    "apriori_prune",
    "candidate_upper_bound",
    "first_level_candidates",
    "generate_candidates",
    "itemset",
    "make_kernel",
    "pincer_prune",
    "pincer_search",
    "recovery",
    "resolve_threshold",
]
