"""Core of the reproduction: itemset algebra, MFCS, and Pincer-Search."""

from .adaptive import AdaptivePolicy, AlwaysMaintain, NeverMaintain
from .candidates import (
    apriori_join,
    apriori_prune,
    first_level_candidates,
    generate_candidates,
    pincer_prune,
    recovery,
)
from .cover import CoverIndex
from .itemset import EMPTY, Itemset, itemset
from .mfcs import MFCS
from .pincer import PincerSearch, pincer_search, resolve_threshold
from .predicate import PredicatePincer, maximal_satisfying_sets
from .result import MiningResult, MiningTimeout
from .stats import MiningStats, PassStats
from .versionspace import InconsistentInstance, VersionSpace, replay_mining_run

__all__ = [
    "EMPTY",
    "AdaptivePolicy",
    "AlwaysMaintain",
    "CoverIndex",
    "InconsistentInstance",
    "Itemset",
    "MFCS",
    "MiningResult",
    "MiningStats",
    "MiningTimeout",
    "NeverMaintain",
    "PassStats",
    "PincerSearch",
    "PredicatePincer",
    "VersionSpace",
    "apriori_join",
    "apriori_prune",
    "first_level_candidates",
    "generate_candidates",
    "itemset",
    "pincer_prune",
    "pincer_search",
    "recovery",
    "resolve_threshold",
]
