"""Compressed storage for families of interned itemset masks.

:class:`~repro.core.cover.MaskCover` keeps one dict entry per family
member (mask -> slot).  The masks themselves are interned in the
:class:`~repro.core.bitset.ItemUniverse`, so the *dict* is the marginal
memory cost of family membership: ~100 bytes per entry of hash-table
machinery for members that are a few set bits apart.  On the big MFCS
frontiers of low-support runs that dominates the miner's footprint.

:class:`CompressedMaskStore` is a drop-in replacement for that dict
implementing the subset of the mapping protocol MaskCover uses
(``in`` / ``[] =`` / ``get`` / ``pop`` / ``len`` / iteration).  Members
are held *sorted by mask* in blocks of :data:`BLOCK` entries; each block
stores its first mask verbatim and every later mask as a LEB128 varint
of the delta to its predecessor.  Sorted neighbours share their high
bits — lattice families are exactly wildcard-clustered this way (the
ALLSAT view: a family of maximal sets is many low-bit variations under
few high-bit prefixes) — and shared high bits *cancel in the delta*, so
a member typically costs a few bytes instead of a hundred.  Slot
payloads ride in a parallel per-block list.

Lookups bisect the block heads, then decode one block sequentially
(:data:`BLOCK` varint adds — cheap, cache-resident).  Mutations re-encode
one block, splitting when it doubles; MFCS-gen's discard-element /
add-replacements churn therefore costs O(BLOCK) bytes of re-encoding per
update, never a rehash of the whole family.

Iteration order is ascending mask order, not insertion order —
MaskCover's membership semantics don't depend on order, but callers
comparing ``members`` lists positionally should sort first.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterator, List

__all__ = ["BLOCK", "CompressedMaskStore"]

#: Target entries per block.  Small enough that a sequential decode stays
#: in cache, large enough that the per-block Python object overhead
#: amortises to ~1 byte per member.
BLOCK = 128

_MISSING = object()


def _encode(masks: List[int]) -> bytes:
    """Sorted masks -> LEB128 varint delta bytes.

    ``masks[0]`` is the block head, stored verbatim by the caller; this
    encodes each later mask as the varint of its delta to the previous
    one, which is where neighbouring masks' shared prefix bits cancel.
    """
    out = bytearray()
    previous = masks[0]
    for mask in masks[1:]:
        delta = mask - previous
        previous = mask
        while True:
            byte = delta & 0x7F
            delta >>= 7
            if delta:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def _decode(head: int, data: bytes, count: int) -> List[int]:
    """Inverse of :func:`_encode`: block head + delta bytes -> masks."""
    masks = [head]
    value = 0
    shift = 0
    for byte in data:
        value |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
        else:
            head += value
            masks.append(head)
            value = 0
            shift = 0
    assert len(masks) == count, "corrupt block"
    return masks


class _Block:
    __slots__ = ("head", "data", "slots")

    def __init__(self, masks: List[int], slots: List[int]) -> None:
        self.head = masks[0]
        self.data = _encode(masks)
        self.slots = slots  # parallel to the decoded masks

    def masks(self) -> List[int]:
        return _decode(self.head, self.data, len(self.slots))


class CompressedMaskStore:
    """Sorted-mask delta-compressed ``mask -> slot`` mapping."""

    def __init__(self) -> None:
        self._blocks: List[_Block] = []
        self._heads: List[int] = []  # parallel: block -> first mask
        self._count = 0

    @classmethod
    def from_dict(cls, mapping: Dict[int, int]) -> "CompressedMaskStore":
        """Bulk-build from a mask -> slot dict in one encode sweep.

        O(n log n) for the sort plus one varint encode per entry —
        unlike repeated ``[] =``, which re-encodes a whole block per
        insert.  The support cache compresses a hot write-buffer
        generation this way on rotation.
        """
        store = cls()
        ordered = sorted(mapping)
        for start in range(0, len(ordered), BLOCK):
            masks = ordered[start:start + BLOCK]
            store._blocks.append(
                _Block(masks, [mapping[mask] for mask in masks])
            )
            store._heads.append(masks[0])
        store._count = len(ordered)
        return store

    # ------------------------------------------------------------------
    # mapping protocol (the subset MaskCover uses)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __iter__(self) -> Iterator[int]:
        for block in self._blocks:
            yield from block.masks()

    def __contains__(self, mask: int) -> bool:
        return self.get(mask) is not None

    def get(self, mask: int, default=None):
        position = bisect_right(self._heads, mask) - 1
        if position < 0:
            return default
        block = self._blocks[position]
        masks = block.masks()
        index = bisect_right(masks, mask) - 1
        if index >= 0 and masks[index] == mask:
            return block.slots[index]
        return default

    def __getitem__(self, mask: int) -> int:
        slot = self.get(mask, _MISSING)
        if slot is _MISSING:
            raise KeyError(mask)
        return slot

    def __setitem__(self, mask: int, slot: int) -> None:
        if not self._blocks:
            self._blocks.append(_Block([mask], [slot]))
            self._heads.append(mask)
            self._count = 1
            return
        position = max(0, bisect_right(self._heads, mask) - 1)
        block = self._blocks[position]
        masks = block.masks()
        index = bisect_right(masks, mask)
        if index > 0 and masks[index - 1] == mask:
            block.slots[index - 1] = slot  # overwrite in place
            return
        masks.insert(index, mask)
        slots = block.slots
        slots.insert(index, slot)
        self._count += 1
        if len(masks) > 2 * BLOCK:
            middle = len(masks) // 2
            self._blocks[position] = _Block(masks[:middle], slots[:middle])
            self._heads[position] = masks[0]
            self._blocks.insert(
                position + 1, _Block(masks[middle:], slots[middle:])
            )
            self._heads.insert(position + 1, masks[middle])
        else:
            block.head = masks[0]
            block.data = _encode(masks)
            self._heads[position] = masks[0]

    def pop(self, mask: int, default=_MISSING):
        position = bisect_right(self._heads, mask) - 1
        if position >= 0:
            block = self._blocks[position]
            masks = block.masks()
            index = bisect_right(masks, mask) - 1
            if index >= 0 and masks[index] == mask:
                slot = block.slots.pop(index)
                masks.pop(index)
                self._count -= 1
                if masks:
                    block.head = masks[0]
                    block.data = _encode(masks)
                    self._heads[position] = masks[0]
                else:
                    del self._blocks[position]
                    del self._heads[position]
                return slot
        if default is _MISSING:
            raise KeyError(mask)
        return default

    # ------------------------------------------------------------------

    def encoded_bytes(self) -> int:
        """Bytes spent on mask storage (heads + delta payloads)."""
        total = 0
        for block in self._blocks:
            total += len(block.data) + (block.head.bit_length() + 7) // 8
        return total

    def stats(self) -> Dict[str, int]:
        """Compression evidence: members, blocks, and encoded mask bytes."""
        return {
            "members": self._count,
            "blocks": len(self._blocks),
            "encoded_bytes": self.encoded_bytes(),
        }
