"""The maximum frequent candidate set (MFCS) and the MFCS-gen algorithm.

Definition 1 of the paper: at any point of the search, the MFCS is a
minimum-cardinality set of itemsets such that the union of all the subsets
of its elements (i) contains every itemset classified frequent so far and
(ii) contains no itemset classified infrequent so far.  The MFCS is always
a superset of the (final) MFS, and the top-down half of Pincer-Search is
nothing but maintaining this set and counting its elements.

The update rule (Section 3.2, algorithm *MFCS-gen*): for every newly
discovered infrequent itemset ``s`` and every MFCS element ``m ⊇ s``,
replace ``m`` by the ``|s|`` itemsets ``m \\ {e}`` for ``e ∈ s``, keeping
only those not already covered by another element.  Removing exactly one
item of ``s`` produces the *longest* subsets of ``m`` that exclude ``s``,
which is what keeps the MFCS minimum (Lemma 1).

Two documented amendments (DESIGN.md A4/A5) refine the paper's pseudocode:

* replacements that are subsets of an already-discovered maximal frequent
  itemset are dropped, so the working invariant is that **MFS ∪ MFCS**
  jointly cover all frequent itemsets and the MFCS never re-counts known
  frequent territory;
* the empty itemset is never stored.

All containment bookkeeping runs through a cover structure, so splitting
on an infrequent itemset touches only the elements that actually contain
it.  By default that structure is :class:`~repro.core.cover.CoverIndex`
(the tuple fallback); when a bitmask lattice kernel is supplied the MFCS
runs on the kernel's :class:`~repro.core.cover.MaskCover` and the whole
MFCS-gen loop stays in mask algebra: an element split is one ANDNOT per
infrequent item, discarding the split element is O(1), and re-inserting
a replacement reuses the freed slot so the cover index pays only for the
single item that changed — the per-element tuple rebuilds and O(|element|)
index updates of the fallback disappear entirely.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set

from .bitset import popcount
from .cover import CoverIndex, MaskCover, as_cover
from .itemset import Itemset, is_subset, sort_itemsets, without_item
from .lattice import is_antichain


def _mask_prober(cover: object, universe: object):
    """A ``mask -> bool`` cover probe for any cover structure.

    Mask-native covers of the same universe answer directly; anything else
    (a CoverIndex, a SetTrie, a MaskCover holding foreign members or built
    on another universe) is probed through the decoded tuple.
    """
    if (
        isinstance(cover, MaskCover)
        and cover.universe is universe
        and not cover.has_foreign
    ):
        return cover.covers_mask
    itemset_of = universe.itemset_of
    covers = cover.covers

    def probe(mask: int) -> bool:
        return covers(itemset_of(mask))

    return probe


def _native_cover(cover: object, universe: object) -> Optional[MaskCover]:
    """``cover`` as a same-universe, foreign-free :class:`MaskCover`.

    Returns None when the cover cannot answer raw mask queries directly
    (different universe, foreign members, or another cover type).
    """
    if (
        isinstance(cover, MaskCover)
        and cover.universe is universe
        and not cover.has_foreign
    ):
        return cover
    return None


class MFCS:
    """Mutable maximum-frequent-candidate-set.

    >>> mfcs = MFCS([(1, 2, 3, 4, 5, 6)])
    >>> mfcs.exclude((1, 6))
    >>> mfcs.exclude((3, 6))
    >>> sorted(mfcs)
    [(1, 2, 3, 4, 5), (2, 4, 5, 6)]

    (This is the paper's Section 3.2 worked example.)
    """

    def __init__(
        self,
        elements: Iterable[Itemset] = (),
        kernel: Optional[object] = None,
    ) -> None:
        """``kernel`` (a :class:`~repro.core.kernel.LatticeKernel`) selects
        the cover structure and, when it carries an
        :class:`~repro.core.bitset.ItemUniverse`, enables the mask fast
        paths; None keeps the seed CoverIndex behaviour."""
        self._universe = getattr(kernel, "universe", None)
        self._index = (
            kernel.make_cover() if kernel is not None else CoverIndex()
        )
        #: the all-mask fast paths apply when the index is a MaskCover of
        #: this universe (foreign members are re-checked per operation)
        self._mask_native = (
            self._universe is not None
            and isinstance(self._index, MaskCover)
            and self._index.universe is self._universe
        )
        #: lifetime count of Observation-1 applications (infrequent
        #: itemsets excluded) and of elements split by them — the
        #: top-down work the trace/metrics layer reports per pass
        self.exclusions = 0
        self.splits = 0
        # longest-first insertion makes construction from an arbitrary
        # family keep only its maximal members
        for element in sorted(set(elements), key=len, reverse=True):
            self.add(element)

    @classmethod
    def for_universe(
        cls,
        universe: Iterable[int],
        kernel: Optional[object] = None,
    ) -> "MFCS":
        """The paper's initial MFCS: one element holding every item.

        >>> sorted(MFCS.for_universe([2, 1, 3]))
        [(1, 2, 3)]
        """
        top = tuple(sorted(set(universe)))
        return cls([top] if top else [], kernel=kernel)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[Itemset]:
        return iter(self._index)

    def __contains__(self, element: Itemset) -> bool:
        return element in self._index

    def __bool__(self) -> bool:
        return bool(self._index)

    def __repr__(self) -> str:
        preview = sort_itemsets(self._index.members)[:4]
        suffix = ", ..." if len(self._index) > 4 else ""
        return "MFCS(%s%s)" % (preview, suffix)

    @property
    def elements(self) -> Set[Itemset]:
        """A snapshot copy of the current elements."""
        return set(self._index.members)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, element: Itemset) -> bool:
        """Insert ``element`` unless it is already covered; prune its subsets.

        Maintains the antichain/minimality property.  Returns True when the
        element was actually inserted.
        """
        if not element:
            return False
        index = self._index
        if self._mask_native and not index.has_foreign:
            mask = self._universe.try_mask_of(element)
            if mask is not None:
                if index.covers_mask(mask):
                    return False
                for member_mask in index.member_masks:
                    if not member_mask & ~mask:
                        index.discard_mask(member_mask)
                index.add_mask(mask)
                return True
        if self._index.covers(element):
            return False
        universe = self._universe
        element_mask = (
            universe.try_mask_of(element) if universe is not None else None
        )
        for member in self._index.members:
            if element_mask is not None:
                member_mask = universe.try_mask_of(member)
                if member_mask is not None:
                    if not member_mask & ~element_mask:
                        self._index.discard(member)
                    continue
            if is_subset(member, element):
                self._index.discard(member)
        self._index.add(element)
        return True

    def remove(self, element: Itemset) -> None:
        """Remove an element (e.g. one promoted to the MFS)."""
        self._index.discard(element)

    def exclude(
        self,
        infrequent: Itemset,
        protected: Optional[object] = None,
    ) -> None:
        """MFCS-gen for a single infrequent itemset.

        Every element containing ``infrequent`` is replaced by its maximal
        subsets that avoid ``infrequent``.  Replacements covered by another
        element — or by any itemset in ``protected`` (the current MFS,
        amendment A4) — are dropped.
        """
        if not infrequent:
            raise ValueError("cannot exclude the empty itemset")
        protected_cover = as_cover(protected) if protected is not None else None
        self._exclude(infrequent, protected_cover, None)

    def _exclude(
        self,
        infrequent: Itemset,
        protected: Optional[CoverIndex],
        budget: Optional[List[int]],
    ) -> bool:
        """Split every element containing ``infrequent``.

        ``budget`` (a one-element mutable list of remaining work units,
        where one unit ≈ one item-mask lookup) implements the adaptive
        version's work cap; returns False when it ran out mid-split.
        """
        self.exclusions += 1
        universe = self._universe
        if self._mask_native and not self._index.has_foreign:
            infrequent_mask = universe.raw_mask_of(infrequent)
            if infrequent_mask is not None:
                return self._exclude_mask(
                    infrequent_mask,
                    len(infrequent),
                    _mask_prober(protected, universe)
                    if protected is not None
                    else None,
                    budget,
                    _native_cover(protected, universe)
                    if protected is not None
                    else None,
                )
        for element in self._index.supersets_of(infrequent):
            if budget is not None:
                budget[0] -= len(element) * len(infrequent)
                if budget[0] < 0:
                    return False
            self.splits += 1
            self._index.discard(element)
            element_mask = (
                universe.try_mask_of(element) if universe is not None else None
            )
            for item in infrequent:
                if element_mask is not None and item in universe:
                    # mask split: drop one bit, decode through the intern
                    # cache instead of rebuilding the tuple item by item
                    replacement = universe.itemset_of(
                        element_mask & ~universe.bit_mask(item)
                    )
                else:
                    replacement = without_item(element, item)
                if not replacement:
                    continue  # amendment A5: never store the empty itemset
                if self._index.covers(replacement):
                    continue
                if protected is not None and protected.covers(replacement):
                    continue
                # A replacement is never a *superset* of a remaining
                # element (it lost an item of a former antichain member
                # that every split sibling retains — see tests), so a
                # plain insert keeps the antichain property.
                self._index.add(replacement)
        return True

    def _exclude_mask(
        self,
        infrequent_mask: int,
        infrequent_len: int,
        protected_covers,  # Optional[Callable[[int], bool]]
        budget: Optional[List[int]],
        protected_index: Optional[MaskCover] = None,
    ) -> bool:
        """All-mask :meth:`_exclude`: split/cover/insert never leave masks.

        The discarded element's slot is recycled by the next insert, so
        the dominant churn — replace an element by a one-item-smaller
        subset — costs O(1) cover-index edits instead of O(|element|).
        ``protected_covers`` is a prebuilt ``mask -> bool`` probe (see
        :func:`_mask_prober`) or None; ``protected_index`` is the same
        cover as a raw :class:`MaskCover` when it can be refined directly
        (see :func:`_native_cover`).
        """
        index = self._index
        matches = index._matches_mask  # truthy iff some member covers
        add_mask = index.add_mask
        discard_mask = index.discard_mask
        splits = 0
        if protected_index is not None and not protected_index._alive:
            # an empty protected cover rejects nothing — hoistable
            # because the protected cover never mutates during an update
            protected_index = None
            protected_covers = None
        if infrequent_len == 2:
            # Pair split — the dominant pass-2 workload.  Both
            # replacements share the core ``E \ {a, b}``; one exact core
            # query plus one item-bitmap AND per replacement answers both
            # cover checks (a witness of ``E \ {a}`` is a core witness
            # that also holds ``b``), halving the query count.
            # ``table[pos]`` must be read live inside the loop: inserts
            # recycle freed slots and scrub their table bits, so a
            # snapshot taken up front would misattribute items to reused
            # slots.  The protected cover never mutates during an
            # update, so its item bitmaps can be hoisted.
            bit_a = infrequent_mask & -infrequent_mask
            bit_b = infrequent_mask ^ bit_a
            pos_a = bit_a.bit_length() - 1
            pos_b = bit_b.bit_length() - 1
            table = index._table
            if protected_index is not None:
                protected_matches = protected_index._matches_mask
                protected_slots_a = protected_index._table[pos_a]
                protected_slots_b = protected_index._table[pos_b]
            # inline supersets_masks: the probe is exactly the two known
            # item positions, so the containing slots are one AND away
            index.queries += 1
            index.node_visits += 2
            slot_masks = index._masks
            remaining_slots = table[pos_a] & table[pos_b] & index._alive
            elements = []
            while remaining_slots:
                low = remaining_slots & -remaining_slots
                remaining_slots ^= low
                elements.append(slot_masks[low.bit_length() - 1])
            for element_mask in elements:
                if budget is not None:
                    budget[0] -= popcount(element_mask) * 2
                    if budget[0] < 0:
                        self.splits += splits
                        return False
                splits += 1
                discard_mask(element_mask)
                core = element_mask & ~infrequent_mask
                core_matches = matches(core)
                protected_core = None
                replacement = element_mask ^ bit_a  # retains item b
                if replacement and not core_matches & table[pos_b]:
                    if protected_index is not None:
                        if protected_core is None:
                            protected_core = protected_matches(core)
                        covered = protected_core & protected_slots_b
                    elif protected_covers is not None:
                        covered = protected_covers(replacement)
                    else:
                        covered = 0
                    if not covered:
                        add_mask(replacement)
                replacement = element_mask ^ bit_b  # retains item a
                if replacement and not core_matches & table[pos_a]:
                    if protected_index is not None:
                        if protected_core is None:
                            protected_core = protected_matches(core)
                        covered = protected_core & protected_slots_a
                    elif protected_covers is not None:
                        covered = protected_covers(replacement)
                    else:
                        covered = 0
                    if not covered:
                        add_mask(replacement)
            self.splits += splits
            return True
        for element_mask in index.supersets_masks(infrequent_mask):
            if budget is not None:
                budget[0] -= popcount(element_mask) * infrequent_len
                if budget[0] < 0:
                    self.splits += splits
                    return False
            splits += 1
            discard_mask(element_mask)
            remaining = infrequent_mask
            while remaining:
                bit = remaining & -remaining
                remaining ^= bit
                replacement = element_mask & ~bit
                if not replacement:
                    continue  # amendment A5: never store the empty itemset
                if matches(replacement):
                    continue
                if protected_covers is not None and protected_covers(
                    replacement
                ):
                    continue
                add_mask(replacement)
        self.splits += splits
        return True

    def update(
        self,
        infrequent_sets: Iterable[Itemset],
        protected: Optional[object] = None,
        size_cap: Optional[int] = None,
        work_cap: Optional[int] = None,
    ) -> bool:
        """The full MFCS-gen loop over a batch of infrequent itemsets.

        The paper runs this once per pass with ``S_k``; Pincer-Search also
        feeds MFCS elements that were themselves counted infrequent
        (amendment A2).

        Two guards implement the adaptive version (Section 3.5); when
        either trips, the update stops and returns False — the caller
        should abandon the MFCS, whose contents are no longer meaningful:

        * ``size_cap`` — maximum number of elements; a blown-up MFCS costs
          more support counting than the top-down search can save;
        * ``work_cap`` — maximum split work (in item-mask-lookup units);
          on scattered distributions the pass-2 update degenerates into
          incremental maximal-clique maintenance over the frequent-pair
          graph, whose cost must be bounded *during* the update.

        Returns True when fully applied.
        """
        protected_cover = as_cover(protected) if protected is not None else None
        budget = [work_cap] if work_cap is not None else None
        singletons = []
        larger = []
        for infrequent in infrequent_sets:
            (singletons if len(infrequent) == 1 else larger).append(infrequent)
        if singletons and not self._exclude_items(
            {s[0] for s in singletons}, protected_cover, budget
        ):
            return False
        if size_cap is not None and len(self._index) > size_cap:
            return False
        if larger and self._mask_native and not self._index.has_foreign:
            # hoist the mask dispatch out of the per-infrequent loop: the
            # protected prober and the raw encoder are loop-invariant
            # (mask-native splits insert masks only, so the index cannot
            # grow a foreign side mid-update)
            protected_probe = (
                _mask_prober(protected_cover, self._universe)
                if protected_cover is not None
                else None
            )
            protected_native = (
                _native_cover(protected_cover, self._universe)
                if protected_cover is not None
                else None
            )
            raw_mask_of = self._universe.raw_mask_of
            index = self._index
            for infrequent in larger:
                infrequent_mask = raw_mask_of(infrequent)
                if infrequent_mask is None:
                    completed = self._exclude(
                        infrequent, protected_cover, budget
                    )
                else:
                    self.exclusions += 1
                    completed = self._exclude_mask(
                        infrequent_mask,
                        len(infrequent),
                        protected_probe,
                        budget,
                        protected_native,
                    )
                if not completed:
                    return False
                if size_cap is not None and len(index) > size_cap:
                    return False
            return True
        for infrequent in larger:
            if not self._exclude(infrequent, protected_cover, budget):
                return False
            if size_cap is not None and len(self._index) > size_cap:
                return False
        return True

    def _exclude_items(
        self,
        items: "set[int]",
        protected: Optional[CoverIndex],
        budget: Optional[List[int]],
    ) -> bool:
        """Batch fast path for infrequent *1-itemsets*.

        Splitting on a singleton ``{e}`` replaces each element containing
        ``e`` by the single itemset ``element \\ {e}``, so a batch of
        singletons just strips all the batch items from every element —
        pass 1's "top-down search goes down m levels in one pass" costs
        one rebuild instead of ``m`` incremental splits.  Stripping is
        inclusion-monotone, so taking maximal survivors afterwards gives
        exactly the sequential MFCS-gen result.
        """
        self.exclusions += len(items)
        universe = self._universe
        batch_mask = 0
        if universe is not None and all(item in universe for item in items):
            for item in items:
                batch_mask |= universe.bit_mask(item)
        if batch_mask and self._mask_native and not self._index.has_foreign:
            return self._exclude_items_mask(batch_mask, protected, budget)
        replacements = []
        for element in self._index.members:
            element_mask = (
                universe.try_mask_of(element) if batch_mask else None
            )
            if element_mask is not None:
                # mask fast path: membership is one AND, the strip one
                # ANDNOT + interned decode
                if not element_mask & batch_mask:
                    continue
                stripped = universe.itemset_of(element_mask & ~batch_mask)
            else:
                if not any(item in items for item in element):
                    continue
                stripped = tuple(
                    item for item in element if item not in items
                )
            if budget is not None:
                budget[0] -= len(element)
                if budget[0] < 0:
                    return False
            self.splits += 1
            self._index.discard(element)
            replacements.append(stripped)
        # longest-first: a later (shorter) replacement can never swallow an
        # earlier one, so a plain covers-check keeps the antichain intact
        for replacement in sorted(replacements, key=len, reverse=True):
            if not replacement:
                continue
            if self._index.covers(replacement):
                continue
            if protected is not None and protected.covers(replacement):
                continue
            self._index.add(replacement)
        return True

    def _exclude_items_mask(
        self,
        batch_mask: int,
        protected: Optional[CoverIndex],
        budget: Optional[List[int]],
    ) -> bool:
        """All-mask :meth:`_exclude_items` (same semantics, no tuples)."""
        index = self._index
        stripped_masks: List[int] = []
        for element_mask in index.member_masks:
            if not element_mask & batch_mask:
                continue
            if budget is not None:
                budget[0] -= popcount(element_mask)
                if budget[0] < 0:
                    return False
            self.splits += 1
            index.discard_mask(element_mask)
            stripped_masks.append(element_mask & ~batch_mask)
        covers_mask = index.covers_mask
        protected_covers = (
            _mask_prober(protected, self._universe)
            if protected is not None
            else None
        )
        for replacement in sorted(stripped_masks, key=popcount, reverse=True):
            if not replacement:
                continue
            if covers_mask(replacement):
                continue
            if protected_covers is not None and protected_covers(replacement):
                continue
            index.add_mask(replacement)
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def covers(self, candidate: Itemset) -> bool:
        """True if ``candidate`` is a subset of some element.

        Routed through the index the constructing kernel chose: with the
        bitmask kernel this is a guard-masked trie descent, sub-linear in
        the element count, not a rescan of every element.
        """
        return self._index.covers(candidate)

    def supersets_of(self, candidate: Itemset) -> List[Itemset]:
        """All elements containing ``candidate`` (same routing as covers)."""
        return self._index.supersets_of(candidate)

    @property
    def cover_queries(self) -> int:
        """Cover queries answered by the index (0 when it does not count)."""
        return getattr(self._index, "queries", 0)

    @property
    def cover_node_visits(self) -> int:
        """Trie nodes visited answering them (the sub-linearity metric)."""
        return getattr(self._index, "node_visits", 0)

    def elements_longer_than(self, length: int) -> Set[Itemset]:
        """Elements with more than ``length`` items."""
        return {element for element in self._index if len(element) > length}

    def check_invariants(
        self,
        frequent: Iterable[Itemset] = (),
        infrequent: Iterable[Itemset] = (),
        protected: Iterable[Itemset] = (),
    ) -> None:
        """Assert Definition 1 against known classifications (test hook).

        ``protected`` is the current MFS; coverage of frequents is required
        from the union MFS ∪ MFCS (amendment A4).  Raises AssertionError on
        violation.
        """
        assert is_antichain(self._index.members), "MFCS is not an antichain"
        protected_cover = CoverIndex(protected)
        for itemset_ in frequent:
            assert self._index.covers(itemset_) or protected_cover.covers(
                itemset_
            ), "frequent %r not covered by MFS ∪ MFCS" % (itemset_,)
        for itemset_ in infrequent:
            assert not self._index.covers(itemset_), (
                "infrequent %r still covered by MFCS" % (itemset_,)
            )
