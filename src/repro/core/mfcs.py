"""The maximum frequent candidate set (MFCS) and the MFCS-gen algorithm.

Definition 1 of the paper: at any point of the search, the MFCS is a
minimum-cardinality set of itemsets such that the union of all the subsets
of its elements (i) contains every itemset classified frequent so far and
(ii) contains no itemset classified infrequent so far.  The MFCS is always
a superset of the (final) MFS, and the top-down half of Pincer-Search is
nothing but maintaining this set and counting its elements.

The update rule (Section 3.2, algorithm *MFCS-gen*): for every newly
discovered infrequent itemset ``s`` and every MFCS element ``m ⊇ s``,
replace ``m`` by the ``|s|`` itemsets ``m \\ {e}`` for ``e ∈ s``, keeping
only those not already covered by another element.  Removing exactly one
item of ``s`` produces the *longest* subsets of ``m`` that exclude ``s``,
which is what keeps the MFCS minimum (Lemma 1).

Two documented amendments (DESIGN.md A4/A5) refine the paper's pseudocode:

* replacements that are subsets of an already-discovered maximal frequent
  itemset are dropped, so the working invariant is that **MFS ∪ MFCS**
  jointly cover all frequent itemsets and the MFCS never re-counts known
  frequent territory;
* the empty itemset is never stored.

All containment bookkeeping runs on :class:`~repro.core.cover.CoverIndex`,
so splitting on an infrequent itemset touches only the elements that
actually contain it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set

from .cover import CoverIndex, as_cover
from .itemset import Itemset, is_subset, sort_itemsets, without_item
from .lattice import is_antichain


class MFCS:
    """Mutable maximum-frequent-candidate-set.

    >>> mfcs = MFCS([(1, 2, 3, 4, 5, 6)])
    >>> mfcs.exclude((1, 6))
    >>> mfcs.exclude((3, 6))
    >>> sorted(mfcs)
    [(1, 2, 3, 4, 5), (2, 4, 5, 6)]

    (This is the paper's Section 3.2 worked example.)
    """

    def __init__(self, elements: Iterable[Itemset] = ()) -> None:
        self._index = CoverIndex()
        #: lifetime count of Observation-1 applications (infrequent
        #: itemsets excluded) and of elements split by them — the
        #: top-down work the trace/metrics layer reports per pass
        self.exclusions = 0
        self.splits = 0
        # longest-first insertion makes construction from an arbitrary
        # family keep only its maximal members
        for element in sorted(set(elements), key=len, reverse=True):
            self.add(element)

    @classmethod
    def for_universe(cls, universe: Iterable[int]) -> "MFCS":
        """The paper's initial MFCS: one element holding every item.

        >>> sorted(MFCS.for_universe([2, 1, 3]))
        [(1, 2, 3)]
        """
        top = tuple(sorted(set(universe)))
        return cls([top] if top else [])

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[Itemset]:
        return iter(self._index)

    def __contains__(self, element: Itemset) -> bool:
        return element in self._index

    def __bool__(self) -> bool:
        return bool(self._index)

    def __repr__(self) -> str:
        preview = sort_itemsets(self._index.members)[:4]
        suffix = ", ..." if len(self._index) > 4 else ""
        return "MFCS(%s%s)" % (preview, suffix)

    @property
    def elements(self) -> Set[Itemset]:
        """A snapshot copy of the current elements."""
        return set(self._index.members)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, element: Itemset) -> bool:
        """Insert ``element`` unless it is already covered; prune its subsets.

        Maintains the antichain/minimality property.  Returns True when the
        element was actually inserted.
        """
        if not element:
            return False
        if self._index.covers(element):
            return False
        for member in self._index.members:
            if is_subset(member, element):
                self._index.discard(member)
        self._index.add(element)
        return True

    def remove(self, element: Itemset) -> None:
        """Remove an element (e.g. one promoted to the MFS)."""
        self._index.discard(element)

    def exclude(
        self,
        infrequent: Itemset,
        protected: Optional[object] = None,
    ) -> None:
        """MFCS-gen for a single infrequent itemset.

        Every element containing ``infrequent`` is replaced by its maximal
        subsets that avoid ``infrequent``.  Replacements covered by another
        element — or by any itemset in ``protected`` (the current MFS,
        amendment A4) — are dropped.
        """
        if not infrequent:
            raise ValueError("cannot exclude the empty itemset")
        protected_cover = as_cover(protected) if protected is not None else None
        self._exclude(infrequent, protected_cover, None)

    def _exclude(
        self,
        infrequent: Itemset,
        protected: Optional[CoverIndex],
        budget: Optional[List[int]],
    ) -> bool:
        """Split every element containing ``infrequent``.

        ``budget`` (a one-element mutable list of remaining work units,
        where one unit ≈ one item-mask lookup) implements the adaptive
        version's work cap; returns False when it ran out mid-split.
        """
        self.exclusions += 1
        for element in self._index.supersets_of(infrequent):
            if budget is not None:
                budget[0] -= len(element) * len(infrequent)
                if budget[0] < 0:
                    return False
            self.splits += 1
            self._index.discard(element)
            for item in infrequent:
                replacement = without_item(element, item)
                if not replacement:
                    continue  # amendment A5: never store the empty itemset
                if self._index.covers(replacement):
                    continue
                if protected is not None and protected.covers(replacement):
                    continue
                # A replacement is never a *superset* of a remaining
                # element (it lost an item of a former antichain member
                # that every split sibling retains — see tests), so a
                # plain insert keeps the antichain property.
                self._index.add(replacement)
        return True

    def update(
        self,
        infrequent_sets: Iterable[Itemset],
        protected: Optional[object] = None,
        size_cap: Optional[int] = None,
        work_cap: Optional[int] = None,
    ) -> bool:
        """The full MFCS-gen loop over a batch of infrequent itemsets.

        The paper runs this once per pass with ``S_k``; Pincer-Search also
        feeds MFCS elements that were themselves counted infrequent
        (amendment A2).

        Two guards implement the adaptive version (Section 3.5); when
        either trips, the update stops and returns False — the caller
        should abandon the MFCS, whose contents are no longer meaningful:

        * ``size_cap`` — maximum number of elements; a blown-up MFCS costs
          more support counting than the top-down search can save;
        * ``work_cap`` — maximum split work (in item-mask-lookup units);
          on scattered distributions the pass-2 update degenerates into
          incremental maximal-clique maintenance over the frequent-pair
          graph, whose cost must be bounded *during* the update.

        Returns True when fully applied.
        """
        protected_cover = as_cover(protected) if protected is not None else None
        budget = [work_cap] if work_cap is not None else None
        singletons = []
        larger = []
        for infrequent in infrequent_sets:
            (singletons if len(infrequent) == 1 else larger).append(infrequent)
        if singletons and not self._exclude_items(
            {s[0] for s in singletons}, protected_cover, budget
        ):
            return False
        if size_cap is not None and len(self._index) > size_cap:
            return False
        for infrequent in larger:
            if not self._exclude(infrequent, protected_cover, budget):
                return False
            if size_cap is not None and len(self._index) > size_cap:
                return False
        return True

    def _exclude_items(
        self,
        items: "set[int]",
        protected: Optional[CoverIndex],
        budget: Optional[List[int]],
    ) -> bool:
        """Batch fast path for infrequent *1-itemsets*.

        Splitting on a singleton ``{e}`` replaces each element containing
        ``e`` by the single itemset ``element \\ {e}``, so a batch of
        singletons just strips all the batch items from every element —
        pass 1's "top-down search goes down m levels in one pass" costs
        one rebuild instead of ``m`` incremental splits.  Stripping is
        inclusion-monotone, so taking maximal survivors afterwards gives
        exactly the sequential MFCS-gen result.
        """
        self.exclusions += len(items)
        replacements = []
        for element in self._index.members:
            if not any(item in items for item in element):
                continue
            if budget is not None:
                budget[0] -= len(element)
                if budget[0] < 0:
                    return False
            self.splits += 1
            self._index.discard(element)
            replacements.append(
                tuple(item for item in element if item not in items)
            )
        # longest-first: a later (shorter) replacement can never swallow an
        # earlier one, so a plain covers-check keeps the antichain intact
        for replacement in sorted(replacements, key=len, reverse=True):
            if not replacement:
                continue
            if self._index.covers(replacement):
                continue
            if protected is not None and protected.covers(replacement):
                continue
            self._index.add(replacement)
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def covers(self, candidate: Itemset) -> bool:
        """True if ``candidate`` is a subset of some element."""
        return self._index.covers(candidate)

    def supersets_of(self, candidate: Itemset) -> List[Itemset]:
        """All elements containing ``candidate``."""
        return self._index.supersets_of(candidate)

    def elements_longer_than(self, length: int) -> Set[Itemset]:
        """Elements with more than ``length`` items."""
        return {element for element in self._index if len(element) > length}

    def check_invariants(
        self,
        frequent: Iterable[Itemset] = (),
        infrequent: Iterable[Itemset] = (),
        protected: Iterable[Itemset] = (),
    ) -> None:
        """Assert Definition 1 against known classifications (test hook).

        ``protected`` is the current MFS; coverage of frequents is required
        from the union MFS ∪ MFCS (amendment A4).  Raises AssertionError on
        violation.
        """
        assert is_antichain(self._index.members), "MFCS is not an antichain"
        protected_cover = CoverIndex(protected)
        for itemset_ in frequent:
            assert self._index.covers(itemset_) or protected_cover.covers(
                itemset_
            ), "frequent %r not covered by MFS ∪ MFCS" % (itemset_,)
        for itemset_ in infrequent:
            assert not self._index.covers(itemset_), (
                "infrequent %r still covered by MFCS" % (itemset_,)
            )
