"""The result object every miner in the library returns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from .itemset import Itemset, is_subset, is_subset_of_any, sort_itemsets
from .lattice import downward_closure, is_antichain
from .stats import MiningStats


class MiningTimeout(Exception):
    """A miner exceeded its ``time_budget``.

    Carries the partial accounting so callers (notably the benchmark
    harness) can report "did not finish within N seconds" rows with the
    passes and candidate counts completed so far — which is how the
    reproduction renders the paper's several-orders-of-magnitude cells
    where Apriori is hopeless at any practical budget.
    """

    def __init__(self, algorithm: str, seconds: float, stats: MiningStats):
        super().__init__(
            "%s exceeded its time budget after %.1fs (%d passes done)"
            % (algorithm, seconds, stats.num_passes)
        )
        self.algorithm = algorithm
        self.seconds = seconds
        self.stats = stats


@dataclass
class MiningResult:
    """Outcome of a maximum-frequent-set discovery run.

    The primary payload is :attr:`mfs` — the maximum frequent set, i.e. all
    maximal frequent itemsets.  Because the MFS "uniquely defines the entire
    frequent itemsets" (paper, Section 1), :meth:`is_frequent` and
    :meth:`frequent_itemsets` answer frequency questions for *any* itemset
    without another database pass.

    :attr:`supports` holds the absolute support of every itemset the run
    counted; it always contains the MFS members themselves, and usually many
    of their subsets (everything the bottom-up passes touched).
    """

    mfs: FrozenSet[Itemset]
    supports: Dict[Itemset, int]
    num_transactions: int
    min_support_count: int
    min_support: float
    algorithm: str
    stats: MiningStats = field(default_factory=MiningStats)

    def __post_init__(self) -> None:
        if not is_antichain(self.mfs):
            raise ValueError("MFS must be an antichain of itemsets")
        missing = [member for member in self.mfs if member not in self.supports]
        if missing:
            raise ValueError(
                "supports must cover every MFS member; missing %r" % missing[:3]
            )

    # ------------------------------------------------------------------

    def is_frequent(self, candidate: Iterable[int]) -> bool:
        """True iff ``candidate`` is frequent.

        "an itemset is frequent if and only if it is a subset of a maximal
        frequent itemset" (paper, Section 2.1).  The empty itemset is
        frequent whenever anything is.

        >>> result = MiningResult(frozenset({(1, 2)}), {(1, 2): 3}, 4, 2, 0.5, "x")
        >>> result.is_frequent((1,))
        True
        >>> result.is_frequent((1, 3))
        False
        """
        probe = tuple(sorted(set(candidate)))
        if probe == ():
            return bool(self.mfs)
        return is_subset_of_any(probe, self.mfs)

    def is_maximal(self, candidate: Iterable[int]) -> bool:
        """True iff ``candidate`` is one of the maximal frequent itemsets."""
        return tuple(sorted(set(candidate))) in self.mfs

    def frequent_itemsets(self) -> Set[Itemset]:
        """Materialise *all* frequent itemsets from the MFS.

        Exponential in the longest MFS member — that blow-up is the paper's
        whole point, so call this only when the maximal sets are short.
        """
        return downward_closure(self.mfs)

    def support_count(self, candidate: Iterable[int]) -> Optional[int]:
        """Absolute support if it was counted during the run, else None."""
        return self.supports.get(tuple(sorted(set(candidate))))

    def support(self, candidate: Iterable[int]) -> Optional[float]:
        """Fractional support if counted during the run, else None."""
        count = self.support_count(candidate)
        if count is None or self.num_transactions == 0:
            return None
        return count / self.num_transactions

    # ------------------------------------------------------------------

    def sorted_mfs(self) -> List[Itemset]:
        """MFS members ordered by (length, lexicographic)."""
        return sort_itemsets(self.mfs)

    def longest_maximal(self) -> Optional[Itemset]:
        """A longest maximal frequent itemset (None when MFS is empty)."""
        return max(self.mfs, key=len, default=None)

    def contains_superset_of(self, candidate: Iterable[int]) -> List[Itemset]:
        """All MFS members that contain ``candidate``."""
        probe = tuple(sorted(set(candidate)))
        return [member for member in self.sorted_mfs() if is_subset(probe, member)]

    def __repr__(self) -> str:
        return "MiningResult(%s, |MFS|=%d, minsup=%g, passes=%d)" % (
            self.algorithm,
            len(self.mfs),
            self.min_support,
            self.stats.num_passes,
        )
