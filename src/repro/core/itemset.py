"""Canonical itemset representation and algebra.

Throughout the library an *item* is an :class:`int` and an *itemset* is a
tuple of distinct items sorted in ascending order.  Keeping itemsets as
sorted tuples gives three properties the algorithms rely on:

* they are hashable, so they can live in sets and dictionary keys (the
  frequent/infrequent/candidate sets are plain Python sets and dicts);
* lexicographic ordering of the tuples matches the ordering assumed by the
  Apriori-gen *join* procedure (the paper's Section 3.3 notes that "itemsets
  are maintained as sequences in sorted lexicographical order, and the
  algorithm relies on this fact");
* prefix comparisons, which drive both *join* and the Pincer *recovery*
  procedure, are cheap tuple slices.

This module is intentionally free of any database or algorithm knowledge —
it is the shared vocabulary of everything else in :mod:`repro`.

The tuple is the *interface* representation.  The lattice hot paths
(candidate generation, MFS/MFCS pruning) may additionally intern itemsets
as integer bitmasks behind :mod:`repro.core.kernel`; masks never leak
through any public API, and every function here remains the semantic
reference the kernels are differentially tested against.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Sequence

from .._types import EMPTY, Itemset  # re-exported for backward compatibility


def itemset(items: Iterable[int]) -> Itemset:
    """Build a canonical itemset from any iterable of items.

    Duplicates are removed and items are sorted:

    >>> itemset([3, 1, 2, 3])
    (1, 2, 3)
    """
    return tuple(sorted(set(items)))


def is_canonical(candidate: Sequence[int]) -> bool:
    """Return True if ``candidate`` is already a canonical itemset.

    >>> is_canonical((1, 2, 5))
    True
    >>> is_canonical((2, 1))
    False
    >>> is_canonical((1, 1, 2))
    False
    """
    return all(a < b for a, b in zip(candidate, candidate[1:]))


def validate(candidate: Sequence[int]) -> Itemset:
    """Validate that ``candidate`` is canonical and return it as a tuple.

    Raises :class:`ValueError` otherwise.  Use at public API boundaries;
    internal code assumes canonical input.
    """
    result = tuple(candidate)
    if not is_canonical(result):
        raise ValueError(
            "not a canonical itemset (sorted, distinct items): %r" % (candidate,)
        )
    return result


def union(first: Itemset, second: Itemset) -> Itemset:
    """Set union of two canonical itemsets, canonical result.

    >>> union((1, 3), (2, 3))
    (1, 2, 3)
    """
    return tuple(sorted(set(first) | set(second)))


def difference(first: Itemset, second: Itemset) -> Itemset:
    """Items of ``first`` not in ``second``.

    >>> difference((1, 2, 3, 4), (2, 4))
    (1, 3)
    """
    excluded = set(second)
    return tuple(item for item in first if item not in excluded)


def intersection(first: Itemset, second: Itemset) -> Itemset:
    """Items common to both itemsets.

    >>> intersection((1, 2, 3), (2, 3, 4))
    (2, 3)
    """
    common = set(second)
    return tuple(item for item in first if item in common)


def without_item(base: Itemset, item: int) -> Itemset:
    """Remove a single item; the workhorse of MFCS-gen (paper step 7).

    >>> without_item((1, 2, 3), 2)
    (1, 3)
    """
    return tuple(element for element in base if element != item)


def is_subset(small: Itemset, large: Itemset) -> bool:
    """Subset test (not necessarily proper) via a linear merge.

    Both arguments must be canonical.  The merge walk is faster than building
    throwaway ``set`` objects for the short itemsets this library handles.

    >>> is_subset((1, 3), (1, 2, 3))
    True
    >>> is_subset((1, 4), (1, 2, 3))
    False
    >>> is_subset((), (1,))
    True
    """
    if len(small) > len(large):
        return False
    position = 0
    limit = len(large)
    for wanted in small:
        while position < limit and large[position] < wanted:
            position += 1
        if position == limit or large[position] != wanted:
            return False
        position += 1
    return True


def is_proper_subset(small: Itemset, large: Itemset) -> bool:
    """Proper subset test.

    >>> is_proper_subset((1, 2), (1, 2))
    False
    >>> is_proper_subset((1,), (1, 2))
    True
    """
    return len(small) < len(large) and is_subset(small, large)


def is_superset(large: Itemset, small: Itemset) -> bool:
    """Superset test; mirror of :func:`is_subset`."""
    return is_subset(small, large)


def k_subsets(base: Itemset, k: int) -> Iterator[Itemset]:
    """Yield all ``k``-item subsets of ``base`` in lexicographic order.

    >>> list(k_subsets((1, 2, 3), 2))
    [(1, 2), (1, 3), (2, 3)]
    """
    return combinations(base, k)


def proper_subsets(base: Itemset) -> Iterator[Itemset]:
    """Yield all proper non-empty subsets of ``base``.

    A maximal frequent itemset of length ``l`` implies ``2**l - 2`` of these
    (the paper's Section 1 cost argument).

    >>> sorted(proper_subsets((1, 2)))
    [(1,), (2,)]
    """
    for size in range(1, len(base)):
        yield from combinations(base, size)


def all_subsets(base: Itemset) -> Iterator[Itemset]:
    """Yield every subset of ``base`` including ``()`` and ``base`` itself."""
    for size in range(len(base) + 1):
        yield from combinations(base, size)


def immediate_subsets(base: Itemset) -> Iterator[Itemset]:
    """Yield the ``len(base)`` subsets obtained by dropping one item.

    >>> list(immediate_subsets((1, 2, 3)))
    [(2, 3), (1, 3), (1, 2)]
    """
    for index in range(len(base)):
        yield base[:index] + base[index + 1:]


def prefix(base: Itemset, length: int) -> Itemset:
    """First ``length`` items of ``base`` (the (k-1)-prefix of join/recovery).

    >>> prefix((1, 2, 3, 4), 2)
    (1, 2)
    """
    return base[:length]


def share_prefix(first: Itemset, second: Itemset, length: int) -> bool:
    """True if the two itemsets agree on their first ``length`` items.

    >>> share_prefix((1, 2, 3), (1, 2, 4), 2)
    True
    >>> share_prefix((1, 2, 3), (1, 3, 4), 2)
    False
    """
    return first[:length] == second[:length]


def is_subset_of_any(candidate: Itemset, collection: Iterable[Itemset]) -> bool:
    """True if ``candidate`` is a subset of at least one member.

    Used by the new prune procedure (line 2) and by MFCS maintenance.
    """
    return any(is_subset(candidate, member) for member in collection)


def is_superset_of_any(candidate: Itemset, collection: Iterable[Itemset]) -> bool:
    """True if ``candidate`` is a superset of at least one member."""
    return any(is_subset(member, candidate) for member in collection)


def max_length(collection: Iterable[Itemset]) -> int:
    """Length of the longest itemset in ``collection`` (0 when empty)."""
    return max((len(member) for member in collection), default=0)


def sort_itemsets(collection: Iterable[Itemset]) -> list:
    """Sort itemsets by (length, lexicographic) — the library's display order.

    >>> sort_itemsets([(2, 3), (1,), (1, 2)])
    [(1,), (1, 2), (2, 3)]
    """
    return sorted(collection, key=lambda member: (len(member), member))


def format_itemset(base: Itemset) -> str:
    """Human-readable rendering used by the CLI and examples.

    >>> format_itemset((1, 2, 5))
    '{1, 2, 5}'
    """
    return "{%s}" % ", ".join(str(item) for item in base)
