"""The Pincer-Search algorithm (paper Section 3.5).

Pincer-Search runs the Apriori-style bottom-up breadth-first search while
simultaneously maintaining the MFCS top-down.  Each pass reads the database
once, counting both the bottom-up candidates ``C_k`` and the unclassified
MFCS elements.  MFCS elements found frequent are maximal frequent itemsets
(their supersets were excluded by earlier infrequent discoveries) and move
to the MFS; their subsets disappear from the bottom-up search
(Observation 2).  Infrequent itemsets found bottom-up split the MFCS via
MFCS-gen (Observation 1), letting the top-down front descend many levels
per pass.

The implementation follows the paper's pseudocode with the documented
amendments (DESIGN.md):

* **A1** — the loop continues while the MFCS still holds *unclassified*
  elements, even when ``C_k`` is empty; the paper's ``C_k ≠ ∅`` guard can
  terminate with maximal frequent itemsets still uncounted inside MFCS.
* **A2** — MFCS elements counted infrequent are fed back into MFCS-gen
  (they are classified-infrequent itemsets, and Definition 1 forbids the
  MFCS from keeping them covered).  A1+A2 also make the top-down half a
  complete maximal-itemset miner on its own, which guarantees overall
  completeness even in corner cases where the join+recovery bottom-up
  chain stalls (see the A6 discussion in DESIGN.md).
* **A3/A4/A6** — see :mod:`repro.core.candidates` and
  :mod:`repro.core.mfcs`.

Adaptivity (Section 3.5): a pluggable
:class:`~repro.core.adaptive.AdaptivePolicy` may abandon the MFCS mid-run;
the algorithm then completes the remaining levels bottom-up.  To stay
complete — and to keep the Observation-2 savings — the frequent
``k``-itemsets that had been pruned as subsets of discovered maximal
itemsets are *virtually* restored for candidate generation: they rejoin
the Apriori join as known-frequent itemsets and are never re-counted.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Set, Tuple

from ..db.counting import SupportCounter, resolve_counter
from ..db.transaction_db import TransactionDatabase
from ..obs.instrument import NOOP, Instrumentation
from ..obs.logsetup import get_logger
from .adaptive import AdaptivePolicy, AlwaysMaintain, PassRateEstimator
from .bitset import candidate_upper_bound
from .candidates import first_level_candidates
from .itemset import Itemset
from .kernel import LatticeKernel, make_kernel
from .lattice import maximal_elements
from .result import MiningResult
from .stats import MiningStats, PassStats

logger = get_logger("core.pincer")


@contextmanager
def _engine_scope(engine: SupportCounter, owned: bool):
    """Close ``engine`` on exit when the miner created it itself.

    Caller-supplied counters are the caller's to manage (the bench
    harness reuses one across runs); miner-created ones would otherwise
    leak worker pools and shared-memory segments until GC.
    """
    try:
        yield engine
    finally:
        if owned:
            engine.close()


class PincerSearch:
    """Configurable Pincer-Search miner.

    Parameters
    ----------
    engine:
        Counting-engine name (see :func:`repro.db.counting.get_counter`).
        The default ``"auto"`` resolves per database at :meth:`mine` time:
        ``packed`` (vectorized NumPy) on large databases when NumPy is
        installed, else ``bitmap``.
    adaptive:
        When True (the paper's evaluated configuration) an
        :class:`AdaptivePolicy` may abandon the MFCS; when False the pure
        algorithm maintains it to the end.
    policy:
        Explicit policy instance, overriding ``adaptive``.  Policies are
        stateful, so give each :meth:`mine` call a fresh one.
    prune_uncovered:
        Extension beyond the paper: additionally drop bottom-up candidates
        not covered by MFS ∪ MFCS.  Such candidates are provably
        infrequent (the MFCS cover includes every frequent itemset at all
        times), so this never changes the result — only the candidate
        counts.  Off by default for paper fidelity.
    kernel:
        Lattice-kernel name (see :mod:`repro.core.kernel`): ``"bitmask"``
        (interned masks, the default), ``"tuple"`` (the seed fallback), or
        ``"auto"``/None to honour ``REPRO_LATTICE_KERNEL``.  Both kernels
        produce identical results; the differential tests rely on it.
    """

    def __init__(
        self,
        engine: str = "auto",
        adaptive: bool = True,
        policy: Optional[AdaptivePolicy] = None,
        prune_uncovered: bool = False,
        kernel: Optional[str] = None,
    ) -> None:
        self._engine = engine
        self._adaptive = adaptive
        self._policy_prototype = policy
        self._prune_uncovered = prune_uncovered
        self._kernel = kernel

    @property
    def name(self) -> str:
        return "pincer-search" if self._adaptive else "pincer-search-pure"

    @property
    def prune_uncovered(self) -> bool:
        return self._prune_uncovered

    def _make_policy(self) -> AdaptivePolicy:
        if self._policy_prototype is not None:
            return self._policy_prototype
        return AdaptivePolicy() if self._adaptive else AlwaysMaintain()

    # ------------------------------------------------------------------

    def mine(
        self,
        db: TransactionDatabase,
        min_support: Optional[float] = None,
        *,
        min_count: Optional[int] = None,
        counter: Optional[SupportCounter] = None,
        obs: Optional[Instrumentation] = None,
        initial_mfcs: Optional[List[Itemset]] = None,
        bottom_up: bool = True,
    ) -> MiningResult:
        """Discover the maximum frequent set of ``db``.

        Exactly one of ``min_support`` (fraction of ``|D|``) and
        ``min_count`` (absolute transactions) must be given.  ``obs``
        (see :func:`repro.obs.capture`) enables span tracing and metrics
        for the run; the default no-op instrumentation costs nothing.

        ``initial_mfcs`` seeds the top-down front in place of the
        full-universe MFCS.  The seed must satisfy *both* MFCS
        invariants at this threshold: (a) it covers every frequent
        itemset, and (b) every strict superset of a member is
        infrequent — (b) is what licenses declaring a frequent MFCS
        element maximal.  The maximal frequent family previously mined
        on the *same database* at a threshold ``<=`` this one satisfies
        both (any itemset frequent now was frequent then, hence under
        some old maximal member; any strict superset of an old maximal
        member was infrequent then, hence infrequent now).  Sessions,
        not end callers, supply this.

        ``bottom_up=False`` runs the top-down half alone: no Apriori
        candidates, only MFCS classification and descent.  Amendments
        A1/A2 make that a complete maximal miner by itself, and with a
        tight ``initial_mfcs`` (e.g. the maximal union of per-partition
        mines, which already covers every frequent itemset) it touches
        the database only where classifications flip.  Because the
        bottom-up stream an adaptive abandonment would fall back to does
        not exist in this mode, the MFCS is unconditionally maintained
        to the end; ``initial_mfcs`` is required.
        """
        if not bottom_up and initial_mfcs is None:
            raise ValueError(
                "bottom_up=False needs an initial_mfcs seed: the top-down "
                "half alone has no candidate stream to fall back on"
            )
        threshold, fraction = resolve_threshold(db, min_support, min_count)
        engine, decision = resolve_counter(db, self._engine, counter)
        obs = obs if obs is not None else NOOP
        engine.obs = obs
        engine.begin_query()
        progress = obs.progress
        if progress.enabled:
            progress.start_run(
                algorithm=self.name,
                num_transactions=len(db),
                min_support_count=threshold,
            )
        policy = self._make_policy() if bottom_up else AlwaysMaintain()
        lattice = make_kernel(self._kernel, db.universe)
        rate_estimator = PassRateEstimator()
        started = time.perf_counter()

        stats = MiningStats(
            algorithm=self.name,
            engine=decision.engine,
            engine_evidence=decision.evidence,
        )
        supports: Dict[Itemset, int] = {}
        mfs: Set[Itemset] = set()
        mfs_cover = lattice.make_cover()
        if initial_mfcs is None:
            mfcs = lattice.make_mfcs(db.universe)
        else:
            mfcs = lattice.make_mfcs_from(initial_mfcs)
        candidates: List[Itemset] = (
            first_level_candidates(db.universe) if bottom_up else []
        )
        # judge the initial MFCS against the real level-1 candidate count:
        # a warm-start seed holds one element per known maximal itemset,
        # which is its steady size, not an explosion
        maintaining = policy.keep_mfcs(0, len(mfcs), len(candidates), 0)
        # every itemset known frequent, counted or virtual (MFS-implied)
        frequents_seen: Set[Itemset] = set()
        longest_maximal = 0
        k = 0

        run_span = obs.span(
            "run",
            algorithm=self.name,
            engine=engine.name,
            kernel=lattice.name,
            num_transactions=len(db),
            min_support_count=threshold,
        )
        with _engine_scope(engine, counter is None), run_span:
            while maintaining and (candidates or len(mfcs) > 0):
                k += 1
                if k > 2 * db.num_items + 4:
                    # bottom-up needs ≤ n levels; the pure top-down descent
                    # of A1/A2 at most n more (one level per free pass)
                    raise AssertionError("pincer-search failed to terminate")
                pass_stats = PassStats(pass_number=k)
                pass_started = time.perf_counter()
                splits_before = mfcs.splits
                exclusions_before = mfcs.exclusions
                cover_queries_before = mfcs.cover_queries
                cover_visits_before = mfcs.cover_node_visits
                with obs.span("pass", k=k) as pass_span:
                    # ----- one database read: C_k plus unclassified MFCS
                    # elements (the engine emits the nested "count" span)
                    mfcs_elements = sorted(mfcs)
                    uncounted_candidates = [
                        c for c in candidates if c not in supports
                    ]
                    batch = dict.fromkeys(uncounted_candidates)
                    for element in mfcs_elements:
                        if element not in supports:
                            batch[element] = None
                    count_started = time.perf_counter()
                    supports.update(engine.count(db, batch))
                    pass_rate = rate_estimator.observe(
                        len(batch), time.perf_counter() - count_started
                    )
                    engine.note_pass_rate(pass_rate)
                    if obs.enabled and pass_rate is not None:
                        # the same EWMA the shard scheduler consults,
                        # mirrored for the metrics document / serve's
                        # Prometheus exposition
                        obs.gauge("miner.pass_rate").set(round(pass_rate, 3))
                    pass_stats.bottom_up_candidates = len(uncounted_candidates)
                    # MFCS elements counted this pass (an element that
                    # doubles as a bottom-up candidate is billed once, as
                    # the bottom-up side)
                    pass_stats.mfcs_candidates = len(batch) - len(
                        uncounted_candidates
                    )

                    with obs.span("prune"):
                        # ----- classify the MFCS elements (paper line 7
                        # + amendment A2)
                        infrequent_mfcs: List[Itemset] = []
                        for element in mfcs_elements:
                            if supports[element] >= threshold:
                                mfs.add(element)
                                mfs_cover.add(element)
                                mfcs.remove(element)
                                pass_stats.maximal_found += 1
                                longest_maximal = max(
                                    longest_maximal, len(element)
                                )
                            else:
                                infrequent_mfcs.append(element)

                        # ----- classify the bottom-up candidates (paper
                        # lines 8-9)
                        frequent_in_ck = [
                            c for c in candidates if supports[c] >= threshold
                        ]
                        infrequent_in_ck = [
                            c for c in candidates if supports[c] < threshold
                        ]
                        level_frequents = [
                            c for c in frequent_in_ck if not mfs_cover.covers(c)
                        ]
                        pass_stats.frequent_found = len(frequent_in_ck)
                        pass_stats.infrequent_found = len(infrequent_in_ck)
                        pass_stats.pruned_as_mfs_subsets = len(
                            frequent_in_ck
                        ) - len(level_frequents)
                        frequents_seen.update(level_frequents)

                    # ----- pre-update adaptivity (Section 3.5's "many
                    # 2-itemsets, few frequent" cue, sharpened by the
                    # Geerts–Goethals–Van den Bussche candidate bound): a
                    # hopeless pass abandons the MFCS before the expensive
                    # MFCS-gen update even starts
                    bound = candidate_upper_bound(len(level_frequents), k)
                    if obs.enabled:
                        pass_span.set(candidate_bound=bound)
                        obs.gauge("miner.candidate_bound").set(bound)
                    # engines with a live telemetry plane publish the
                    # bound so `pincer obs top` can show an honest ETA
                    engine.note_candidate_bound(bound)
                    maintaining = policy.keep_after_classification(
                        k, len(frequent_in_ck), len(candidates), longest_maximal,
                        mfcs_size=len(mfcs), candidate_bound=bound,
                    )
                    if not maintaining:
                        pass_stats.mfcs_size_after = 0
                        pass_stats.seconds = time.perf_counter() - pass_started
                        if pass_stats.total_candidates:
                            stats.passes.append(pass_stats)
                        self._finish_pass_obs(
                            obs, pass_span, pass_stats,
                            mfcs.splits - splits_before,
                            mfcs.exclusions - exclusions_before,
                            mfcs.cover_queries - cover_queries_before,
                            mfcs.cover_node_visits - cover_visits_before,
                            candidate_bound=bound,
                            mfs_size=len(mfs),
                        )
                        break

                    # ----- update MFCS (paper line 14, with A2/A4)
                    with obs.span("mfcs_gen") as mfcs_span:
                        if longest_maximal > policy.abandon_length_cap:
                            # abandonment is off the table (see
                            # AdaptivePolicy docs), so a mid-update cap
                            # abort must not fire either
                            size_cap = work_cap = None
                        else:
                            size_cap = policy.update_size_cap
                            work_cap = policy.update_work_cap
                        completed = mfcs.update(
                            infrequent_in_ck,
                            protected=mfs_cover,
                            size_cap=size_cap,
                            work_cap=work_cap,
                        )
                        if completed:
                            completed = mfcs.update(
                                infrequent_mfcs,
                                protected=mfs_cover,
                                size_cap=size_cap,
                                work_cap=work_cap,
                            )
                        if not completed:
                            # mid-update size blow-up (scattered
                            # distributions): the MFCS contents are no
                            # longer meaningful
                            policy.abandon()
                            maintaining = False
                        pass_stats.mfcs_size_after = (
                            len(mfcs) if maintaining else 0
                        )
                        mfcs_span.set(
                            completed=completed,
                            mfcs_size=pass_stats.mfcs_size_after,
                        )

                    # ----- candidate generation + adaptivity (paper
                    # lines 10-13, §3.5)
                    if maintaining:
                        with obs.span("generate"):
                            next_candidates = lattice.generate_candidates(
                                level_frequents, mfs_cover, k
                            )
                            if mfs:
                                with obs.span("recover"):
                                    pass_stats.recovered_candidates = (
                                        _count_recovered(
                                            lattice, level_frequents,
                                            next_candidates,
                                        )
                                    )
                            if self._prune_uncovered:
                                next_candidates = {
                                    c
                                    for c in next_candidates
                                    if mfcs.covers(c) or mfs_cover.covers(c)
                                }
                        maintaining = policy.keep_mfcs(
                            k,
                            len(mfcs),
                            len(next_candidates),
                            pass_stats.maximal_found,
                            longest_maximal,
                        )
                        candidates = sorted(next_candidates)

                    pass_stats.seconds = time.perf_counter() - pass_started
                    if pass_stats.total_candidates:
                        stats.passes.append(pass_stats)
                    self._finish_pass_obs(
                        obs, pass_span, pass_stats,
                        mfcs.splits - splits_before,
                        mfcs.exclusions - exclusions_before,
                        mfcs.cover_queries - cover_queries_before,
                        mfcs.cover_node_visits - cover_visits_before,
                        candidate_bound=bound,
                        mfs_size=len(mfs),
                    )

            if not maintaining:
                # The MFCS was abandoned (Section 3.5's adaptive fallback)
                # or never maintained: finish bottom-up with an Apriori
                # sweep over the not-yet-covered region.  If no maximal
                # itemset was discovered before abandonment, no pruning
                # ever removed a frequent itemset and the levels
                # classified so far are complete — the sweep resumes right
                # at the current level.  Otherwise it rebuilds every level
                # from the bottom, because the maintained phase's
                # candidate generation only guarantees completeness
                # jointly with the MFCS (the recovery procedure misses
                # candidates both of whose join parents are subsets of two
                # *different* MFS members — see DESIGN.md A6).  Either
                # way, already-counted itemsets and subsets of discovered
                # maximal itemsets are classified from cache, so only
                # genuinely unknown itemsets reach the engine.
                logger.info(
                    "MFCS abandoned after pass %d; completing bottom-up", k
                )
                if progress.enabled:
                    progress.on_abandon(
                        k=k,
                        reason=getattr(policy, "abandon_reason", None)
                        or "policy",
                    )
                start_level = k if not mfs else None
                self._complete_bottom_up(
                    db, engine, supports, threshold, mfs_cover, frequents_seen,
                    stats, k, start_level, obs=obs, lattice=lattice,
                    rate_estimator=rate_estimator,
                )

            final_mfs = maximal_elements(mfs | frequents_seen)
            stats.seconds = time.perf_counter() - started
            stats.records_read = engine.records_read
            if obs.enabled:
                run_span.set(
                    passes=stats.num_passes,
                    total_candidates=stats.total_candidates,
                    mfs_size=len(final_mfs),
                    records_read=stats.records_read,
                    abandoned=not maintaining,
                )
                obs.gauge("miner.mfs_size").set(len(final_mfs))
                obs.counter("miner.runs").inc()
        if progress.enabled:
            progress.on_finish(
                mfs_size=len(final_mfs),
                passes=stats.num_passes,
                seconds=stats.seconds,
            )
        logger.debug("%s", stats.summary())
        return MiningResult(
            mfs=frozenset(final_mfs),
            supports=supports,
            num_transactions=len(db),
            min_support_count=threshold,
            min_support=fraction,
            algorithm=self.name,
            stats=stats,
        )

    @staticmethod
    def _finish_pass_obs(
        obs: Instrumentation,
        pass_span,
        pass_stats: PassStats,
        splits: int,
        exclusions: int,
        cover_queries: int = 0,
        cover_node_visits: int = 0,
        candidate_bound: int = 0,
        mfs_size: int = 0,
    ) -> None:
        """Record one finished pass on its span and in the registry."""
        logger.debug(
            "pass %d: %d bottom-up + %d MFCS candidates, %d frequent, "
            "%d maximal, |MFCS|=%d",
            pass_stats.pass_number, pass_stats.bottom_up_candidates,
            pass_stats.mfcs_candidates, pass_stats.frequent_found,
            pass_stats.maximal_found, pass_stats.mfcs_size_after,
        )
        progress = obs.progress
        if progress.enabled:
            progress.on_pass(
                k=pass_stats.pass_number,
                candidates=pass_stats.total_candidates,
                mfcs_size=pass_stats.mfcs_size_after,
                candidate_bound=candidate_bound,
                maximal_found=pass_stats.maximal_found,
                mfs_size=mfs_size,
            )
        if not obs.enabled:
            return
        pass_span.set(
            mfcs_splits=splits,
            mfcs_exclusions=exclusions,
            **pass_stats.to_dict(),
        )
        obs.counter("miner.candidates.bottom_up").inc(
            pass_stats.bottom_up_candidates
        )
        obs.counter("miner.candidates.mfcs").inc(pass_stats.mfcs_candidates)
        obs.counter("miner.frequent_found").inc(pass_stats.frequent_found)
        obs.counter("miner.maximal_found").inc(pass_stats.maximal_found)
        obs.counter("miner.recovered_candidates").inc(
            pass_stats.recovered_candidates
        )
        obs.counter("miner.pruned_as_mfs_subsets").inc(
            pass_stats.pruned_as_mfs_subsets
        )
        obs.counter("mfcs.splits").inc(splits)
        obs.counter("mfcs.exclusions").inc(exclusions)
        obs.counter("mfcs.cover_queries").inc(cover_queries)
        obs.counter("mfcs.cover_node_visits").inc(cover_node_visits)
        obs.gauge("mfcs.size").set(pass_stats.mfcs_size_after)

    # ------------------------------------------------------------------

    @staticmethod
    def _complete_bottom_up(
        db: TransactionDatabase,
        engine: SupportCounter,
        supports: Dict[Itemset, int],
        threshold: int,
        mfs_cover,
        frequents_seen: Set[Itemset],
        stats: MiningStats,
        pass_number: int,
        start_level: Optional[int] = None,
        obs: Instrumentation = NOOP,
        lattice: Optional[LatticeKernel] = None,
        rate_estimator: Optional[PassRateEstimator] = None,
    ) -> None:
        """Apriori with a frequency oracle — the post-abandonment sweep.

        Classic levelwise search in which a candidate is classified
        without touching the database when (a) its support is already
        cached from the maintained phase, or (b) it is a subset of a
        discovered maximal frequent itemset (Observation 2).  Only the
        remaining unknowns are counted, one pass per level that has any.
        Every frequent itemset encountered lands in ``frequents_seen``,
        from which the caller's final ``maximal_elements`` derives the
        MFS.

        ``start_level`` resumes from an already-complete level (valid
        only when the maintained phase never pruned a frequent itemset,
        i.e. the MFS was still empty at abandonment); None rebuilds from
        level 1.
        """
        if lattice is None:
            lattice = make_kernel(None, db.universe)
        if start_level is not None and start_level >= 1:
            current = sorted(
                f for f in frequents_seen if len(f) == start_level
            )
            level = start_level
        else:
            current = []
            level = 0
        while True:
            level += 1
            if level == 1:
                candidates = first_level_candidates(db.universe)
            else:
                joined = lattice.apriori_join(current)
                candidates = sorted(lattice.apriori_prune(joined, current))
            if not candidates:
                break
            frequent: List[Itemset] = []
            unknown: List[Itemset] = []
            for candidate in candidates:
                count = supports.get(candidate)
                if count is not None:
                    if count >= threshold:
                        frequent.append(candidate)
                elif mfs_cover.covers(candidate):
                    frequent.append(candidate)  # known frequent, uncounted
                else:
                    unknown.append(candidate)
            if unknown:
                pass_number += 1
                pass_stats = stats.new_pass(pass_number)
                pass_started = time.perf_counter()
                with obs.span("sweep", k=level) as sweep_span:
                    count_started = time.perf_counter()
                    supports.update(engine.count(db, unknown))
                    if rate_estimator is not None:
                        engine.note_pass_rate(
                            rate_estimator.observe(
                                len(unknown),
                                time.perf_counter() - count_started,
                            )
                        )
                    pass_stats.bottom_up_candidates = len(unknown)
                    newly_frequent = [
                        c for c in unknown if supports[c] >= threshold
                    ]
                    pass_stats.frequent_found = len(newly_frequent)
                    pass_stats.infrequent_found = len(unknown) - len(
                        newly_frequent
                    )
                    pass_stats.seconds = time.perf_counter() - pass_started
                    if obs.enabled:
                        sweep_span.set(**pass_stats.to_dict())
                frequent.extend(newly_frequent)
                progress = obs.progress
                if progress.enabled:
                    progress.on_pass(
                        k=level,
                        candidates=len(unknown),
                        mfcs_size=0,
                        candidate_bound=candidate_upper_bound(
                            len(frequent), level
                        ),
                        phase="sweep",
                    )
            current = sorted(frequent)
            frequents_seen.update(current)
            if not current:
                break


def _count_recovered(
    lattice: LatticeKernel,
    level_frequents: List[Itemset],
    next_candidates: Set[Itemset],
) -> int:
    """How many surviving candidates the plain join alone missed."""
    plain = lattice.apriori_join(level_frequents)
    return sum(1 for candidate in next_candidates if candidate not in plain)


def resolve_threshold(
    db: TransactionDatabase,
    min_support: Optional[float],
    min_count: Optional[int],
) -> Tuple[int, float]:
    """Normalise the (fractional, absolute) support threshold pair."""
    if (min_support is None) == (min_count is None):
        raise ValueError("give exactly one of min_support and min_count")
    if min_count is not None:
        if min_count < 1:
            raise ValueError("min_count must be at least 1")
        fraction = min_count / len(db) if len(db) else 1.0
        return min_count, fraction
    return db.absolute_support(min_support), float(min_support)


def pincer_search(
    db: TransactionDatabase,
    min_support: Optional[float] = None,
    *,
    min_count: Optional[int] = None,
    engine: str = "auto",
    adaptive: bool = True,
    policy: Optional[AdaptivePolicy] = None,
    prune_uncovered: bool = False,
    kernel: Optional[str] = None,
    obs: Optional[Instrumentation] = None,
    initial_mfcs: Optional[List[Itemset]] = None,
    bottom_up: bool = True,
) -> MiningResult:
    """Functional one-shot entry point; see :class:`PincerSearch`.

    >>> from repro.db.transaction_db import TransactionDatabase
    >>> db = TransactionDatabase([[1, 2, 3], [1, 2, 3], [1, 2], [3]])
    >>> sorted(pincer_search(db, 0.5).mfs)
    [(1, 2, 3)]
    """
    miner = PincerSearch(
        engine=engine,
        adaptive=adaptive,
        policy=policy,
        prune_uncovered=prune_uncovered,
        kernel=kernel,
    )
    return miner.mine(
        db, min_support, min_count=min_count, obs=obs,
        initial_mfcs=initial_mfcs, bottom_up=bottom_up,
    )
