"""Utilities over the itemset lattice (the paper's "hypothesis search space").

The search space of frequent-itemset discovery is the power-set lattice of
the item universe — the paper's Figure 1 draws it as a binomial graph.  The
functions here answer structural questions about that lattice: antichain
tests, downward closures, cover counting.  They back both the MFCS data
structure (which is an antichain by construction) and the test oracles.
"""

from __future__ import annotations

from math import comb
from typing import AbstractSet, Iterable, Iterator, Set

from .cover import CoverIndex
from .itemset import Itemset, all_subsets, is_proper_subset, is_subset


def is_antichain(collection: Iterable[Itemset]) -> bool:
    """True if no member of ``collection`` is a subset of another member.

    Both MFS and MFCS are antichains at all times; the property tests lean
    on this predicate.  Duplicated entries in ``collection`` are collapsed
    first (a set is not a proper subset of itself).

    >>> is_antichain([(1, 2), (2, 3)])
    True
    >>> is_antichain([(1,), (1, 2)])
    False
    """
    index = CoverIndex(set(collection))
    return not any(index.covers_strictly(member) for member in index)


def maximal_elements(collection: Iterable[Itemset]) -> Set[Itemset]:
    """The maximal members of ``collection`` under set inclusion.

    Applied to the frequent set this yields exactly the maximum frequent
    set, which is how the brute-force oracle computes its answer.  Members
    are scanned longest-first against a cover index of the maximal ones
    found so far, so the cost is near-linear instead of quadratic.

    >>> sorted(maximal_elements([(1,), (1, 2), (3,)]))
    [(1, 2), (3,)]
    """
    index = CoverIndex()
    result: Set[Itemset] = set()
    for member in sorted(set(collection), key=len, reverse=True):
        if not index.covers(member):
            index.add(member)
            result.add(member)
    return result


def minimal_elements(collection: Iterable[Itemset]) -> Set[Itemset]:
    """The minimal members of ``collection`` under set inclusion.

    >>> sorted(minimal_elements([(1,), (1, 2), (3,)]))
    [(1,), (3,)]
    """
    members = list(set(collection))
    return {
        member
        for member in members
        if not any(is_proper_subset(other, member) for other in members)
    }


def downward_closure(collection: Iterable[Itemset]) -> Set[Itemset]:
    """All non-empty subsets of all members — the frequent set an MFS implies.

    "frequent itemsets are precisely all the non-empty subsets of its
    elements" (paper, Section 1).

    >>> sorted(downward_closure([(1, 2)]))
    [(1,), (1, 2), (2,)]
    """
    closure: Set[Itemset] = set()
    for member in collection:
        for subset in all_subsets(member):
            if subset:
                closure.add(subset)
    return closure


def covers(cover: Iterable[Itemset], candidate: Itemset) -> bool:
    """True if ``candidate`` is a subset of some member of ``cover``."""
    return any(is_subset(candidate, member) for member in cover)


def covered_count(collection: Iterable[Itemset]) -> int:
    """Number of distinct non-empty itemsets covered by ``collection``.

    Exponential in member length; intended for test-sized inputs only.
    """
    return len(downward_closure(collection))


def implied_frequent_count(length: int) -> int:
    """Non-trivial frequent itemsets implied by one maximal itemset.

    The paper's Section 1: a maximal frequent itemset of size ``l`` implies
    the presence of ``2**l - 2`` non-trivial frequent itemsets.

    >>> implied_frequent_count(3)
    6
    """
    if length < 1:
        return 0
    return 2 ** length - 2


def level_width(universe_size: int, level: int) -> int:
    """Number of ``level``-itemsets over a universe of ``universe_size`` items.

    >>> level_width(5, 2)
    10
    """
    return comb(universe_size, level)


def lattice_size(universe_size: int) -> int:
    """Total number of non-empty itemsets over the universe.

    >>> lattice_size(3)
    7
    """
    return 2 ** universe_size - 1


def level_of(collection: AbstractSet[Itemset], level: int) -> Set[Itemset]:
    """Members of ``collection`` whose length equals ``level``."""
    return {member for member in collection if len(member) == level}


def levels(collection: Iterable[Itemset]) -> Iterator[int]:
    """Sorted distinct lengths present in ``collection``.

    >>> list(levels([(1,), (2, 3), (4,)]))
    [1, 2]
    """
    return iter(sorted({len(member) for member in collection}))
