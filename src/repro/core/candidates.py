"""Candidate generation: Apriori-gen plus Pincer-Search's recovery and prune.

Three building blocks from the paper's Sections 3.3 and 3.4:

* :func:`apriori_join` — the classic join: two frequent ``k``-itemsets with
  the same ``(k-1)``-prefix produce one ``(k+1)``-candidate.
* :func:`apriori_prune` — the classic prune: drop candidates having an
  infrequent ``k``-subset.
* :func:`recovery` — Pincer-Search's repair step.  After frequent itemsets
  are removed from ``L_k`` as subsets of discovered maximal frequent
  itemsets, the join can miss candidates (the paper's ``{2,4,5,6}``
  example).  Recovery re-derives the missing combinations directly from the
  MFS elements without materialising the removed itemsets.
* :func:`pincer_prune` — the "new prune": additionally drops candidates
  that are subsets of an MFS element, and treats a ``k``-subset as known
  frequent when it is *either* in ``L_k`` *or* under an MFS element
  (amendment A3 in DESIGN.md; without it the paper's own Figure 2 example
  would lose the recovered candidate again).

These free functions are the *tuple reference* semantics.  The miners call
them through a pluggable :class:`~repro.core.kernel.LatticeKernel`: the
default bitmask kernel reimplements each hot path as interned-mask algebra
and is differentially tested against this module (DESIGN.md §8), so any
behavioural change here must be mirrored there.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Set

from .._types import CountingDeadline
from .cover import as_cover
from .itemset import Itemset, k_subsets


def apriori_join(
    level_frequents: Iterable[Itemset],
    deadline: "float | None" = None,
) -> Set[Itemset]:
    """The join procedure of Apriori-gen.

    All inputs must share one length ``k``; the result is the set of
    ``(k+1)``-itemsets formed from pairs with a common ``(k-1)``-prefix.

    ``deadline`` (a ``time.perf_counter`` timestamp) lets time-budgeted
    miners abort a combinatorially exploding join; exceeding it raises
    :class:`~repro.db.counting.CountingDeadline`.

    >>> sorted(apriori_join([(1, 2), (1, 3), (2, 3)]))
    [(1, 2, 3)]
    """
    ordered = sorted(level_frequents)
    if not ordered:
        return set()
    lengths = {len(itemset_) for itemset_ in ordered}
    if len(lengths) != 1:
        raise ValueError("join requires itemsets of a single length")
    prefix_length = lengths.pop() - 1
    candidates: Set[Itemset] = set()
    for index, first in enumerate(ordered):
        if (
            deadline is not None
            and index % 256 == 0
            and time.perf_counter() > deadline
        ):
            raise CountingDeadline("join passed its deadline")
        for second in ordered[index + 1:]:
            if first[:prefix_length] != second[:prefix_length]:
                break  # sorted order: no later itemset shares the prefix
            candidates.add(first + second[prefix_length:])
    return candidates


def apriori_prune(
    candidates: Iterable[Itemset], level_frequents: Set[Itemset]
) -> Set[Itemset]:
    """The prune procedure of Apriori-gen.

    Keeps a ``(k+1)``-candidate only if all of its ``k``-subsets are in
    ``level_frequents``.

    >>> sorted(apriori_prune({(1, 2, 3)}, {(1, 2), (1, 3), (2, 3)}))
    [(1, 2, 3)]
    >>> apriori_prune({(1, 2, 3)}, {(1, 2), (1, 3)})
    set()
    """
    kept: Set[Itemset] = set()
    for candidate in candidates:
        subset_length = len(candidate) - 1
        if all(
            subset in level_frequents
            for subset in k_subsets(candidate, subset_length)
        ):
            kept.add(candidate)
    return kept


def recovery(
    level_frequents: Iterable[Itemset],
    mfs: Iterable[Itemset],
    k: int,
) -> Set[Itemset]:
    """The recovery procedure (paper Section 3.4).

    For each ``Y`` in the current frequent set and each maximal frequent
    itemset ``X`` longer than ``k``: if the ``(k-1)``-prefix of ``Y`` lies
    inside ``X``, every item of ``X`` positioned after that prefix's last
    item yields a removed ``k``-subset of ``X`` sharing the prefix, whose
    join with ``Y`` is a candidate the plain join would have missed.

    The paper's example: ``Y = (2, 4, 6)``, ``X = (1, 2, 3, 4, 5)``:

    >>> sorted(recovery([(2, 4, 6), (2, 5, 6), (4, 5, 6)], [(1, 2, 3, 4, 5)], 3))
    [(2, 4, 5, 6)]
    """
    if k < 1:
        raise ValueError("recovery needs a positive pass number")
    recovered: Set[Itemset] = set()
    cover = as_cover(mfs)
    for frequent in level_frequents:
        if len(frequent) != k:
            raise ValueError("recovery expects %d-itemsets in L_k" % k)
        prefix = frequent[:k - 1]
        last = frequent[-1]
        # only the maximal itemsets containing the prefix can contribute;
        # the cover index finds them without scanning the whole MFS
        for element in cover.supersets_of(prefix):
            if len(element) <= k:
                continue
            if prefix:
                # items of X strictly after the prefix's last item
                start = element.index(prefix[-1]) + 1
            else:
                start = 0  # k == 1: every item of X forms a 1-subset
            for item in element[start:]:
                if item == last:
                    continue  # the restored subset would equal Y itself
                if item > last:
                    candidate = frequent + (item,)
                else:
                    candidate = prefix + (item, last)
                recovered.add(candidate)
    return recovered


def pincer_prune(
    candidates: Iterable[Itemset],
    level_frequents: Set[Itemset],
    mfs: Iterable[Itemset],
) -> Set[Itemset]:
    """The new prune procedure (paper Section 3.4, with amendment A3).

    Drops a candidate when (a) it is a subset of a discovered maximal
    frequent itemset — its frequency is already known (Observation 2) — or
    (b) one of its ``k``-subsets is *not* known frequent, where known
    frequent means "in ``L_k``" or "under an MFS element".
    """
    mfs_cover = as_cover(mfs)
    kept: Set[Itemset] = set()
    for candidate in candidates:
        if mfs_cover.covers(candidate):
            continue
        subset_length = len(candidate) - 1
        if all(
            subset in level_frequents or mfs_cover.covers(subset)
            for subset in k_subsets(candidate, subset_length)
        ):
            kept.add(candidate)
    return kept


def generate_candidates(
    level_frequents: Iterable[Itemset],
    mfs: Iterable[Itemset],
    k: int,
) -> Set[Itemset]:
    """Pincer-Search's full candidate generation: join + recovery + prune.

    ``level_frequents`` is the MFS-filtered ``L_k``; ``mfs`` is the current
    maximum frequent set.  Recovery runs whenever the MFS is non-empty
    (amendment A6: the paper triggers it only when itemsets were removed in
    the current pass, which can starve the bottom-up search of candidates
    whose partners were pruned in *earlier* passes).
    """
    frequents = list(level_frequents)
    mfs_cover = as_cover(mfs)
    candidates = apriori_join(frequents)
    if mfs_cover and frequents:
        candidates |= recovery(frequents, mfs_cover, k)
    return pincer_prune(candidates, set(frequents), mfs_cover)


def first_level_candidates(universe: Iterable[int]) -> List[Itemset]:
    """``C_1``: one 1-itemset per universe item.

    >>> first_level_candidates([3, 1])
    [(1,), (3,)]
    """
    return [(item,) for item in sorted(set(universe))]
