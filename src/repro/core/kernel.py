"""Pluggable lattice kernels: tuple fallback vs interned bitmask algebra.

PR 1 made support counting fast enough that the per-pass bottleneck moved
to the pure-Python *lattice* side: the Apriori join, the new prune, the
recovery procedure, and MFCS-gen.  All of them operate on the public
canonical-tuple vocabulary (:mod:`repro.core.itemset`), whose subset tests
and ``k``-subset enumerations are linear-in-``k`` tuple churn per probe.

A :class:`LatticeKernel` bundles those hot paths behind one interface so
the miners can swap implementations:

:class:`TupleKernel`
    The seed behaviour, verbatim: the free functions of
    :mod:`repro.core.candidates` plus :class:`~repro.core.cover.CoverIndex`
    families.  Kept as the differential-testing reference and as the
    fallback for exotic inputs.

:class:`BitmaskKernel`
    The fast path.  A per-run :class:`~repro.core.bitset.ItemUniverse`
    interns every itemset as an ``int`` mask, and the hot paths become
    integer algebra executed in C:

    * ``apriori_join`` buckets ``L_k`` by ``(k-1)``-prefix and emits
      ``prefix + (a, b)`` pairs per bucket — the seed's pairwise scan
      re-slices and re-compares tuple prefixes for every pair;
    * ``apriori_prune`` / ``pincer_prune`` test each ``k``-subset by
      clearing one bit (``mask ^ bit``) and probing a set of frequent
      masks — candidates are encoded uncached
      (:meth:`~repro.core.bitset.ItemUniverse.raw_mask_of`) so the
      throwaway fire-hose never touches the interning caches, and no
      subset tuples are materialised at all when the MFS cover is
      mask-native;
    * the MFS and MFCS families live in a
      :class:`~repro.core.cover.MaskCover` — the inverted cover index
      rebuilt on masks, with O(1) lazy discards and scrub-on-reuse
      inserts — so MFCS-gen splits shrink to mask ANDNOT plus constant
      table edits (see :class:`~repro.core.mfcs.MFCS`).  The guard-masked
      :class:`~repro.core.settrie.SetTrie` offers the same cover protocol
      with trie-shaped sharing for memory-lean or short-probe workloads.

Both kernels consume and produce plain canonical tuples — masks never
escape — so every existing API keeps its types and the two kernels are
interchangeable, which the differential tests exploit.  Selection:
:func:`make_kernel` resolves ``None``/"auto" to the ``REPRO_LATTICE_KERNEL``
environment variable, defaulting to ``bitmask``.
"""

from __future__ import annotations

import os
import time
from itertools import combinations
from typing import Iterable, List, Optional, Set

from .._types import CountingDeadline
from . import candidates as _tuple_ops
from .bitset import ItemUniverse
from .cover import CoverIndex, MaskCover, as_cover
from .itemset import Itemset, k_subsets
from .mfcs import MFCS

__all__ = [
    "BitmaskKernel",
    "COMPRESSED_FAMILY_ENV_VAR",
    "DEFAULT_KERNEL",
    "KERNEL_ENV_VAR",
    "KERNEL_NAMES",
    "LatticeKernel",
    "TupleKernel",
    "compressed_family_enabled",
    "make_kernel",
    "resolve_kernel_name",
]

KERNEL_NAMES = ("tuple", "bitmask")
DEFAULT_KERNEL = "bitmask"
KERNEL_ENV_VAR = "REPRO_LATTICE_KERNEL"

#: When set (to anything but ""/"0"/"false"/"no"/"off"), the bitmask
#: kernel's MFS/MFCS families store member masks in the sorted-delta
#: compressed store (:mod:`repro.core.maskstore`) instead of a dict —
#: same answers, ~bytes per member instead of a hash-table entry, for
#: runs whose frontier families outgrow memory.
COMPRESSED_FAMILY_ENV_VAR = "REPRO_COMPRESSED_FAMILY"


def compressed_family_enabled() -> bool:
    """Does the environment ask for compressed family storage?"""
    value = os.environ.get(COMPRESSED_FAMILY_ENV_VAR, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


class LatticeKernel:
    """Interface of a lattice kernel (see module docstring).

    Concrete kernels provide candidate generation (join, prune, recovery)
    and factories for the cover/MFCS structures whose query cost the
    kernel controls.  All methods speak canonical tuples.
    """

    name = "abstract"

    def make_cover(self, members: Iterable[Itemset] = ()):
        raise NotImplementedError

    def make_mfcs(self, universe: Iterable[int]) -> MFCS:
        raise NotImplementedError

    def make_mfcs_from(self, elements: Iterable[Itemset]) -> MFCS:
        """An MFCS seeded from an arbitrary family instead of the
        full-universe singleton.  Non-maximal members are dropped on
        insert, so any covering family is a valid seed (warm-start
        queries hand the maximal family mined at a lower threshold).
        """
        raise NotImplementedError

    def apriori_join(
        self,
        level_frequents: Iterable[Itemset],
        deadline: "float | None" = None,
    ) -> Set[Itemset]:
        raise NotImplementedError

    def apriori_prune(
        self,
        candidates: Iterable[Itemset],
        level_frequents: Iterable[Itemset],
    ) -> Set[Itemset]:
        raise NotImplementedError

    def recovery(
        self,
        level_frequents: Iterable[Itemset],
        mfs: Iterable[Itemset],
        k: int,
    ) -> Set[Itemset]:
        raise NotImplementedError

    def pincer_prune(
        self,
        candidates: Iterable[Itemset],
        level_frequents: Iterable[Itemset],
        mfs: Iterable[Itemset],
    ) -> Set[Itemset]:
        raise NotImplementedError

    def generate_candidates(
        self,
        level_frequents: Iterable[Itemset],
        mfs: Iterable[Itemset],
        k: int,
    ) -> Set[Itemset]:
        """Pincer-Search's full candidate generation: join+recovery+prune."""
        frequents = list(level_frequents)
        mfs_cover = as_cover(mfs)
        found = self.apriori_join(frequents)
        if mfs_cover and frequents:
            found |= self.recovery(frequents, mfs_cover, k)
        return self.pincer_prune(found, frequents, mfs_cover)


class TupleKernel(LatticeKernel):
    """Seed tuple-algebra kernel — the differential-testing reference."""

    name = "tuple"

    def make_cover(self, members: Iterable[Itemset] = ()) -> CoverIndex:
        return CoverIndex(members)

    def make_mfcs(self, universe: Iterable[int]) -> MFCS:
        return MFCS.for_universe(universe)

    def make_mfcs_from(self, elements: Iterable[Itemset]) -> MFCS:
        return MFCS(elements)

    def apriori_join(self, level_frequents, deadline=None):
        return _tuple_ops.apriori_join(level_frequents, deadline=deadline)

    def apriori_prune(self, candidates, level_frequents):
        return _tuple_ops.apriori_prune(candidates, set(level_frequents))

    def recovery(self, level_frequents, mfs, k):
        return _tuple_ops.recovery(level_frequents, mfs, k)

    def pincer_prune(self, candidates, level_frequents, mfs):
        return _tuple_ops.pincer_prune(candidates, set(level_frequents), mfs)


class BitmaskKernel(LatticeKernel):
    """Interned-bitmask kernel over one run's :class:`ItemUniverse`.

    Inputs containing items outside the universe (possible when the free
    functions are driven directly in tests) fall back to the tuple
    implementations rather than failing — the kernels must agree on every
    input, not just well-formed mining states.
    """

    name = "bitmask"

    def __init__(self, universe: Iterable[int]) -> None:
        self.universe = (
            universe
            if isinstance(universe, ItemUniverse)
            else ItemUniverse(universe)
        )

    def make_cover(self, members: Iterable[Itemset] = ()) -> MaskCover:
        return MaskCover(
            self.universe, members, compressed=compressed_family_enabled()
        )

    def make_mfcs(self, universe: Iterable[int]) -> MFCS:
        return MFCS.for_universe(universe, kernel=self)

    def make_mfcs_from(self, elements: Iterable[Itemset]) -> MFCS:
        return MFCS(elements, kernel=self)

    def _mask_cover(self, cover) -> "Optional[MaskCover]":
        """``cover`` as a mask-queryable view of *this* universe, or None."""
        if (
            isinstance(cover, MaskCover)
            and cover.universe is self.universe
            and not cover.has_foreign
        ):
            return cover
        return None

    # ------------------------------------------------------------------
    # candidate generation
    # ------------------------------------------------------------------

    def apriori_join(self, level_frequents, deadline=None):
        """Prefix-bucketed join: identical output to the pairwise scan.

        ``L_k`` sorts once; equal ``(k-1)``-prefixes are then adjacent, so
        one linear sweep groups the final items into per-prefix buckets
        and each bucket contributes ``C(|bucket|, 2)`` candidates without
        ever re-slicing or re-comparing prefixes.
        """
        ordered = sorted(level_frequents)
        if not ordered:
            return set()
        lengths = {len(itemset_) for itemset_ in ordered}
        if len(lengths) != 1:
            raise ValueError("join requires itemsets of a single length")
        prefix_length = lengths.pop() - 1
        buckets: List = []
        previous = None
        tails: List[int] = []
        for itemset_ in ordered:
            prefix = itemset_[:prefix_length]
            if prefix != previous:
                tails = []
                buckets.append((prefix, tails))
                previous = prefix
            tails.append(itemset_[prefix_length])
        found: Set[Itemset] = set()
        if deadline is None:
            update = found.update
            for prefix, tails in buckets:
                if prefix:
                    update(prefix + pair for pair in combinations(tails, 2))
                else:
                    # k = 1: the pairs *are* the candidates — bulk-load
                    # the combinations iterator without per-pair concat
                    update(combinations(tails, 2))
            return found
        add = found.add
        ticks = 0
        for prefix, tails in buckets:
            for index in range(len(tails) - 1):
                ticks += 1
                if ticks % 256 == 0 and time.perf_counter() > deadline:
                    raise CountingDeadline("join passed its deadline")
                first = tails[index]
                for second in tails[index + 1:]:
                    add(prefix + (first, second))
        return found

    def apriori_prune(self, candidates, level_frequents):
        frequents = list(level_frequents)
        masks = self.universe.masks_of
        try:
            frequent_masks = set(masks(frequents))
        except KeyError:
            return _tuple_ops.apriori_prune(candidates, set(frequents))
        raw_mask_of = self.universe.raw_mask_of
        kept: Set[Itemset] = set()
        for candidate in candidates:
            mask = raw_mask_of(candidate)
            if mask is None:
                # a foreign item: the subsets retaining it cannot be in
                # the (all in-universe) frequent set
                continue
            remaining = mask
            keep = True
            while remaining:
                bit = remaining & -remaining
                remaining ^= bit
                if mask ^ bit not in frequent_masks:
                    keep = False
                    break
            if keep:
                kept.add(candidate)
        return kept

    def recovery(self, level_frequents, mfs, k):
        # the tuple procedure already queries through the cover; handing
        # it a mask-native MFS keeps the supersets_of step sub-linear
        return _tuple_ops.recovery(level_frequents, as_cover(mfs), k)

    def pincer_prune(self, candidates, level_frequents, mfs):
        mfs_cover = as_cover(mfs)
        frequents = list(level_frequents)
        try:
            frequent_masks = set(self.universe.masks_of(frequents))
        except KeyError:
            return _tuple_ops.pincer_prune(candidates, set(frequents), mfs_cover)
        raw_mask_of = self.universe.raw_mask_of
        itemset_of = self.universe.itemset_of
        covers = mfs_cover.covers
        mask_view = self._mask_cover(mfs_cover)
        covers_mask = mask_view.covers_mask if mask_view is not None else None
        has_cover = bool(mfs_cover)
        kept: Set[Itemset] = set()
        frequent_set: Optional[Set[Itemset]] = None  # built only on fallback
        for candidate in candidates:
            mask = raw_mask_of(candidate)
            if mask is None:
                if covers(candidate):
                    continue
                if frequent_set is None:
                    frequent_set = set(frequents)
                if all(
                    subset in frequent_set or covers(subset)
                    for subset in k_subsets(candidate, len(candidate) - 1)
                ):
                    kept.add(candidate)
                continue
            if has_cover:
                # already under a maximal itemset (Observation 2)?
                if covers_mask is not None:
                    if covers_mask(mask):
                        continue
                elif covers(candidate):
                    continue
            remaining = mask
            keep = True
            while remaining:
                bit = remaining & -remaining
                remaining ^= bit
                subset_mask = mask ^ bit
                if subset_mask in frequent_masks:
                    continue
                if not has_cover:
                    keep = False
                    break
                if covers_mask is not None:
                    if covers_mask(subset_mask):
                        continue
                elif covers(itemset_of(subset_mask)):
                    continue
                keep = False
                break
            if keep:
                kept.add(candidate)
        return kept

    def generate_candidates(self, level_frequents, mfs, k):
        frequents = list(level_frequents)
        mfs_cover = as_cover(mfs)
        if k == 1 and not mfs_cover:
            # every pair's 1-subsets are its two (frequent) parents and
            # there is no MFS to prune under, so the join output already
            # *is* the pruned candidate set — the paper's "no candidate
            # generation process for 2-itemsets is needed"
            return self.apriori_join(frequents)
        found = self.apriori_join(frequents)
        if mfs_cover and frequents:
            found |= self.recovery(frequents, mfs_cover, k)
        return self.pincer_prune(found, frequents, mfs_cover)


def resolve_kernel_name(name: Optional[str] = None) -> str:
    """Normalise a kernel name; ``None``/"auto" honours the environment.

    >>> resolve_kernel_name("tuple")
    'tuple'
    >>> resolve_kernel_name(None) in KERNEL_NAMES
    True
    """
    if name is None or name == "auto":
        name = os.environ.get(KERNEL_ENV_VAR, "").strip().lower() or DEFAULT_KERNEL
    if name not in KERNEL_NAMES:
        raise ValueError(
            "unknown lattice kernel %r (choose from %s)"
            % (name, ", ".join(KERNEL_NAMES))
        )
    return name


def make_kernel(
    name: "Optional[str] | LatticeKernel", universe: Iterable[int]
) -> LatticeKernel:
    """Build the kernel ``name`` for a run over ``universe`` items.

    A :class:`LatticeKernel` *instance* passes through unchanged, which is
    how the lattice benchmark injects its recording kernel into a miner.
    """
    if isinstance(name, LatticeKernel):
        return name
    resolved = resolve_kernel_name(name)
    if resolved == "tuple":
        return TupleKernel()
    return BitmaskKernel(universe)
