"""Resident mining sessions: one hot database, many cheap queries.

A :class:`MiningSession` owns what a one-shot ``mine()`` call rebuilds
from scratch every time: the resolved counting engine (with its worker
pool / shared-memory plane attached), a cross-threshold
:class:`~repro.core.supportcache.SupportCache`, and the ledger of
already-answered thresholds that powers warm-start MFCS seeding.  A
query against a warm session is then mostly cache arithmetic:

* **Supports are threshold-independent** — every count stored while
  answering one query classifies the same itemset at any later
  threshold, so repeated and nearby thresholds resolve most passes
  without touching the data plane.
* **Maximal families order by threshold** — the MFS mined at ``s_lo``
  satisfies both MFCS invariants at any ``s_hi >= s_lo`` (it covers
  every itemset frequent at ``s_hi``, and every strict superset of a
  member is infrequent), so an upward query seeds its top-down front
  from the best mined family at or below its threshold instead of the
  full universe.  Downward queries get no seed — new maximal itemsets
  can sit strictly above the old family — but inherit every cached
  classification, which is where their savings live.

Queries are serialized on an internal lock: one engine cannot run two
counting passes at once.  Admission control and concurrency live one
layer up, in :mod:`repro.serve`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from ..db.counting import resolve_counter
from ..db.transaction_db import TransactionDatabase
from ..obs.instrument import NOOP, Instrumentation
from ..rules.from_mfs import expand_mfs_supports
from ..rules.generation import AssociationRule, generate_rules
from .adaptive import AdaptivePolicy, PassRateEstimator
from .bitset import ItemUniverse, candidate_upper_bound
from .itemset import Itemset
from .pincer import PincerSearch, resolve_threshold
from .result import MiningResult
from .supportcache import (
    DEFAULT_MAX_ENTRIES,
    CachedSupportCounter,
    SupportCache,
)

__all__ = ["MiningSession", "SessionClosedError"]


class SessionClosedError(RuntimeError):
    """A query reached a session after its :meth:`MiningSession.close`."""


class MiningSession:
    """A resident query plane over one :class:`TransactionDatabase`.

    Parameters
    ----------
    db:
        The hot database.  The session attaches one engine to it and
        keeps that attachment (worker pools, shared segments, prefix
        caches) alive across queries.
    engine:
        Engine name as accepted by the one-shot miners (default
        ``"auto"``).
    kernel / adaptive / policy / prune_uncovered:
        Forwarded to :class:`~repro.core.pincer.PincerSearch`.
    obs:
        Session-wide instrumentation; each query's spans and the
        ``cache.*`` metrics land here.
    cache_entries:
        Bound for the support cache (see :class:`SupportCache`).
    key:
        Snapshot identity string the cache is keyed by (e.g. the
        snapshot path).  Purely descriptive for in-memory databases.
    """

    def __init__(
        self,
        db: TransactionDatabase,
        *,
        engine: str = "auto",
        kernel: Optional[str] = None,
        adaptive: bool = True,
        policy: Optional[AdaptivePolicy] = None,
        prune_uncovered: bool = False,
        obs: Optional[Instrumentation] = None,
        cache_entries: int = DEFAULT_MAX_ENTRIES,
        key: Optional[str] = None,
    ) -> None:
        self.db = db
        self.obs = obs if obs is not None else NOOP
        self.key = key if key is not None else "mem-%x" % id(db)
        engine_obj, decision = resolve_counter(db, engine, None)
        self.decision = decision
        self.cache = SupportCache(
            ItemUniverse(db.universe), max_entries=cache_entries, key=self.key
        )
        #: the cached facade every query counts through; the session owns
        #: the wrapped engine's lifetime
        self.counter = CachedSupportCounter(engine_obj, self.cache)
        self._miner = PincerSearch(
            engine=engine,
            adaptive=adaptive,
            policy=policy,
            prune_uncovered=prune_uncovered,
            kernel=kernel,
        )
        #: absolute threshold -> MFS mined there (the warm-start ledger)
        self._mined: Dict[int, frozenset] = {}
        self._lock = threading.Lock()
        self.closed = False
        self.queries = 0
        self.warm_queries = 0
        #: EWMA of the *data-plane* counting throughput across queries
        #: (candidates actually counted by the engine per wall-clock
        #: second of mining).  Fed only when a query's passes reached the
        #: engine — all-cache warm queries resolve at memory speed and
        #: would otherwise inflate the rate the serve front-end divides
        #: candidate bounds by for its ETAs.
        self.rate = PassRateEstimator(alpha=0.3)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def mine(
        self,
        min_support: Optional[float] = None,
        *,
        min_count: Optional[int] = None,
        warm_start: bool = True,
        request_id: Optional[str] = None,
        span_sink: Optional[List[Dict[str, Any]]] = None,
        timings: Optional[Dict[str, float]] = None,
    ) -> MiningResult:
        """Answer one max-frequent-set query against the warm session.

        Identical results to a cold :meth:`PincerSearch.mine` at the
        same threshold — the cache substitutes counts it already proved,
        and the warm seed only replaces the full-universe MFCS with a
        family satisfying the same invariants (see
        :meth:`PincerSearch.mine` on ``initial_mfcs``).

        ``request_id`` stamps every span of this query (via the
        tracer's ambient binding — applied *inside* the query lock, so
        concurrent callers can never contaminate each other's spans);
        ``span_sink`` collects the query's closed span events for the
        caller (the serve slow-query recorder); ``timings`` receives
        ``queue_wait_s``, the time spent waiting for the session lock —
        the honest queue-wait a serve access log should report.
        """
        threshold, _ = resolve_threshold(self.db, min_support, min_count)
        wait_started = time.perf_counter()
        with self._lock:
            if timings is not None:
                timings["queue_wait_s"] = timings.get("queue_wait_s", 0.0) + (
                    time.perf_counter() - wait_started
                )
            self._ensure_open()
            seed = self._warm_seed(threshold) if warm_start else None
            misses_before = self.cache.misses
            mine_started = time.perf_counter()
            with self.obs.bind(sink=span_sink, request_id=request_id):
                result = self._miner.mine(
                    self.db,
                    min_count=threshold,
                    counter=self.counter,
                    obs=self.obs,
                    initial_mfcs=seed,
                )
            counted = self.cache.misses - misses_before
            if counted > 0:
                # data-plane throughput only (see ``self.rate``); the
                # whole mine's wall clock makes this a conservative rate,
                # so ETAs derived from it err long, never short
                self.rate.observe(
                    counted, time.perf_counter() - mine_started
                )
            self._mined[threshold] = result.mfs
            self.queries += 1
            if seed is not None:
                self.warm_queries += 1
        return result

    def rules(
        self,
        min_support: Optional[float] = None,
        *,
        min_count: Optional[int] = None,
        min_confidence: float = 0.8,
        depth: Optional[int] = 2,
        request_id: Optional[str] = None,
        span_sink: Optional[List[Dict[str, Any]]] = None,
        timings: Optional[Dict[str, float]] = None,
    ) -> List[AssociationRule]:
        """Stage-2 rules at a threshold, reusing the session's cache.

        Mines (warm) first, then expands MFS-subset supports through the
        cached counter, so repeated rule queries at nearby thresholds
        re-count almost nothing.  ``request_id`` / ``span_sink`` /
        ``timings`` behave as in :meth:`mine` and cover both phases.
        """
        result = self.mine(
            min_support,
            min_count=min_count,
            request_id=request_id,
            span_sink=span_sink,
            timings=timings,
        )
        if depth is None:
            depth = max((len(member) for member in result.mfs), default=0)
        wait_started = time.perf_counter()
        with self._lock:
            if timings is not None:
                timings["queue_wait_s"] = timings.get("queue_wait_s", 0.0) + (
                    time.perf_counter() - wait_started
                )
            self._ensure_open()
            with self.obs.bind(sink=span_sink, request_id=request_id):
                supports = expand_mfs_supports(
                    self.db, result, depth, counter=self.counter
                )
        return generate_rules(
            supports,
            num_transactions=result.num_transactions,
            min_confidence=min_confidence,
            min_support_count=result.min_support_count,
        )

    # ------------------------------------------------------------------
    # admission-control support
    # ------------------------------------------------------------------

    def estimate_cost(
        self,
        min_support: Optional[float] = None,
        *,
        min_count: Optional[int] = None,
    ) -> Dict[str, object]:
        """Cheap upper-bound cost estimate for a query at a threshold.

        Uses the Geerts–Goethals–Van den Bussche candidate bound over
        the frequent singletons — read from the cache when their counts
        are already known, else pessimistically all items.  Warm
        evidence (a mined threshold at or below the query's) marks the
        query cheap regardless of the bound, because its passes resolve
        from cache.  Never touches the data plane.
        """
        threshold, _ = resolve_threshold(self.db, min_support, min_count)
        known = 0
        frequent_singletons = 0
        for item in self.db.universe:
            cached = self.cache.get((item,))
            if cached is None:
                continue
            known += 1
            if cached >= threshold:
                frequent_singletons += 1
        if known == len(self.db.universe):
            bound = candidate_upper_bound(frequent_singletons, 1)
        else:  # singletons not yet counted: assume the worst
            bound = candidate_upper_bound(len(self.db.universe), 1)
        warm = self._best_seed_threshold(threshold) is not None
        return {
            "threshold": threshold,
            "candidate_bound": bound,
            "singletons_known": known == len(self.db.universe),
            "warm": warm,
            "records": len(self.db),
        }

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "engine": self.decision.engine,
            "queries": self.queries,
            "warm_queries": self.warm_queries,
            "mined_thresholds": sorted(self._mined),
            "cache": self.cache.stats(),
            "passes": self.counter.passes,
            "records_read": self.counter.records_read,
            "counting_rate": (
                round(self.rate.rate, 3) if self.rate.rate is not None else None
            ),
        }

    def close(self) -> None:
        """Release the engine; idempotent.  Later queries raise."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            self.counter.close()

    def __enter__(self) -> "MiningSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self.closed:
            raise SessionClosedError("session %s is closed" % self.key)

    def _best_seed_threshold(self, threshold: int) -> Optional[int]:
        """Largest mined threshold at or below ``threshold``, or None."""
        eligible = [t for t in self._mined if t <= threshold]
        return max(eligible) if eligible else None

    def _warm_seed(self, threshold: int) -> Optional[List[Itemset]]:
        """The MFCS seed for a query at ``threshold``, if one is sound.

        Only a family mined at a threshold ``<=`` the query's satisfies
        the superset-infrequency invariant (see
        :meth:`PincerSearch.mine`); among those the *largest* such
        threshold is the tightest family — fewest elements to classify
        top-down.
        """
        best = self._best_seed_threshold(threshold)
        if best is None:
            return None
        return sorted(self._mined[best])
