"""Interned bitmask representation of itemsets.

The public vocabulary of the library is the canonical sorted tuple
(:mod:`repro.core.itemset`).  Tuples are the right *interface* — hashable,
ordered, human-readable — but a poor *kernel* representation: every subset
test walks items one comparison at a time, every ``k``-subset enumeration
materialises ``k`` fresh tuples, and every hash touches ``k`` words.

This module provides the per-run translation layer the bitmask lattice
kernel (:mod:`repro.core.kernel`) is built on:

:class:`ItemUniverse`
    A bijection between the items of one mining run and dense bit
    positions, so every itemset is *also* an :class:`int` mask.  Subset
    test, union, difference and "drop one item" collapse to single
    arbitrary-precision integer operations executed in C.  Both directions
    of the translation are interned (tuple → mask and mask → tuple
    caches), so repeated boundary crossings — the same frequent itemsets
    re-entering candidate generation pass after pass — cost one dict hit.

:func:`candidate_upper_bound`
    The tight combinatorial upper bound of Geerts, Goethals & Van den
    Bussche ("A tight upper bound on the number of candidate patterns",
    see PAPERS.md) on how many ``(k+1)``-candidates Apriori-gen can emit
    from ``|L_k|`` frequent ``k``-itemsets.  It costs a handful of
    binomials per pass and is consumed by the adaptive policy
    (:mod:`repro.core.adaptive`) to abandon a hopeless MFCS *before* the
    expensive MFCS-gen update, and surfaced on the pass span for
    observability.

Masks live strictly behind the kernel: nothing outside :mod:`repro.core`
needs to know they exist, and the pure-tuple fallback path is kept intact
for differential testing.
"""

from __future__ import annotations

from math import comb
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .itemset import Itemset

__all__ = [
    "ItemUniverse",
    "bits_of",
    "candidate_upper_bound",
    "popcount",
]

try:  # int.bit_count is 3.10+; the fallback keeps 3.9 working
    int.bit_count
except AttributeError:  # pragma: no cover - exercised only on 3.9

    def popcount(mask: int) -> int:
        """Number of set bits in ``mask``."""
        return bin(mask).count("1")

else:

    def popcount(mask: int) -> int:
        """Number of set bits in ``mask``."""
        return mask.bit_count()


def bits_of(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order.

    >>> list(bits_of(0b10110))
    [1, 2, 4]
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class ItemUniverse:
    """Dense item ↔ bit-position bijection with two-way interning.

    Bit positions follow the ascending item order, so the ``i``-th bit of
    a mask corresponds to the ``i``-th smallest universe item and mask
    decoding yields canonical (sorted) tuples for free.

    >>> uni = ItemUniverse([30, 10, 20])
    >>> uni.mask_of((10, 30))
    5
    >>> uni.itemset_of(5)
    (10, 30)
    """

    __slots__ = (
        "_items",
        "_bit_of",
        "_bit_mask_of",
        "_mask_cache",
        "_tuple_cache",
        "full_mask",
    )

    def __init__(self, items: Iterable[int]) -> None:
        self._items: Tuple[int, ...] = tuple(sorted(set(items)))
        self._bit_of: Dict[int, int] = {
            item: position for position, item in enumerate(self._items)
        }
        self._bit_mask_of: Dict[int, int] = {
            item: 1 << position for position, item in enumerate(self._items)
        }
        #: interning caches; bounded by the lifetime of the kernel (one
        #: mining run or one bench replay), not by the process
        self._mask_cache: Dict[Itemset, int] = {}
        self._tuple_cache: Dict[int, Itemset] = {}
        #: mask with every universe bit set (the top of the lattice)
        self.full_mask = (1 << len(self._items)) - 1

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: int) -> bool:
        return item in self._bit_of

    def __repr__(self) -> str:
        return "ItemUniverse(%d items)" % len(self._items)

    @property
    def items(self) -> Tuple[int, ...]:
        """The universe items, ascending (bit position order)."""
        return self._items

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------

    def bit_mask(self, item: int) -> int:
        """The single-bit mask of one item; raises KeyError when unknown."""
        return self._bit_mask_of[item]

    def mask_of(self, itemset_: Itemset) -> int:
        """Encode a canonical itemset as an int mask (interned).

        Raises :class:`KeyError` for items outside the universe — kernel
        callers guarantee their itemsets are drawn from the run's
        universe, and the tuple fallback handles everything else.
        """
        cached = self._mask_cache.get(itemset_)
        if cached is not None:
            return cached
        mask = 0
        bit_mask_of = self._bit_mask_of
        for item in itemset_:
            mask |= bit_mask_of[item]
        self._mask_cache[itemset_] = mask
        self._tuple_cache.setdefault(mask, itemset_)
        return mask

    def try_mask_of(self, itemset_: Itemset) -> Optional[int]:
        """Like :meth:`mask_of` but None for out-of-universe itemsets."""
        try:
            return self.mask_of(itemset_)
        except KeyError:
            return None

    def raw_mask_of(self, itemset_: Itemset) -> Optional[int]:
        """Uncached encode; None for out-of-universe itemsets.

        The interning caches are a win for itemsets that recur across
        passes (frequents, MFCS elements) but a loss for the candidate
        fire-hose: pruning probes millions of itemsets that are seen once
        and thrown away, and interning each would pay two dict writes per
        probe and grow the caches without bound.  Hot prune loops encode
        through this method instead.
        """
        mask = 0
        bit_mask_of = self._bit_mask_of
        for item in itemset_:
            bit = bit_mask_of.get(item)
            if bit is None:
                return None
            mask |= bit
        return mask

    def itemset_of(self, mask: int) -> Itemset:
        """Decode a mask back to the canonical tuple (interned)."""
        cached = self._tuple_cache.get(mask)
        if cached is not None:
            return cached
        items = self._items
        decoded = tuple(items[position] for position in bits_of(mask))
        self._tuple_cache[mask] = decoded
        self._mask_cache.setdefault(decoded, mask)
        return decoded

    def masks_of(self, itemsets: Iterable[Itemset]) -> List[int]:
        """Encode a family of itemsets."""
        mask_of = self.mask_of
        return [mask_of(itemset_) for itemset_ in itemsets]


def candidate_upper_bound(num_frequent: int, k: int) -> int:
    """Geerts–Goethals–Van den Bussche bound on ``|C_{k+1}|`` from ``|L_k|``.

    Write ``n = |L_k|`` in its canonical ``k``-cascade (binomial)
    representation ``n = C(m_k, k) + C(m_{k-1}, k-1) + ... + C(m_r, r)``
    with ``m_k > m_{k-1} > ... > m_r >= r >= 1``; then the number of
    ``(k+1)``-itemsets all of whose ``k``-subsets can lie in ``L_k`` — and
    hence the number of candidates the join+prune can ever emit — is at
    most ``C(m_k, k+1) + C(m_{k-1}, k) + ... + C(m_r, r+1)``.

    The bound is *tight* (attained by compressed families), costs a few
    binomials, and needs no knowledge of the itemsets themselves — which
    is what makes it a usable per-pass estimator: the adaptive policy
    compares it against ``|MFCS|`` before paying for the MFCS-gen update.

    >>> candidate_upper_bound(4, 2)   # 4 pairs support at most one 3-set...
    1
    >>> candidate_upper_bound(6, 2)   # C(4,2)=6 pairs -> at most C(4,3)
    4
    >>> candidate_upper_bound(0, 3)
    0
    """
    if num_frequent <= 0 or k < 1:
        return 0
    remaining = num_frequent
    bound = 0
    level = k
    while remaining > 0 and level >= 1:
        # largest m with C(m, level) <= remaining
        m = level
        while comb(m + 1, level) <= remaining:
            m += 1
        if comb(m, level) > remaining:
            break  # remaining < C(level, level) = 1 cannot happen; safety
        bound += comb(m, level + 1)
        remaining -= comb(m, level)
        level -= 1
    return bound
