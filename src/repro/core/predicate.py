"""Pincer-Search over arbitrary anti-monotone predicates.

The paper frames frequent-itemset discovery as an instance of a more
general problem (Section 1 and the version-space discussion in Section 5):
given a finite universe and a predicate ``P`` over its subsets that is
**anti-monotone** (``P(X)`` and ``Y ⊆ X`` imply ``P(Y)``), find the
*maximal* sets satisfying ``P``.  Frequency above a threshold is one such
predicate; "attribute set is NOT a key of this relation" (minimal-keys
discovery, reference [11] of the paper) and "episode occurs in enough
windows" are others.

:class:`PredicatePincer` runs the same two-way search as the main miner —
levelwise candidates from the bottom, an MFCS frontier from the top — but
evaluates an oracle callback instead of counting a database.  The oracle
is consulted once per distinct set (answers are memoised), and the
*batch* in which sets are asked mirrors the passes of the main algorithm,
so oracle-call accounting matches the paper's candidate accounting.

For database frequency the main :class:`~repro.core.pincer.PincerSearch`
is faster (it counts whole batches per pass); this module is the right
tool when evaluating the predicate has nothing to do with transactions.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Dict, Iterable, List, Set, Tuple

from .candidates import first_level_candidates
from .cover import CoverIndex
from .itemset import Itemset
from .kernel import make_kernel
from .lattice import maximal_elements

#: An anti-monotone predicate over canonical itemsets.
Predicate = Callable[[Itemset], bool]


class OracleStats:
    """Accounting for one predicate-mining run."""

    def __init__(self) -> None:
        self.oracle_calls = 0
        self.rounds = 0
        self.maximal_found_top_down = 0

    def __repr__(self) -> str:
        return (
            "OracleStats(calls=%d, rounds=%d, top_down=%d)"
            % (self.oracle_calls, self.rounds, self.maximal_found_top_down)
        )


class PredicatePincer:
    """Maximal-satisfying-set miner for anti-monotone predicates.

    Parameters
    ----------
    predicate:
        The anti-monotone oracle.  It is the caller's responsibility that
        anti-monotonicity actually holds; :meth:`mine` verifies it on the
        fly for every (subset, superset) pair it happens to evaluate and
        raises on a violation.
    check_antimonotone:
        Disable the on-the-fly verification for speed.
    kernel:
        Lattice-kernel name (see :mod:`repro.core.kernel`); None resolves
        to the default (bitmask) kernel.
    """

    def __init__(
        self,
        predicate: Predicate,
        check_antimonotone: bool = True,
        kernel: "str | None" = None,
    ) -> None:
        self._predicate = predicate
        self._check = check_antimonotone
        self._kernel = kernel

    # ------------------------------------------------------------------

    def mine(
        self, universe: Iterable[int]
    ) -> Tuple[Set[Itemset], OracleStats]:
        """All maximal subsets of ``universe`` satisfying the predicate.

        Returns ``(maximal_sets, stats)``.  An empty result means not even
        a single element satisfies the predicate.
        """
        universe_set = tuple(sorted(set(universe)))
        stats = OracleStats()
        cache: Dict[Itemset, bool] = {}

        def ask(candidate: Itemset) -> bool:
            if candidate not in cache:
                stats.oracle_calls += 1
                cache[candidate] = bool(self._predicate(candidate))
            return cache[candidate]

        satisfied: Set[Itemset] = set()
        maximal: Set[Itemset] = set()
        lattice = make_kernel(self._kernel, universe_set)
        maximal_cover = lattice.make_cover()
        mfcs = lattice.make_mfcs(universe_set)
        candidates: List[Itemset] = first_level_candidates(universe_set)
        k = 0

        while candidates or len(mfcs) > 0:
            k += 1
            if k > 2 * len(universe_set) + 4:
                raise AssertionError("predicate search failed to terminate")
            stats.rounds += 1

            frontier = sorted(mfcs)
            failing_frontier: List[Itemset] = []
            for element in frontier:
                if ask(element):
                    maximal.add(element)
                    maximal_cover.add(element)
                    mfcs.remove(element)
                    stats.maximal_found_top_down += 1
                else:
                    failing_frontier.append(element)

            level_true = []
            failing: List[Itemset] = []
            for candidate in candidates:
                if ask(candidate):
                    if not maximal_cover.covers(candidate):
                        level_true.append(candidate)
                        satisfied.add(candidate)
                else:
                    failing.append(candidate)

            if self._check:
                self._verify_antimonotonicity(cache)

            mfcs.update(failing, protected=maximal_cover)
            mfcs.update(failing_frontier, protected=maximal_cover)
            candidates = sorted(
                lattice.generate_candidates(level_true, maximal_cover, k)
            )

        result = maximal_elements(maximal | satisfied)
        return result, stats

    # ------------------------------------------------------------------

    @staticmethod
    def _verify_antimonotonicity(cache: Dict[Itemset, bool]) -> None:
        """Check anti-monotonicity over every evaluated (subset, superset).

        A violation is a false set with a true superset; a cover index of
        the true sets answers that in one query per false set.  Cost is
        linear in the evaluated family per round — acceptable for the
        oracle-mining sizes this class targets, and switchable off via
        ``check_antimonotone=False``.
        """
        trues = CoverIndex(
            candidate for candidate, value in cache.items() if value
        )
        for candidate, value in cache.items():
            if value:
                continue
            witnesses = trues.supersets_of(candidate)
            if witnesses:
                raise ValueError(
                    "predicate is not anti-monotone: %r holds but its "
                    "subset %r does not" % (witnesses[0], candidate)
                )


def maximal_satisfying_sets(
    universe: Iterable[int],
    predicate: Predicate,
    check_antimonotone: bool = True,
) -> Set[Itemset]:
    """Functional wrapper around :class:`PredicatePincer`.

    >>> sorted(maximal_satisfying_sets(range(1, 5), lambda s: sum(s) <= 4))
    [(1, 2), (1, 3), (4,)]
    """
    miner = PredicatePincer(predicate, check_antimonotone=check_antimonotone)
    result, _ = miner.mine(universe)
    return result


def brute_force_maximal_satisfying_sets(
    universe: Iterable[int], predicate: Predicate
) -> Set[Itemset]:
    """Exhaustive oracle for tests (exponential in ``|universe|``)."""
    universe_set = tuple(sorted(set(universe)))
    satisfying = [
        candidate
        for size in range(1, len(universe_set) + 1)
        for candidate in combinations(universe_set, size)
        if predicate(candidate)
    ]
    return maximal_elements(satisfying)
