"""Cross-threshold support cache and its engine wrapper.

A support count is a property of ``(database, itemset)`` alone — the
minsup threshold only *interprets* it.  Everything counted while mining
at 0.5% therefore classifies the same itemset at 1.0% (or any other
threshold) for free, which is the whole economics of a resident session:
one hot snapshot, many differently-parameterized queries, each pass
consulting the cache before touching the data plane.

:class:`SupportCache` is the store, in two generations.  The *young*
generation is a plain ``itemset tuple -> count`` dict — the hot path,
one hash lookup per candidate with no mask interning at all, because
the cache sits in front of engines that count thousands of candidates
per second and must never cost more than the counting it saves.  On
filling, young is compressed wholesale into the *old* generation via
the block machinery of :mod:`repro.core.maskstore` (interned masks,
sorted, LEB128 varint deltas — a few bytes per entry instead of ~100 of
dict overhead), and the previous old generation is dropped: segmented
LRU without per-entry bookkeeping.  Old-generation probes pay one mask
computation and one cache-resident block decode; hits are promoted back
into young, so anything still in use stays on the fast path.  The count
payload rides in the maskstore's slot channel.

:class:`CachedSupportCounter` is the insertion point: a duck-typed
wrapper around any :class:`~repro.db.base.SupportCounter` that partitions
every batch into cache hits and misses, forwards only the misses, and
stores what comes back.  Wrapping the *engine* rather than patching the
miner means every counting path — pincer passes, the post-abandonment
sweep, rules expansion — gets cache semantics uniformly, and a fully
cached batch bills no pass and never wakes the worker plane.

Exactness: the cache stores the engine's own counts verbatim, keyed by
interned mask, so a cached classification is byte-for-byte the
classification a cold count would have produced (the differential ladder
in ``tests/test_session.py`` proves this end to end).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .._types import Itemset
from ..db.base import SupportCounter
from .bitset import ItemUniverse
from .maskstore import CompressedMaskStore

__all__ = ["DEFAULT_MAX_ENTRIES", "CachedSupportCounter", "SupportCache"]

#: Default cache bound (entries across both generations).  At a few
#: bytes per entry this is single-digit MiB — roomy next to the lattice
#: frontiers the miner already holds.
DEFAULT_MAX_ENTRIES = 1_000_000


class SupportCache:
    """Bounded mask -> support-count store for one snapshot.

    Parameters
    ----------
    universe:
        The database's :class:`~repro.core.bitset.ItemUniverse`; cache
        keys are its interned masks, which ties the cache to one item
        vocabulary the way the session ties it to one snapshot id.
    max_entries:
        Total bound across both generations.  Each generation holds up
        to half; filling the young dict compresses it into the old
        generation and drops the previous old generation wholesale.
    key:
        Opaque snapshot identity, carried for introspection — sessions
        refuse to share a cache across different snapshot keys.
    """

    def __init__(
        self,
        universe: ItemUniverse,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        key: Optional[str] = None,
    ) -> None:
        if max_entries < 2:
            raise ValueError("max_entries must be at least 2")
        self.universe = universe
        self.max_entries = max_entries
        self.key = key
        self._young: Dict[Itemset, int] = {}
        self._old = CompressedMaskStore()
        self.hits = 0
        self.misses = 0
        self.rotations = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._young) + len(self._old)

    def encoded_bytes(self) -> int:
        """Resident payload bytes: dict entries priced at their
        compressed cost-to-be plus the old generation's actual bytes."""
        return 8 * len(self._young) + self._old.encoded_bytes()

    def get(self, itemset_: Itemset) -> Optional[int]:
        """Cached support of ``itemset_``, or None.  Bills hit/miss."""
        count = self._lookup(itemset_)
        if count is None:
            self.misses += 1
        else:
            self.hits += 1
        return count

    def put(self, itemset_: Itemset, count: int) -> None:
        self._store(itemset_, count)

    def partition(
        self, candidates: Iterable[Itemset]
    ) -> Tuple[Dict[Itemset, int], List[Itemset]]:
        """Split a batch into ``(cached hits, uncached misses)``.

        Duplicate candidates collapse into one entry either way, matching
        the engine's own keyed-result semantics.
        """
        hits: Dict[Itemset, int] = {}
        misses: List[Itemset] = []
        seen_misses = set()
        for candidate in candidates:
            if candidate in hits or candidate in seen_misses:
                continue
            count = self.get(candidate)
            if count is None:
                seen_misses.add(candidate)
                misses.append(candidate)
            else:
                hits[candidate] = count
        return hits, misses

    def store_batch(self, counts: Dict[Itemset, int]) -> None:
        for itemset_, count in counts.items():
            self.put(itemset_, count)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self),
            "bytes": self.encoded_bytes(),
            "hits": self.hits,
            "misses": self.misses,
            "rotations": self.rotations,
        }

    # ------------------------------------------------------------------

    def _lookup(self, itemset_: Itemset) -> Optional[int]:
        count = self._young.get(itemset_)
        if count is not None:
            return count
        if not self._old:  # pre-rotation: the young dict is everything
            return None
        mask = self.universe.try_mask_of(itemset_)
        if mask is None:  # foreign items cannot have been counted here
            return None
        count = self._old.get(mask)
        if count is not None:
            # old-generation hit: promote back to the fast path, and so
            # the next rotation keeps it
            self._store(itemset_, count)
        return count

    def _store(self, itemset_: Itemset, count: int) -> None:
        if (
            itemset_ not in self._young
            and len(self._young) >= self.max_entries // 2
        ):
            self._old = CompressedMaskStore.from_dict(self._compress_young())
            self._young = {}
            self.rotations += 1
        self._young[itemset_] = count

    def _compress_young(self) -> Dict[int, int]:
        """Young entries as interned masks (foreign itemsets dropped)."""
        mask_of = self.universe.try_mask_of
        out: Dict[int, int] = {}
        for itemset_, count in self._young.items():
            mask = mask_of(itemset_)
            if mask is not None:
                out[mask] = count
        return out


class CachedSupportCounter:
    """A :class:`SupportCounter` facade that consults a cache first.

    Duck-typed rather than subclassed: every attribute other than the
    cache plumbing reads and writes through to the wrapped engine, so
    miner-side wiring (``engine.obs = obs``, deadline setting, pass/IO
    accounting reads, ``begin_query``/``close`` lifecycle) behaves as if
    the engine were bare.  ``count`` is the only interception: hits are
    answered from the cache, misses go to the engine in one batch, and
    the engine's answers are stored back.  An all-hit batch never
    reaches the engine — no pass billed, no worker woken.
    """

    def __init__(self, inner: SupportCounter, cache: SupportCache) -> None:
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "cache", cache)

    # -- transparent delegation ----------------------------------------

    def __getattr__(self, name):
        return getattr(object.__getattribute__(self, "_inner"), name)

    def __setattr__(self, name, value) -> None:
        setattr(object.__getattribute__(self, "_inner"), name, value)

    @property
    def inner(self) -> SupportCounter:
        """The wrapped engine (for tests and lifecycle introspection)."""
        return object.__getattribute__(self, "_inner")

    def __enter__(self) -> "CachedSupportCounter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.inner.close()

    # -- the interception ----------------------------------------------

    def count(self, db, candidates: Iterable[Itemset]) -> Dict[Itemset, int]:
        inner = self.inner
        cache = self.cache
        batch = candidates if isinstance(candidates, list) else list(candidates)
        if not batch:
            return {}
        hits, misses = cache.partition(batch)
        num_hits = len(hits)
        if misses:
            counted = inner.count(db, misses)
            cache.store_batch(counted)
            hits.update(counted)
        obs = inner.obs
        if obs.enabled:
            obs.counter("cache.hits").inc(num_hits)
            obs.counter("cache.misses").inc(len(misses))
            obs.gauge("cache.bytes").set(cache.encoded_bytes())
            obs.gauge("cache.entries").set(len(cache))
        return hits
