"""Memory-budgeted counting over partitioned snapshots (out-of-core plane).

Every other engine assumes the whole vertical matrix fits in memory; this
module is the tier that does not.  It rests on the v2 snapshot invariant
(:mod:`repro.db.snapshot`): partitions are 64-row-aligned **row ranges**,
each with its own independently mmap-able packed matrix, and support is
*additive* over them::

    support(X) = sum_p popcount(AND of X's rows in partition p)

Three layers:

:class:`BudgetScheduler`
    The accounting authority for mapped matrix bytes.  ``attach`` admits
    a mapping only while the running total stays within ``memory_budget``;
    high-water marks (``max_mapped_bytes`` / ``max_mapped_partitions``)
    and attach/detach counts are kept for tests, stats evidence, and the
    obs plane.  The budget models *resident index bytes*: what a counting
    pass actually faults in, not virtual address space.

:class:`SnapshotPartitionHandle` / :class:`MemoryPartitionHandle`
    The attach/mine/detach unit.  ``counts`` attaches the partition index
    on demand (billing the scheduler), and — when even one partition
    exceeds the budget — falls back to **windowed** counting: the matrix
    is counted one word-aligned column window at a time, each window
    admitted and released individually, so the resident set never exceeds
    the budget no matter how large the partition.  ``detach`` drops the
    index *and* asks the kernel to evict the partition's page-cache bytes
    (``posix_fadvise(DONTNEED)``), which is what makes the budget honest
    on machines whose page cache would otherwise keep everything warm:
    re-attaching really re-reads from disk.

:class:`PartitionedCounter`
    The ``partitioned`` engine.  One :meth:`count` call is one logical
    pass over the database (bills ``len(db)`` records), implemented as a
    sweep over the partitions with greedy LRU-style eviction: partitions
    stay attached as long as the budget allows, so a generous budget
    degenerates to the packed engine's behaviour while a tight one
    attaches/detaches (and therefore re-reads) every pass — the I/O
    structure the Partition scheme [16] trades for bounded memory.
    Databases without a partitioned snapshot are self-partitioned in
    memory, keeping the engine usable (and differentially testable) on
    plain :class:`~repro.db.transaction_db.TransactionDatabase` inputs.
"""

from __future__ import annotations

import os
import weakref
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from .._types import Itemset
from .base import SupportCounter
from .snapshot import SnapshotPartition, load_snapshot, partition_row_starts
from .vertical import (
    HAVE_NUMPY,
    IntBitmapIndex,
    PackedBitmapIndex,
    build_index,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .transaction_db import TransactionDatabase

__all__ = [
    "BudgetExceededError",
    "BudgetScheduler",
    "HandleCounter",
    "MemoryPartitionHandle",
    "PartitionedCounter",
    "SnapshotPartitionHandle",
    "evict_file_pages",
    "handles_for_database",
]

#: Self-partitioning width for databases without a partitioned snapshot.
DEFAULT_SELF_PARTITIONS = 4


class BudgetExceededError(RuntimeError):
    """An attach would push mapped matrix bytes past the memory budget."""


def evict_file_pages(path, offset: int, length: int) -> None:
    """Drop ``path``'s page-cache bytes in ``[offset, offset+length)``.

    Best-effort (``posix_fadvise`` may be missing, e.g. on macOS): when it
    is unavailable the budget still bounds *mapped* bytes, but re-attach
    cost depends on the page cache.  The kernel ignores the advice for
    pages still referenced by a live mapping, so callers must drop their
    index/memmap references first.
    """
    if length <= 0 or not hasattr(os, "posix_fadvise"):  # pragma: no cover
        return
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.posix_fadvise(fd, offset, length, os.POSIX_FADV_DONTNEED)
    finally:
        os.close(fd)


class BudgetScheduler:
    """Admission control + accounting for mapped partition-matrix bytes.

    ``memory_budget=None`` means unlimited (accounting still runs).  The
    scheduler is deliberately passive — it admits or refuses, and counts;
    *which* mapping to evict is the caller's policy — so the same
    instance can arbitrate whole-partition attaches and sub-partition
    windows alike.
    """

    def __init__(self, memory_budget: Optional[int] = None) -> None:
        if memory_budget is not None and memory_budget <= 0:
            raise ValueError("memory_budget must be positive (or None)")
        self.memory_budget = memory_budget
        self.mapped_bytes = 0
        self.mapped_partitions = 0
        self.attaches = 0
        self.detaches = 0
        self.max_mapped_bytes = 0
        self.max_mapped_partitions = 0

    def fits(self, nbytes: int) -> bool:
        """Would mapping ``nbytes`` more stay within the budget?"""
        return (
            self.memory_budget is None
            or self.mapped_bytes + nbytes <= self.memory_budget
        )

    def attach(self, nbytes: int, force: bool = False) -> None:
        """Admit ``nbytes`` of mapping, or raise :class:`BudgetExceededError`.

        ``force=True`` admits (and accounts) regardless of the budget —
        for the windowed counters' *minimum* unit: one word column is
        the smallest mappable slice the 64-row alignment allows, so a
        budget below it is enforced at that granularity rather than
        deadlocking.
        """
        if not force and not self.fits(nbytes):
            raise BudgetExceededError(
                "mapping %d more bytes would exceed the %d-byte budget "
                "(%d already mapped)"
                % (nbytes, self.memory_budget, self.mapped_bytes)
            )
        self.mapped_bytes += nbytes
        self.mapped_partitions += 1
        self.attaches += 1
        self.max_mapped_bytes = max(self.max_mapped_bytes, self.mapped_bytes)
        self.max_mapped_partitions = max(
            self.max_mapped_partitions, self.mapped_partitions
        )

    def detach(self, nbytes: int) -> None:
        self.mapped_bytes -= nbytes
        self.mapped_partitions -= 1
        self.detaches += 1

    def window_words(self, num_items: int) -> int:
        """Widest word-column window that fits the *remaining* budget.

        One word column is ``num_items * 8`` bytes and covers 64 rows.
        Always at least 1 so windowed counting can make progress; a
        budget smaller than one word column is therefore enforced at
        word granularity (the minimum unit the 64-row alignment allows).
        """
        if self.memory_budget is None:
            return 1 << 30
        free = self.memory_budget - self.mapped_bytes
        return max(1, free // (num_items * 8))

    def accounting(self) -> Dict[str, int]:
        """JSON-ready accounting snapshot (stats evidence, tests)."""
        return {
            "memory_budget": self.memory_budget,
            "attaches": self.attaches,
            "detaches": self.detaches,
            "mapped_bytes": self.mapped_bytes,
            "max_mapped_bytes": self.max_mapped_bytes,
            "max_mapped_partitions": self.max_mapped_partitions,
        }


class SnapshotPartitionHandle:
    """Attach/mine/detach unit over one on-disk snapshot partition."""

    def __init__(
        self,
        partition: SnapshotPartition,
        scheduler: BudgetScheduler,
        force_python: bool = False,
    ) -> None:
        self._partition = partition
        self._scheduler = scheduler
        self._force_python = force_python
        self._index = None

    def __repr__(self) -> str:
        return "SnapshotPartitionHandle(%r, attached=%s)" % (
            self._partition, self.attached,
        )

    @property
    def partition(self) -> SnapshotPartition:
        return self._partition

    @property
    def ordinal(self) -> int:
        return self._partition.ordinal

    @property
    def row_start(self) -> int:
        return self._partition.row_start

    @property
    def num_rows(self) -> int:
        return self._partition.num_rows

    @property
    def matrix_bytes(self) -> int:
        return self._partition.matrix_bytes

    @property
    def attached(self) -> bool:
        return self._index is not None

    def attach(self):
        """Map the partition index within the budget and return it."""
        if self._index is None:
            self._scheduler.attach(self.matrix_bytes)
            try:
                self._index = self._partition.index(self._force_python)
            except BaseException:
                self._scheduler.detach(self.matrix_bytes)
                raise
        return self._index

    def detach(self) -> None:
        """Drop the index and evict the partition's page-cache bytes.

        The eviction is what keeps the out-of-core contract honest: a
        later re-attach pays real file I/O, exactly as it would when the
        data genuinely exceeds RAM.
        """
        if self._index is None:
            return
        self._index = None
        self._scheduler.detach(self.matrix_bytes)
        evict_file_pages(
            self._partition.path, self._partition.matrix_offset,
            self.matrix_bytes,
        )

    def counts(
        self, candidates: Sequence[Itemset], deadline_check=None
    ) -> List[int]:
        """Local support counts, parallel to ``candidates``.

        Uses the resident index when the partition fits the budget,
        otherwise counts window by window without ever holding more than
        the budget's worth of word columns.
        """
        if self.attached or self._scheduler.fits(self.matrix_bytes):
            return self.attach().counts(candidates, deadline_check)
        return self._windowed_counts(candidates, deadline_check)

    def _windowed_counts(
        self, candidates: Sequence[Itemset], deadline_check=None
    ) -> List[int]:
        part = self._partition
        totals = [0] * len(candidates)
        word_lo = 0
        while word_lo < part.num_words:
            window = self._scheduler.window_words(part.num_items)
            word_hi = min(part.num_words, word_lo + window)
            nbytes = part.num_items * (word_hi - word_lo) * 8
            # a single word column is the indivisible unit — admit it
            # even under a smaller budget (see BudgetScheduler.attach)
            self._scheduler.attach(nbytes, force=(word_hi - word_lo == 1))
            try:
                window_counts = self._count_window(
                    word_lo, word_hi, candidates, deadline_check
                )
            finally:
                self._scheduler.detach(nbytes)
                evict_file_pages(
                    part.path, part.matrix_offset, part.matrix_bytes
                )
            for position, value in enumerate(window_counts):
                totals[position] += value
            word_lo = word_hi
        return totals

    def _count_window(
        self, word_lo: int, word_hi: int, candidates, deadline_check
    ) -> List[int]:
        part = self._partition
        if HAVE_NUMPY and not self._force_python:
            # memmap the partition, then count through a column-slice
            # view: only the window's pages are faulted (a row-major
            # matrix slice touches ~one page run per item row)
            rows = {item: row for row, item in enumerate(part.universe)}
            full = PackedBitmapIndex(part.matrix(), rows, part.num_rows)
            return full.word_slice(word_lo, word_hi).counts(
                candidates, deadline_check
            )
        rows_before = min(part.num_rows, word_lo * 64)
        rows_in = max(0, min(part.num_rows, word_hi * 64) - rows_before)
        bitmaps = part.int_bitmaps(word_lo, word_hi)
        return IntBitmapIndex(bitmaps, rows_in).counts(
            candidates, deadline_check
        )


class MemoryPartitionHandle:
    """The same handle surface over an in-memory row range.

    Lets the ``partitioned`` engine (and its differential tests) run on
    plain transaction lists with no snapshot on disk.  ``matrix_bytes``
    is the packed-matrix equivalent, so budget accounting stays
    comparable; there is no windowed fallback — a budget too small for
    an in-memory partition is a configuration error, reported as such.
    """

    def __init__(
        self,
        transactions: Sequence,
        universe,
        row_start: int,
        scheduler: BudgetScheduler,
        force_python: bool = False,
        ordinal: int = 0,
    ) -> None:
        self._transactions = transactions
        self._universe = tuple(universe)
        self.row_start = row_start
        self.ordinal = ordinal
        self._scheduler = scheduler
        self._force_python = force_python
        self._index = None

    @property
    def num_rows(self) -> int:
        return len(self._transactions)

    @property
    def matrix_bytes(self) -> int:
        return len(self._universe) * max(1, (self.num_rows + 63) // 64) * 8

    @property
    def attached(self) -> bool:
        return self._index is not None

    def attach(self):
        if self._index is None:
            self._scheduler.attach(self.matrix_bytes)
            try:
                self._index = build_index(
                    self._transactions, self._universe, self._force_python
                )
            except BaseException:
                self._scheduler.detach(self.matrix_bytes)
                raise
        return self._index

    def detach(self) -> None:
        if self._index is None:
            return
        self._index = None
        self._scheduler.detach(self.matrix_bytes)

    def counts(
        self, candidates: Sequence[Itemset], deadline_check=None
    ) -> List[int]:
        return self.attach().counts(candidates, deadline_check)


def handles_for_database(
    db,
    scheduler: BudgetScheduler,
    num_partitions: Optional[int] = None,
    force_python: bool = False,
) -> List:
    """Partition handles for ``db``, preferring its on-disk snapshot.

    A snapshot-backed database (``db.snapshot_path``) yields one
    :class:`SnapshotPartitionHandle` per snapshot partition — for a v1
    file that is a single whole-range partition, which still gets budget
    accounting and windowed counting.  Anything else is self-partitioned
    in memory into ``num_partitions`` 64-row-aligned ranges.
    """
    snapshot_path = getattr(db, "snapshot_path", None)
    if snapshot_path is not None:
        snap = load_snapshot(snapshot_path)
        return [
            SnapshotPartitionHandle(partition, scheduler, force_python)
            for partition in snap.partitions
        ]
    transactions = list(db)
    starts = partition_row_starts(
        len(transactions),
        num_partitions=num_partitions or DEFAULT_SELF_PARTITIONS,
    )
    bounds = starts + [len(transactions)]
    universe = tuple(db.universe)
    return [
        MemoryPartitionHandle(
            transactions[bounds[i] : bounds[i + 1]], universe, bounds[i],
            scheduler, force_python, ordinal=i,
        )
        for i in range(len(starts))
    ]


class HandleCounter(SupportCounter):
    """A :class:`SupportCounter` over exactly one partition handle.

    This is what Phase I of the partitioned miner hands to the pincer
    engine stack: the miner sees an ordinary counting engine, but every
    pass reads (and bills) only this partition's rows, through the same
    budget scheduler the other partitions share.  ``close`` detaches the
    handle — the attach/mine/detach lifecycle of one partition *is* the
    lifecycle of its counter.
    """

    name = "partition-local"

    def __init__(self, handle) -> None:
        super().__init__()
        self._handle = handle

    @property
    def handle(self):
        return self._handle

    def _bill_records(self, db) -> None:
        self.records_read += self._handle.num_rows

    def _count(self, db, candidates: List[Itemset]) -> Dict[Itemset, int]:
        return dict(
            zip(
                candidates,
                self._handle.counts(candidates, self._check_deadline),
            )
        )

    def _detach(self) -> None:
        self._handle.detach()


class PartitionedCounter(SupportCounter):
    """The ``partitioned`` engine: budgeted partition sweep, additive sums.

    One :meth:`count` call is one logical pass over the database —
    ``records_read`` grows by ``len(db)`` — realised as a sweep over the
    row partitions.  Before each partition is counted, already-attached
    partitions are greedily evicted (oldest first) until the next one
    fits the budget; whatever still fits at the end of the pass *stays*
    attached, so passes against a generous budget re-use warm indexes
    while a tight budget forces the honest re-read-per-pass I/O pattern.
    """

    name = "partitioned"

    def __init__(
        self,
        memory_budget: Optional[int] = None,
        num_partitions: Optional[int] = None,
        force_python: bool = False,
    ) -> None:
        super().__init__()
        self.scheduler = BudgetScheduler(memory_budget)
        self._num_partitions = num_partitions
        self._force_python = force_python
        self._handles: Optional[List] = None
        self._handles_db = None  # weakref to the db the handles map

    def handles_for(self, db) -> List:
        """The partition handles for ``db`` (built once, then cached)."""
        if (
            self._handles is None
            or self._handles_db is None
            or self._handles_db() is not db
        ):
            self._release_handles()
            self._handles = handles_for_database(
                db, self.scheduler,
                num_partitions=self._num_partitions,
                force_python=self._force_python,
            )
            self._handles_db = weakref.ref(db)
        return self._handles

    @property
    def num_partitions(self) -> Optional[int]:
        return len(self._handles) if self._handles is not None else None

    def _make_room(self, handle, handles) -> None:
        """Evict other attached partitions until ``handle`` fits."""
        if handle.attached or self.scheduler.fits(handle.matrix_bytes):
            return
        for other in handles:
            if other is handle or not other.attached:
                continue
            other.detach()
            if self.scheduler.fits(handle.matrix_bytes):
                return

    def _count(
        self, db: "TransactionDatabase", candidates: List[Itemset]
    ) -> Dict[Itemset, int]:
        handles = self.handles_for(db)
        totals = [0] * len(candidates)
        for handle in handles:
            self._check_deadline()
            self._make_room(handle, handles)
            for position, value in enumerate(
                handle.counts(candidates, self._check_deadline)
            ):
                totals[position] += value
        if self.obs.enabled:
            self.obs.gauge("partition.mapped_bytes").set(
                self.scheduler.mapped_bytes
            )
            self.obs.gauge("partition.mapped_partitions").set(
                self.scheduler.mapped_partitions
            )
        return dict(zip(candidates, totals))

    def evidence(self) -> Dict[str, object]:
        """Budget/partition accounting for ``MiningStats.engine_evidence``."""
        info: Dict[str, object] = {"engine": self.name}
        if self._handles is not None:
            info["partitions"] = len(self._handles)
        info.update(self.scheduler.accounting())
        return info

    def _release_handles(self) -> None:
        if self._handles:
            for handle in self._handles:
                handle.detach()
        self._handles = None
        self._handles_db = None

    def _detach(self) -> None:
        self._release_handles()
