"""File-backed transaction database with true I/O accounting.

The paper's cost model is explicitly I/O-aware: "The cost of the frequent
itemsets discovery process comes from the reading of the database (I/O
time) and the generation of new candidates (CPU time)" (Section 2.2), and
the figures report the number of *passes of reading the database*.  The
in-memory :class:`~repro.db.transaction_db.TransactionDatabase` makes
those reads free; this module provides a drop-in replacement that leaves
the transactions **on disk** and streams them on every iteration, so a
pass really is a file read.

:class:`DiskTransactionDatabase` exposes the same surface the counting
engines use (`__len__`, `__iter__`, ``transactions``, ``universe``,
``item_bitmaps``, ``absolute_support``, ...), plus:

* ``file_reads`` / ``records_streamed`` — how many times the file was
  scanned and how many basket lines were parsed in total;
* a metadata pass at construction (one read) that fixes ``len`` and the
  universe without keeping the baskets;
* a :meth:`~DiskTransactionDatabase.snapshot` /
  :meth:`~DiskTransactionDatabase.from_snapshot` pair built on
  :mod:`repro.db.snapshot`: the packed vertical index is serialised once
  per dataset, and later runs skip the basket re-parse entirely — both
  the metadata pass and the bitmap build are replaced by one
  memory-mappable file read.

The vertical-bitmap engine still works: its bitmaps are built from one
streaming pass and cached (they are |I| × |D| *bits*, far smaller than
the parsed transactions).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, FrozenSet, Iterator, Optional, Union

from .snapshot import Snapshot, default_snapshot_path, load_snapshot, snapshot_database

PathLike = Union[str, Path]


class DiskTransactionDatabase:
    """Streaming FIMI-format database: every iteration reads the file.

    ``snapshot`` (a path or a loaded :class:`~repro.db.snapshot.Snapshot`)
    supplies the metadata and the vertical bitmaps without parsing the
    basket file; the basket file is then only touched by code that
    genuinely needs horizontal rows (``__iter__``, ``transactions``).
    """

    def __init__(
        self, path: PathLike, snapshot: Optional[PathLike] = None
    ) -> None:
        self._path = Path(path)
        self.file_reads = 0
        self.records_streamed = 0
        self._snapshot: Optional[Snapshot] = None
        self._bitmaps: Optional[Dict[int, int]] = None
        if snapshot is not None:
            snap = (
                snapshot
                if isinstance(snapshot, Snapshot)
                else load_snapshot(snapshot)
            )
            self._snapshot = snap
            self._length = snap.num_rows
            self._universe = snap.universe
            return
        count = 0
        items: set = set()
        for transaction in self._stream():
            count += 1
            items.update(transaction)
        self._length = count
        self._universe = tuple(sorted(items))

    # ------------------------------------------------------------------
    # streaming core
    # ------------------------------------------------------------------

    def _stream(self) -> Iterator[FrozenSet[int]]:
        self.file_reads += 1
        with open(self._path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    transaction = frozenset(
                        int(token) for token in stripped.split()
                    )
                except ValueError:
                    raise ValueError(
                        "%s:%d: non-integer item in basket line"
                        % (self._path, line_number)
                    ) from None
                self.records_streamed += 1
                yield transaction

    def __iter__(self) -> Iterator[FrozenSet[int]]:
        return self._stream()

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:
        return "DiskTransactionDatabase(%r, |D|=%d, reads=%d)" % (
            str(self._path), self._length, self.file_reads,
        )

    @property
    def transactions(self) -> Iterator[FrozenSet[int]]:
        """A fresh stream over the baskets (one file read per use)."""
        return self._stream()

    @property
    def path(self) -> Path:
        """The basket file backing this database."""
        return self._path

    @property
    def snapshot_path(self) -> Optional[Path]:
        """The snapshot file in use, if any."""
        return self._snapshot.path if self._snapshot is not None else None

    @property
    def universe(self):
        return self._universe

    @property
    def num_items(self) -> int:
        return len(self._universe)

    # ------------------------------------------------------------------
    # support interface (mirrors TransactionDatabase)
    # ------------------------------------------------------------------

    def absolute_support(self, fraction: float) -> int:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("minimum support must be a fraction in [0, 1]")
        from math import ceil

        return max(1, ceil(fraction * self._length))

    def support_count(self, candidate) -> int:
        wanted = frozenset(candidate)
        return sum(1 for transaction in self if wanted <= transaction)

    def support(self, candidate) -> float:
        if not self._length:
            return 0.0
        return self.support_count(candidate) / self._length

    def item_support_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {item: 0 for item in self._universe}
        for transaction in self:
            for item in transaction:
                counts[item] += 1
        return counts

    def average_transaction_size(self) -> float:
        if not self._length:
            return 0.0
        total = sum(len(transaction) for transaction in self)
        return total / self._length

    def item_bitmaps(self) -> Dict[int, int]:
        """Vertical bitmaps built from one streaming pass, then cached.

        After this, the bitmap engine no longer touches the file — the
        bitmaps *are* the database, vertically.  Pass accounting then
        models the paper's I/O, while ``file_reads`` tracks physical
        reads.  A database opened from a snapshot loads the bitmaps from
        the snapshot instead, skipping the basket parse.
        """
        if self._bitmaps is None:
            if self._snapshot is not None:
                self._bitmaps = self._snapshot.int_bitmaps()
            else:
                bitmaps = {item: 0 for item in self._universe}
                for position, transaction in enumerate(self._stream()):
                    bit = 1 << position
                    for item in transaction:
                        bitmaps[item] |= bit
                self._bitmaps = bitmaps
        return self._bitmaps

    def occurring_items(self):
        return self._universe

    # ------------------------------------------------------------------
    # snapshots (repro.db.snapshot)
    # ------------------------------------------------------------------

    def snapshot(
        self,
        path: Optional[PathLike] = None,
        *,
        num_partitions: Optional[int] = None,
        partition_rows: Optional[int] = None,
    ) -> Path:
        """Serialise the vertical index to a snapshot file (one read).

        Default location is the basket file plus ``.snap``.  The written
        snapshot immediately backs this instance too, so subsequent
        ``item_bitmaps`` users (the counting engines, the shared-memory
        plane's mmap fallback) read it instead of the baskets.

        With ``num_partitions`` or ``partition_rows`` the partitioned v2
        layout is written by *streaming* the baskets — memory stays
        bounded by one partition's matrix, which is the point of the
        out-of-core plane: the snapshot build itself must not need the
        dense matrix resident.
        """
        written = snapshot_database(
            self,
            path if path is not None else default_snapshot_path(self._path),
            num_partitions=num_partitions,
            partition_rows=partition_rows,
        )
        self._snapshot = load_snapshot(written)
        return written

    @classmethod
    def from_snapshot(
        cls, snapshot: PathLike, basket_path: Optional[PathLike] = None
    ) -> "DiskTransactionDatabase":
        """Open a database from its snapshot, skipping the basket parse.

        ``basket_path`` defaults to the snapshot path minus the ``.snap``
        suffix; it is only touched if horizontal iteration is requested.
        """
        snap_path = Path(snapshot)
        if basket_path is None:
            name = snap_path.name
            if not name.endswith(".snap"):
                raise ValueError(
                    "cannot infer the basket path from %r; pass basket_path"
                    % str(snap_path)
                )
            basket_path = snap_path.with_name(name[: -len(".snap")])
        return cls(basket_path, snapshot=snap_path)

    # ------------------------------------------------------------------

    def load_into_memory(self):
        """Materialise as an in-memory TransactionDatabase (one read)."""
        from .transaction_db import TransactionDatabase

        return TransactionDatabase(list(self), universe=self._universe)
