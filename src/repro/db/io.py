"""Reading and writing transaction databases.

Three interchange formats are supported:

* **FIMI / basket** (``.dat``): one transaction per line, items as
  whitespace-separated integers.  This is the format of the FIMI repository
  datasets the frequent-itemset-mining community standardised on.
* **CSV**: one transaction per line, comma-separated integers (spreadsheet
  friendly).
* **JSON**: ``{"universe": [...], "transactions": [[...], ...]}`` — the only
  format that round-trips an explicit universe with zero-support items.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from .transaction_db import TransactionDatabase

PathLike = Union[str, Path]


def load_basket(path: PathLike) -> TransactionDatabase:
    """Load a FIMI-format basket file.

    Blank lines are skipped; a malformed token raises :class:`ValueError`
    with the offending line number.
    """
    transactions: List[List[int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                transactions.append([int(token) for token in stripped.split()])
            except ValueError:
                raise ValueError(
                    "%s:%d: non-integer item in basket line" % (path, line_number)
                ) from None
    return TransactionDatabase(transactions)


def save_basket(db: TransactionDatabase, path: PathLike) -> None:
    """Write a FIMI-format basket file, items sorted per transaction."""
    with open(path, "w", encoding="utf-8") as handle:
        for transaction in db:
            handle.write(" ".join(str(item) for item in sorted(transaction)))
            handle.write("\n")


def load_csv(path: PathLike) -> TransactionDatabase:
    """Load a CSV basket file (one transaction per row, integer cells)."""
    transactions: List[List[int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                transactions.append(
                    [int(token) for token in stripped.split(",") if token.strip()]
                )
            except ValueError:
                raise ValueError(
                    "%s:%d: non-integer item in CSV line" % (path, line_number)
                ) from None
    return TransactionDatabase(transactions)


def save_csv(db: TransactionDatabase, path: PathLike) -> None:
    """Write a CSV basket file, items sorted per transaction."""
    with open(path, "w", encoding="utf-8") as handle:
        for transaction in db:
            handle.write(",".join(str(item) for item in sorted(transaction)))
            handle.write("\n")


def load_json(path: PathLike) -> TransactionDatabase:
    """Load the JSON interchange format (preserves the explicit universe)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "transactions" not in payload:
        raise ValueError("%s: expected an object with a 'transactions' key" % path)
    return TransactionDatabase(
        payload["transactions"], universe=payload.get("universe")
    )


def save_json(db: TransactionDatabase, path: PathLike) -> None:
    """Write the JSON interchange format."""
    payload = {
        "universe": list(db.universe),
        "transactions": [sorted(transaction) for transaction in db],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")


_LOADERS = {".dat": load_basket, ".basket": load_basket, ".txt": load_basket,
            ".csv": load_csv, ".json": load_json}
_SAVERS = {".dat": save_basket, ".basket": save_basket, ".txt": save_basket,
           ".csv": save_csv, ".json": save_json}


def load(path: PathLike) -> TransactionDatabase:
    """Load a database, dispatching on file extension.

    ``.dat``/``.basket``/``.txt`` → FIMI, ``.csv`` → CSV, ``.json`` → JSON.
    """
    suffix = Path(path).suffix.lower()
    loader = _LOADERS.get(suffix)
    if loader is None:
        raise ValueError("unsupported database extension %r" % suffix)
    return loader(path)


def save(db: TransactionDatabase, path: PathLike) -> None:
    """Save a database, dispatching on file extension (see :func:`load`)."""
    suffix = Path(path).suffix.lower()
    saver = _SAVERS.get(suffix)
    if saver is None:
        raise ValueError("unsupported database extension %r" % suffix)
    saver(db, path)
