"""Classic Apriori hash tree for candidate support counting.

This is the data structure of Agrawal & Srikant (VLDB 1994, Section 2.1.2):
candidates of a single length ``k`` are stored in a tree whose interior
nodes hash on one item per level and whose leaves hold small lists of
candidates.  Counting a transaction walks the tree once, visiting only the
leaves that could contain subsets of the transaction.

The Pincer paper deliberately used linked lists instead ("we didn't use more
efficient data structures, such as hash tables, to store the itemsets",
Section 4.1.1) to keep the Apriori/Pincer comparison about candidate counts
and passes.  We provide the hash tree anyway: the library's counting engines
are pluggable, and the ablation benchmark compares them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .._types import Itemset


class _Node:
    """One hash-tree node; starts as a leaf, splits into an interior node."""

    __slots__ = ("children", "bucket")

    def __init__(self) -> None:
        self.children: Optional[Dict[int, "_Node"]] = None
        self.bucket: List[int] = []  # candidate indices (leaf only)

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class HashTree:
    """A hash tree over candidates that all share one length ``k``.

    Parameters
    ----------
    candidates:
        Canonical itemsets, all of length ``k``.
    branch:
        Modulus of the per-level item hash.
    leaf_capacity:
        A leaf deeper than the candidate length never splits; otherwise it
        splits when it exceeds this many candidates.
    """

    def __init__(
        self,
        candidates: Sequence[Itemset],
        branch: int = 8,
        leaf_capacity: int = 16,
    ) -> None:
        if branch < 2:
            raise ValueError("branch factor must be at least 2")
        if leaf_capacity < 1:
            raise ValueError("leaf capacity must be positive")
        lengths = {len(candidate) for candidate in candidates}
        if len(lengths) > 1:
            raise ValueError("hash tree requires candidates of a single length")
        self._k = lengths.pop() if lengths else 0
        self._branch = branch
        self._leaf_capacity = leaf_capacity
        self._candidates: List[Itemset] = list(candidates)
        self._root = _Node()
        for index in range(len(self._candidates)):
            self._insert(index)

    def __len__(self) -> int:
        return len(self._candidates)

    @property
    def k(self) -> int:
        """Length of the stored candidates."""
        return self._k

    # ------------------------------------------------------------------

    def _insert(self, index: int) -> None:
        candidate = self._candidates[index]
        node = self._root
        depth = 0
        while not node.is_leaf:
            node = node.children.setdefault(  # type: ignore[union-attr]
                candidate[depth] % self._branch, _Node()
            )
            depth += 1
        node.bucket.append(index)
        if len(node.bucket) > self._leaf_capacity and depth < self._k:
            self._split(node, depth)

    def _split(self, node: _Node, depth: int) -> None:
        indices = node.bucket
        node.bucket = []
        node.children = {}
        for index in indices:
            child = node.children.setdefault(
                self._candidates[index][depth] % self._branch, _Node()
            )
            child.bucket.append(index)
            # Recursive splits are possible when many candidates share a
            # hash path; depth+1 == k stops them at the last item.
            if len(child.bucket) > self._leaf_capacity and depth + 1 < self._k:
                self._split(child, depth + 1)

    # ------------------------------------------------------------------

    def count_database(
        self,
        transactions: Sequence[frozenset],
        deadline_check: Optional[Callable[[], None]] = None,
    ) -> List[int]:
        """Support counts of all stored candidates over ``transactions``.

        Returns a list parallel to the candidate order given at
        construction.  ``deadline_check`` (if given) is invoked every few
        hundred transactions; it may raise to abort the scan.
        """
        counts = [0] * len(self._candidates)
        if self._k == 0:
            return counts
        # last_seen de-duplicates candidates reachable through several hash
        # paths of the same transaction (two transaction items hashing to
        # the same bucket would otherwise double-count a leaf candidate).
        last_seen = [-1] * len(self._candidates)
        for tid, transaction in enumerate(transactions):
            if deadline_check is not None and tid % 256 == 0:
                deadline_check()
            if len(transaction) < self._k:
                continue
            items = sorted(transaction)
            self._count_node(self._root, items, 0, transaction, tid, counts, last_seen)
        return counts

    def _count_node(
        self,
        node: _Node,
        items: List[int],
        start: int,
        transaction: frozenset,
        tid: int,
        counts: List[int],
        last_seen: List[int],
    ) -> None:
        if node.is_leaf:
            for index in node.bucket:
                if last_seen[index] != tid and transaction.issuperset(
                    self._candidates[index]
                ):
                    last_seen[index] = tid
                    counts[index] += 1
            return
        children = node.children
        assert children is not None
        for position in range(start, len(items)):
            child = children.get(items[position] % self._branch)
            if child is not None:
                self._count_node(
                    child, items, position + 1, transaction, tid, counts, last_seen
                )

    # ------------------------------------------------------------------

    def counts_by_itemset(
        self,
        transactions: Sequence[frozenset],
        deadline_check: Optional[Callable[[], None]] = None,
    ) -> Dict[Itemset, int]:
        """Like :meth:`count_database` but keyed by itemset."""
        counts = self.count_database(transactions, deadline_check)
        return dict(zip(self._candidates, counts))

    def depth_profile(self) -> Tuple[int, int]:
        """(max depth, number of leaves) — introspection for tests."""

        def walk(node: _Node, depth: int) -> Tuple[int, int]:
            if node.is_leaf:
                return depth, 1
            deepest, leaves = depth, 0
            for child in node.children.values():  # type: ignore[union-attr]
                child_depth, child_leaves = walk(child, depth + 1)
                deepest = max(deepest, child_depth)
                leaves += child_leaves
            return deepest, leaves

        return walk(self._root, 0)
