"""Packed vertical bitmaps and the ``packed`` counting engine.

The ``bitmap`` engine stores one arbitrary-precision Python int per item
and intersects them candidate by candidate.  This module packs the same
vertical view into a ``(num_items, num_words)`` NumPy ``uint64`` matrix so
that a whole candidate batch is counted with vectorized AND + popcount —
the per-candidate interpreter overhead that dominates the ``bitmap``
engine at benchmark scale disappears into a handful of C-level array
operations.

Three pieces cooperate:

:class:`PrefixIntersector`
    A running-AND memo over a sorted candidate stream.  Candidates emitted
    by the Apriori join arrive grouped by their common ``(k-1)``-prefix,
    so memoizing the intersection of the first ``j`` items turns a pass
    from O(candidates x length) intersections into roughly one
    intersection per candidate-trie edge.  Shared by
    :class:`~repro.db.counting.BitmapCounter` (Python ints) and the
    packed engine's pure-Python fallback.

:class:`PackedBitmapIndex`
    The NumPy matrix.  Batch counting groups candidates by length and
    resolves each length level with *one* vectorized AND over the unique
    prefixes of the group — the same trie-edge saving as
    :class:`PrefixIntersector`, but across the whole batch at once.

:class:`IntBitmapIndex`
    Drop-in fallback with identical semantics when NumPy is absent:
    Python int bitmaps walked through a :class:`PrefixIntersector`.

:class:`PackedCounter` is the engine facade registered as ``packed`` in
:func:`repro.db.counting.get_counter`; it builds whichever index the
interpreter supports and reuses it across passes.  The
:mod:`repro.db.parallel` shard workers build the same indexes per shard.
"""

from __future__ import annotations

import operator
import weakref
from collections import OrderedDict, defaultdict
from itertools import chain
from typing import (
    Callable,
    Dict,
    Generic,
    Iterable,
    List,
    Optional,
    Sequence,
    TypeVar,
)

from .._types import Itemset
from .base import SupportCounter

try:  # NumPy is optional (the ``[fast]`` extra); everything degrades.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via force_python paths
    _np = None

#: True when the packed NumPy matrix path is available.
HAVE_NUMPY = _np is not None

__all__ = [
    "HAVE_NUMPY",
    "IntBitmapIndex",
    "LruPrefixCache",
    "PackedBitmapIndex",
    "PackedCounter",
    "PrefixIntersector",
    "build_index",
    "popcount",
]


if hasattr(int, "bit_count"):  # Python >= 3.10

    def popcount(value: int) -> int:
        """Number of set bits of a non-negative int."""
        return value.bit_count()

else:  # pragma: no cover - legacy interpreters

    def popcount(value: int) -> int:
        """Number of set bits of a non-negative int."""
        return bin(value).count("1")


if _np is not None and hasattr(_np, "bitwise_count"):  # NumPy >= 2.0

    def _popcount_words(words):  # (C, W) uint64 -> (C,) int64
        return _np.bitwise_count(words).sum(axis=-1, dtype=_np.int64)

elif _np is not None:  # pragma: no cover - NumPy 1.x

    _POPCOUNT_TABLE = _np.array(
        [bin(value).count("1") for value in range(256)], dtype=_np.uint8
    )

    def _popcount_words(words):
        as_bytes = _np.ascontiguousarray(words).view(_np.uint8)
        return _POPCOUNT_TABLE[as_bytes].sum(axis=-1, dtype=_np.int64)


Bitmap = TypeVar("Bitmap")


class PrefixIntersector(Generic[Bitmap]):
    """Memoized running AND over a stream of *sorted* candidates.

    ``lookup(item)`` returns the item's bitmap (None for items outside
    the universe: any candidate containing one has support 0), ``combine``
    is the AND of two bitmaps, and ``top`` is the all-ones bitmap the
    empty prefix starts from.  The memo is a stack holding, for the most
    recent candidate, the running intersection of each of its prefixes;
    the next candidate reuses the longest prefix it shares.

    ``reused``/``intersections`` count saved vs. performed combines so
    benchmarks and tests can observe the cache working.  ``hits``/``misses``
    are the cache-centric view of the same stream — a *hit* is a prefix
    entry served from the memo, a *miss* is a prefix entry that had to be
    (re)computed, whether or not its item resolved to a bitmap — and are
    what the metrics registry and bench records surface as
    ``prefix_cache.hits`` / ``prefix_cache.misses``.
    """

    def __init__(
        self,
        lookup: Callable[[int], Optional[Bitmap]],
        combine: Callable[[Bitmap, Bitmap], Bitmap],
        top: Bitmap,
    ) -> None:
        self._lookup = lookup
        self._combine = combine
        self._top = top
        self._items: List[int] = []
        self._values: List[Optional[Bitmap]] = []
        self.reused = 0
        self.intersections = 0
        self.hits = 0
        self.misses = 0

    def intersection(self, candidate: Itemset) -> Optional[Bitmap]:
        """AND of the item bitmaps; None if any item has no bitmap."""
        if not candidate:
            return self._top
        shared = 0
        limit = min(len(self._items), len(candidate))
        while shared < limit and self._items[shared] == candidate[shared]:
            shared += 1
        del self._items[shared:]
        del self._values[shared:]
        self.reused += shared
        self.hits += shared
        self.misses += len(candidate) - shared
        value = self._values[shared - 1] if shared else self._top
        for item in candidate[shared:]:
            if value is not None:
                bitmap = self._lookup(item)
                if bitmap is None:
                    value = None
                else:
                    value = self._combine(value, bitmap)
                    self.intersections += 1
            self._items.append(item)
            self._values.append(value)
        return self._values[-1]


class LruPrefixCache(Generic[Bitmap]):
    """Cross-pass prefix-intersection cache with bounded per-level LRU.

    :class:`PrefixIntersector` is a *stack* memo: it only remembers the
    prefixes of the most recent candidate, so its state is bounded but
    dies with the batch.  This class keeps a persistent ``prefix ->
    bitmap`` map instead, so pass ``k+1`` — whose ``k``-prefixes are
    exactly the candidates counted in pass ``k`` — starts warm.

    The map is partitioned by prefix length ("level") and each level is
    an :class:`~collections.OrderedDict` evicting least-recently-used
    entries past ``capacity_per_level``, so long low-support runs (many
    passes, wide levels) cannot grow the cache unboundedly: total entries
    are at most ``capacity_per_level x deepest level reached``.

    Accounting matches :class:`PrefixIntersector`: a *hit* is a prefix
    item-step served from the cache, a *miss* is one that had to be
    combined; ``evictions`` counts entries dropped by the bound and
    ``size`` is the current total entry count across levels.

    >>> bitmaps = {1: 0b0111, 2: 0b0101, 3: 0b0110}
    >>> cache = LruPrefixCache(bitmaps.get, operator.and_, 0b1111,
    ...                        capacity_per_level=2)
    >>> bin(cache.intersection((1, 2)))
    '0b101'
    >>> cache.intersection((1, 2)) == 0b0101  # served from cache
    True
    >>> cache.hits, cache.misses
    (2, 2)
    >>> _ = cache.intersection((1, 3)); _ = cache.intersection((2, 3))
    >>> cache.size, cache.evictions  # level-2 bound of 2 evicted (1, 2)
    (4, 1)
    """

    def __init__(
        self,
        lookup: Callable[[int], Optional[Bitmap]],
        combine: Callable[[Bitmap, Bitmap], Bitmap],
        top: Bitmap,
        capacity_per_level: int = 4096,
    ) -> None:
        if capacity_per_level < 1:
            raise ValueError("capacity_per_level must be >= 1")
        self._lookup = lookup
        self._combine = combine
        self._top = top
        self._capacity = capacity_per_level
        self._levels: Dict[int, "OrderedDict[Itemset, Optional[Bitmap]]"] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def size(self) -> int:
        """Current number of cached prefix entries across all levels."""
        return sum(len(level) for level in self._levels.values())

    def clear(self) -> None:
        self._levels.clear()

    def intersection(self, candidate: Itemset) -> Optional[Bitmap]:
        """AND of the item bitmaps; None if any item has no bitmap."""
        length = len(candidate)
        if not length:
            return self._top
        value: Optional[Bitmap] = self._top
        shared = 0
        for depth in range(length, 0, -1):
            level = self._levels.get(depth)
            if level is None:
                continue
            cached = level.get(candidate[:depth], _MISSING)
            if cached is not _MISSING:
                level.move_to_end(candidate[:depth])
                value = cached
                shared = depth
                break
        self.hits += shared
        self.misses += length - shared
        for depth in range(shared, length):
            if value is not None:
                bitmap = self._lookup(candidate[depth])
                value = (
                    None if bitmap is None else self._combine(value, bitmap)
                )
            self._store(candidate[: depth + 1], value)
        return value

    def _store(self, prefix: Itemset, value: Optional[Bitmap]) -> None:
        level = self._levels.setdefault(len(prefix), OrderedDict())
        level[prefix] = value
        level.move_to_end(prefix)
        if len(level) > self._capacity:
            level.popitem(last=False)
            self.evictions += 1


#: Cache-miss sentinel distinguishing "absent" from a cached ``None``
#: (a prefix naming an out-of-universe item legitimately caches as None).
_MISSING = object()


def _int_bitmaps(
    transactions: Sequence[Iterable[int]], universe: Optional[Iterable[int]]
) -> Dict[int, int]:
    """item -> arbitrary-precision bitmap over ``transactions``.

    Items outside an explicit ``universe`` are silently dropped, matching
    the engine contract that out-of-universe candidates have support 0.
    """
    if universe is None:
        occurring: set = set()
        for transaction in transactions:
            occurring.update(transaction)
        universe = occurring
    bitmaps: Dict[int, int] = {item: 0 for item in universe}
    for position, transaction in enumerate(transactions):
        bit = 1 << position
        for item in transaction:
            if item in bitmaps:
                bitmaps[item] |= bit
    return bitmaps


class PackedBitmapIndex:
    """Vertical bitmaps packed as a ``(num_items, num_words)`` uint64 matrix.

    ``num_words = ceil(num_rows / 64)``; bit ``t`` of the row for item
    ``i`` (little-endian across words) is set iff transaction ``t``
    contains ``i``.  Tail bits past ``num_rows`` are always zero, so
    popcounts never need masking.
    """

    #: Candidates per vectorized block; bounds the working set to
    #: ``chunk x length x num_words`` words per level.
    # ~1 MiB of gathered words per side at 32 words/row: chunks (and their
    # AND/popcount temporaries) stay L2-resident, worth ~20% over 8192
    DEFAULT_CHUNK = 4096

    #: Upper bound on the item id for the O(1) vectorized item->row table;
    #: universes with larger (or negative) ids fall back to dict mapping.
    MAX_TABLE_ITEM = 1 << 20

    #: Row width (uint64 words) at or above which a candidate block is
    #: counted by the cache-blocked fused kernel instead of materialising
    #: full-width (C, W) accumulators.  512 words = 32k transactions —
    #: below that the whole working set is L2-resident anyway.
    FUSED_MIN_WORDS = 512

    #: Floor on the words per column tile of the fused kernel.  The
    #: actual tile adapts to the block: see :data:`TILE_TARGET_BYTES`.
    TILE_WORDS = 128

    #: Target byte size of the fused kernel's per-tile accumulator.  The
    #: tile width is chosen as ``TILE_TARGET_BYTES / (block_rows * 8)``
    #: (floored at :data:`TILE_WORDS`), so the accumulator plus the
    #: gathered operand slab stay cache-resident regardless of how many
    #: candidates the block holds.  A fixed 128-word tile is right for
    #: full 4096-candidate chunks but pathological for small blocks —
    #: a few hundred candidates over a wide matrix turn into thousands
    #: of sliver-sized NumPy calls per block, and ufunc dispatch
    #: overhead, not bandwidth, dominates (profiled at >2x the whole
    #: kernel on snapshot-scale rows).
    TILE_TARGET_BYTES = 512 * 1024

    def __init__(self, matrix, rows: Dict[int, int], num_rows: int) -> None:
        if isinstance(matrix, _np.memmap):
            # np.memmap is an ndarray subclass whose every slice and
            # gather runs Python-level ``__getitem__`` +
            # ``__array_finalize__`` to propagate mmap attributes — a few
            # microseconds per access, and the tiled kernel makes
            # thousands of accesses per block (profiled at >60% of
            # snapshot-backed counting time).  A plain ndarray view
            # shares the same mapped buffer at zero copy (the memmap
            # stays alive through ``.base``), so counting pays only the
            # page faults, never the subclass dispatch.
            matrix = matrix.view(_np.ndarray)
        self._matrix = matrix
        self._rows = rows
        self._num_rows = num_rows
        self._row_table = self._build_row_table(rows)
        self._scratch_and = None  # lazily grown (chunk, num_words) buffer
        #: cumulative prefix-sharing accounting, mirroring
        #: :class:`PrefixIntersector`: ``prefix_hits`` = ANDs avoided by
        #: resolving shared prefixes once, ``prefix_misses`` = ANDs done
        self.prefix_hits = 0
        self.prefix_misses = 0

    @classmethod
    def _build_row_table(cls, rows: Dict[int, int]):
        """Vectorized item -> matrix-row lookup (last slot = unknown)."""
        if rows and all(
            isinstance(item, int) and 0 <= item <= cls.MAX_TABLE_ITEM
            for item in rows
        ):
            table = _np.full(max(rows) + 2, -1, dtype=_np.intp)
            for item, row in rows.items():
                table[item] = row
            return table
        return None

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def num_words(self) -> int:
        return int(self._matrix.shape[1])

    @classmethod
    def from_bitmaps(
        cls, bitmaps: Dict[int, int], num_rows: int
    ) -> "PackedBitmapIndex":
        """Pack ``item -> int bitmap`` (the lazy vertical view) into a matrix."""
        num_words = max(1, (num_rows + 63) // 64)
        matrix = _np.zeros((len(bitmaps), num_words), dtype=_np.uint64)
        rows: Dict[int, int] = {}
        num_bytes = num_words * 8
        for row, item in enumerate(sorted(bitmaps)):
            rows[item] = row
            value = bitmaps[item]
            if value:
                matrix[row] = _np.frombuffer(
                    value.to_bytes(num_bytes, "little"), dtype="<u8"
                )
        return cls(matrix, rows, num_rows)

    @classmethod
    def from_transactions(
        cls,
        transactions: Sequence[Iterable[int]],
        universe: Optional[Iterable[int]] = None,
    ) -> "PackedBitmapIndex":
        transactions = list(transactions)
        return cls.from_bitmaps(
            _int_bitmaps(transactions, universe), len(transactions)
        )

    @classmethod
    def from_database(cls, db) -> "PackedBitmapIndex":
        """Build from a database, reusing its cached ``item_bitmaps``."""
        return cls.from_bitmaps(dict(db.item_bitmaps()), len(db))

    # ------------------------------------------------------------------

    def counts(
        self,
        candidates: Sequence[Itemset],
        deadline_check: Optional[Callable[[], None]] = None,
        chunk_size: Optional[int] = None,
    ) -> List[int]:
        """Support counts parallel to ``candidates`` (batch, vectorized)."""
        total = len(candidates)
        results = _np.zeros(total, dtype=_np.int64)
        lengths, flat_rows = self.map_candidates(candidates)
        self.counts_into(
            lengths, flat_rows, results,
            deadline_check=deadline_check, chunk_size=chunk_size,
        )
        return results.tolist()

    @staticmethod
    def flatten_candidates(candidates: Sequence[Itemset]):
        """Ragged candidate list -> ``(lengths, flat item vector)``.

        The flat encoding lets per-length groups be sliced without any
        per-candidate Python work — and is exactly what crosses the
        shared-memory plane (:mod:`repro.db.shm`) instead of pickles.
        """
        total = len(candidates)
        lengths = _np.fromiter(
            map(len, candidates), dtype=_np.int64, count=total
        )
        flat = _np.fromiter(
            chain.from_iterable(candidates),
            dtype=_np.int64,
            count=int(lengths.sum()),
        )
        return lengths, flat

    def map_items(self, flat_items):
        """Flat item ids -> flat matrix rows, -1 for unknown items."""
        table = self._row_table
        if table is not None:
            sentinel = table.shape[0] - 1
            if flat_items.size == 0 or (
                int(flat_items.min()) >= 0 and int(flat_items.max()) < sentinel
            ):
                return table[flat_items]
            in_range = (flat_items >= 0) & (flat_items < sentinel)
            return table[_np.where(in_range, flat_items, sentinel)]
        lookup = self._rows.get
        return _np.fromiter(
            (lookup(item, -1) for item in flat_items.tolist()),
            dtype=_np.intp,
            count=len(flat_items),
        )

    def map_candidates(self, candidates: Sequence[Itemset]):
        """Candidates -> ``(lengths, flat matrix-row vector)``.

        This is the parent-side half of a shared-memory count: the row
        mapping happens once, and workers consume raw row ids with no
        item-table of their own.
        """
        lengths, flat_items = self.flatten_candidates(candidates)
        return lengths, self.map_items(flat_items)

    def counts_into(
        self,
        lengths,
        flat_rows,
        out,
        lo: int = 0,
        hi: Optional[int] = None,
        deadline_check: Optional[Callable[[], None]] = None,
        chunk_size: Optional[int] = None,
        offsets=None,
    ) -> None:
        """Count candidates ``[lo, hi)`` of a flat-encoded batch into ``out``.

        ``lengths``/``flat_rows`` come from :meth:`map_candidates` (row id
        -1 marks an out-of-universe item: the candidate counts 0); ``out``
        is any integer array of at least ``len(lengths)`` — including a
        worker's slice of a shared result block.  Only ``out[lo:hi]`` is
        written, so concurrent workers with disjoint ranges never race.
        """
        total = len(lengths)
        if hi is None:
            hi = total
        if offsets is None:
            offsets = _np.zeros(total, dtype=_np.intp)
            _np.cumsum(lengths[:-1], out=offsets[1:])
        span_lengths = lengths[lo:hi]
        span_offsets = offsets[lo:hi]
        out[lo:hi][span_lengths == 0] = self._num_rows  # () holds everywhere
        for length in _np.unique(span_lengths):
            length = int(length)
            if length == 0:
                continue
            positions = _np.nonzero(span_lengths == length)[0]
            group = flat_rows[span_offsets[positions][:, None] + _np.arange(length)]
            known = (group >= 0).all(axis=1)
            # candidates naming an item outside the universe keep count 0
            if not known.all():
                out[lo + positions[~known]] = 0
                positions = positions[known]
                group = group[known]
            chunk = self._chunk_for(length, chunk_size)
            fused = self.num_words >= self.FUSED_MIN_WORDS
            for start in range(0, len(group), chunk):
                if deadline_check is not None:
                    deadline_check()
                block = group[start : start + chunk]
                if fused:
                    counted = self._fused_counts_tiled(block)
                else:
                    counted = _popcount_words(self._intersect(block))
                out[lo + positions[start : start + chunk]] = counted

    def word_slice(self, word_lo: int, word_hi: int) -> "PackedBitmapIndex":
        """A zero-copy view of transactions ``[64*word_lo, 64*word_hi)``.

        Row shards of the shared-memory plane are word-aligned so each
        worker counts its transaction range by slicing matrix *columns* —
        no data moves, and tail bits beyond ``num_rows`` stay zero.
        """
        rows_before = min(self._num_rows, word_lo * 64)
        rows_in = max(0, min(self._num_rows, word_hi * 64) - rows_before)
        return PackedBitmapIndex(
            self._matrix[:, word_lo:word_hi], self._rows, rows_in
        )

    def _chunk_for(self, length: int, chunk_size: Optional[int]) -> int:
        if chunk_size:
            return chunk_size
        # bound the gathered working set to ~32 MiB of uint64 words
        budget = (1 << 22) // max(1, length * self.num_words)
        return max(1, min(self.DEFAULT_CHUNK, budget))

    def _scratch(self, count: int):
        """Reused (>=count, num_words) accumulator buffer.

        ``np.take(..., out=...)`` into it skips one allocation and one
        memory pass per chunk versus fancy-indexed temporaries — ~2x on
        the cache-resident AND path.  The returned view is only valid
        until the next ``_intersect`` call.
        """
        if self._scratch_and is None or self._scratch_and.shape[0] < count:
            self._scratch_and = _np.empty(
                (count, self.num_words), dtype=_np.uint64
            )
        return self._scratch_and[:count]

    def _intersect(self, block):
        """(C, L) valid row indices -> (C, num_words) AND-accumulators."""
        count, length = block.shape
        matrix = self._matrix
        if length == 1:
            return matrix[block[:, 0]]
        if 2 < length <= 32 and count >= 256:
            return self._intersect_shared_prefixes(block)
        self.prefix_misses += count * (length - 1)
        if count < 64 and length > 2:
            # tiny blocks of long candidates (an MFCS candidate can span
            # the whole universe): one gather + one reduce beats paying
            # per-column call overhead ``length`` times
            return _np.bitwise_and.reduce(matrix[block], axis=1)
        # column-at-a-time in-place AND: one (C, W) gather and one store
        # per column, instead of one (C, L, W) gather for ufunc.reduce
        accumulators = self._scratch(count)
        _np.take(matrix, block[:, 0], axis=0, out=accumulators)
        for column in range(1, length):
            _np.bitwise_and(
                accumulators, matrix[block[:, column]], out=accumulators
            )
        return accumulators

    def _intersect_shared_prefixes(self, block):
        """Batch-wide prefix-intersection cache, fully vectorized.

        Levelwise twin of :class:`PrefixIntersector`: the unique
        ``(k-1)``-prefixes of the block are resolved first (via
        ``np.unique``, all C-level), so a prefix shared by many candidates
        costs one AND for the whole block instead of one per candidate —
        roughly one vectorized AND per candidate-trie edge, exactly the
        saving the scalar cache gives the ``bitmap`` engine.
        """
        base_rows, levels = self._prefix_plan(block)
        self._account_plan(block, levels)
        accumulators = self._matrix[base_rows]
        for inverse, last_rows in reversed(levels):
            accumulators = _np.bitwise_and(
                accumulators[inverse], self._matrix[last_rows]
            )
        return accumulators

    @staticmethod
    def _prefix_plan(block):
        """Levelwise ``np.unique`` dedup plan for a (C, L) block.

        Returns ``(base_rows, levels)`` where ``levels`` is a list of
        ``(inverse, last_rows)`` pairs: evaluating ``base_rows`` and then
        AND-ing ``acc[inverse] & matrix[last_rows]`` level by level in
        reverse yields one accumulator row per candidate.  The plan is
        pure index arithmetic — no bitmap columns are touched — so the
        fused kernel computes it once per block and replays it per word
        tile.
        """
        levels = []
        current = block
        while current.shape[1] > 1:
            unique_prefixes, inverse = _np.unique(
                current[:, :-1], axis=0, return_inverse=True
            )
            levels.append((inverse.reshape(-1), current[:, -1]))
            current = unique_prefixes
        return current[:, 0], levels

    def _account_plan(self, block, levels) -> None:
        performed = sum(len(last_rows) for _, last_rows in levels)
        self.prefix_misses += performed
        self.prefix_hits += block.shape[0] * (block.shape[1] - 1) - performed

    def _fused_counts_tiled(self, block):
        """Cache-blocked fused AND + popcount over a (C, L) block.

        The full-width path (:meth:`_intersect`) streams a ``(C, W)``
        accumulator through memory once per candidate level and once more
        for the popcount.  Here the transaction dimension is cut into
        cache-budget-sized column tiles (:data:`TILE_TARGET_BYTES` per
        accumulator, floored at :data:`TILE_WORDS`): the shared-prefix
        plan is hoisted
        once per block, then replayed per tile, so every level's AND and
        the final popcount reduction happen while the tile-sized
        accumulator is still cache-resident.  Nothing of shape ``(C, W)``
        is ever materialised — the only full-width output is the int64
        count vector.
        """
        count, length = block.shape
        matrix = self._matrix
        num_words = self.num_words
        results = _np.zeros(count, dtype=_np.int64)
        use_plan = 2 < length <= 32 and count >= 256
        if use_plan:
            base_rows, levels = self._prefix_plan(block)
            self._account_plan(block, levels)
        else:
            self.prefix_misses += count * (length - 1)
        # adapt the tile to the block so the accumulator slab is
        # TILE_TARGET_BYTES regardless of candidate count (see the
        # constant's docstring); TILE_WORDS stays the floor
        tile = max(1, self.TILE_WORDS)
        tile = max(
            tile,
            min(num_words, self.TILE_TARGET_BYTES // (max(1, count) * 8)),
        )
        for word_lo in range(0, num_words, tile):
            columns = matrix[:, word_lo : word_lo + tile]
            if use_plan:
                accumulators = columns[base_rows]
                for inverse, last_rows in reversed(levels):
                    accumulators = _np.bitwise_and(
                        accumulators[inverse], columns[last_rows]
                    )
            else:
                # advanced indexing copies, so the in-place AND is safe
                accumulators = columns[block[:, 0]]
                for column in range(1, length):
                    _np.bitwise_and(
                        accumulators, columns[block[:, column]], out=accumulators
                    )
            results += _popcount_words(accumulators)
        return results


class IntBitmapIndex:
    """Pure-Python twin of :class:`PackedBitmapIndex`.

    Same constructor surface and ``counts`` contract, but backed by
    arbitrary-precision int bitmaps and the :class:`PrefixIntersector`
    memo, so the ``packed`` and ``sharded`` engines keep working (and keep
    their prefix-sharing advantage) on interpreters without NumPy.
    """

    def __init__(self, bitmaps: Dict[int, int], num_rows: int) -> None:
        self._bitmaps = bitmaps
        self._num_rows = num_rows
        #: cumulative :class:`PrefixIntersector` accounting across calls
        self.prefix_hits = 0
        self.prefix_misses = 0

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @classmethod
    def from_bitmaps(
        cls, bitmaps: Dict[int, int], num_rows: int
    ) -> "IntBitmapIndex":
        return cls(dict(bitmaps), num_rows)

    @classmethod
    def from_transactions(
        cls,
        transactions: Sequence[Iterable[int]],
        universe: Optional[Iterable[int]] = None,
    ) -> "IntBitmapIndex":
        transactions = list(transactions)
        return cls(_int_bitmaps(transactions, universe), len(transactions))

    @classmethod
    def from_database(cls, db) -> "IntBitmapIndex":
        return cls.from_bitmaps(dict(db.item_bitmaps()), len(db))

    def counts(
        self,
        candidates: Sequence[Itemset],
        deadline_check: Optional[Callable[[], None]] = None,
        chunk_size: Optional[int] = None,
    ) -> List[int]:
        full = (1 << self._num_rows) - 1
        cache: PrefixIntersector[int] = PrefixIntersector(
            self._bitmaps.get, operator.and_, full
        )
        results = [0] * len(candidates)
        order = sorted(range(len(candidates)), key=lambda i: candidates[i])
        # Deadline cadence matches the packed path's chunk budget: check
        # once per ~2^22 words of AND work, where one item-AND costs
        # ``ceil(num_rows / 64)`` words.  The old per-4096-candidates
        # stepping let a batch of long candidates over a wide database run
        # arbitrarily far past its deadline between checks.
        words_per_item = max(1, (self._num_rows + 63) // 64)
        work_budget = max(1, (1 << 22) // words_per_item)
        work = 0
        for position in order:
            if deadline_check is not None:
                if work == 0:
                    deadline_check()
                work += len(candidates[position]) or 1
                if work >= work_budget:
                    work = 0
            value = cache.intersection(candidates[position])
            if value is not None:
                results[position] = popcount(value)
        self.prefix_hits += cache.hits
        self.prefix_misses += cache.misses
        return results


def build_index(
    transactions: Sequence[Iterable[int]],
    universe: Optional[Iterable[int]] = None,
    force_python: bool = False,
):
    """The best available shard index for ``transactions``."""
    if HAVE_NUMPY and not force_python:
        return PackedBitmapIndex.from_transactions(transactions, universe)
    return IntBitmapIndex.from_transactions(transactions, universe)


class PackedCounter(SupportCounter):
    """The ``packed`` engine: batch counting on a packed vertical index.

    The index is built on the first pass over a database and reused for
    every later pass against the *same* database object (miners hold one
    engine per run, so this caches exactly the per-run vertical view the
    ``bitmap`` engine already memoises inside the database).

    ``force_python`` pins the pure-Python fallback index — used by tests
    and honoured when NumPy is missing anyway.
    """

    name = "packed"

    def __init__(self, force_python: bool = False) -> None:
        super().__init__()
        self._force_python = force_python
        self._index = None
        self._index_db: Optional[Callable[[], object]] = None
        #: cumulative prefix-sharing accounting across all passes served
        #: (bench records read these; the metrics registry gets them too)
        self.prefix_cache_hits = 0
        self.prefix_cache_misses = 0

    def _index_for(self, db):
        if (
            self._index is None
            or self._index_db is None
            or self._index_db() is not db
        ):
            if self._force_python or not HAVE_NUMPY:
                self._index = IntBitmapIndex.from_database(db)
            else:
                self._index = PackedBitmapIndex.from_database(db)
            self._index_db = weakref.ref(db)
        return self._index

    def _count(self, db, candidates: List[Itemset]) -> Dict[Itemset, int]:
        index = self._index_for(db)
        hits_before = index.prefix_hits
        misses_before = index.prefix_misses
        counts = index.counts(candidates, deadline_check=self._check_deadline)
        hits = index.prefix_hits - hits_before
        misses = index.prefix_misses - misses_before
        self.prefix_cache_hits += hits
        self.prefix_cache_misses += misses
        if self.obs.enabled:
            self.obs.counter("prefix_cache.hits").inc(hits)
            self.obs.counter("prefix_cache.misses").inc(misses)
        return dict(zip(candidates, counts))

    def reset(self) -> None:
        super().reset()
        self.prefix_cache_hits = 0
        self.prefix_cache_misses = 0
