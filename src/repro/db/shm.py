"""Zero-copy shared-memory data plane: the ``shm`` engine.

The ``sharded`` engine (:mod:`repro.db.parallel`) pays a pre-parallel tax
the paper's cost model never sees: every worker process re-builds a
shard-local vertical index from pickled transactions at startup, and
every pass moves candidate batches and count vectors through pipes as
pickled Python objects.  This module removes both copies:

* **One index, attached everywhere.**  The parent builds (or
  memory-maps, via a :mod:`repro.db.snapshot` file) the packed uint64
  bitmap matrix once, publishes it in a
  :class:`multiprocessing.shared_memory.SharedMemory` segment, and each
  worker attaches NumPy views over the same physical pages — worker
  startup is O(1) regardless of ``|D|``, and the transactions are never
  forked or pickled per worker.
* **Flat-encoded batches, preallocated results.**  Per pass, the parent
  maps candidates to matrix-row ids once and writes the flat encoding
  into a shared batch block; counts come back through a preallocated
  shared ``uint32`` result array (one row per worker, summed by the
  parent).  The only pipe traffic is a tiny per-pass control message.
* **Two sharding shapes.**  Because every worker sees the *whole* index,
  each pass can be split either by transactions (word-aligned column
  slices of the matrix: many rows, few candidates) or by candidates with
  work-stealing chunks off a shared cursor (few rows, wide fused
  C_k+MFCS batches — exactly Pincer's early passes).  The choice is made
  per pass by :class:`repro.db.parallel.AdaptiveShardScheduler`.

Fallback ladder, walked automatically: shared memory → ``mmap`` of a
snapshot file → the classic fork/pipe plane of
:class:`~repro.db.parallel.ShardedCounter` → in-process serial shards.
All rungs produce byte-identical counts and identical pass/IO
accounting.
"""

from __future__ import annotations

import os
import tempfile
import time
import weakref
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .._types import Itemset
from ..obs.logsetup import get_logger
from ..obs.resources import rusage_snapshot
from .parallel import AdaptiveShardScheduler, ShardedCounter, default_num_shards
from .snapshot import load_snapshot, snapshot_database
from .vertical import HAVE_NUMPY, PackedBitmapIndex

try:  # pragma: no cover - mirrors repro.db.vertical
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - very old interpreters
    _shared_memory = None

__all__ = ["ShmShardedCounter", "attach_segment"]

logger = get_logger("db.shm")

#: Initial shared-batch capacity (candidates / flat items); grows 2x.
INITIAL_BATCH_CAPACITY = 4096
INITIAL_ITEM_CAPACITY = 4 * INITIAL_BATCH_CAPACITY


def attach_segment(name: str, untrack: Optional[bool] = None):
    """Attach an existing shared-memory segment without tracker ownership.

    Attaching registers the segment with the process's
    ``resource_tracker`` on Pythons before 3.13, which makes the *worker*
    unlink (and warn about) a segment the parent still owns when the
    worker exits.  The creator is the sole owner here, so attachments are
    explicitly untracked: ``track=False`` where supported, manual
    ``resource_tracker.unregister`` otherwise.

    The manual path matters only when the attaching process runs its
    *own* tracker (spawn/forkserver children); a fork child shares the
    parent's tracker, where the duplicate registration is an idempotent
    set-add and unregistering here would steal the parent's entry.
    ``untrack=None`` decides from the process's start method.
    """
    try:
        return _shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        segment = _shared_memory.SharedMemory(name=name, create=False)
        if untrack is None:
            try:
                import multiprocessing

                untrack = multiprocessing.get_start_method() != "fork"
            except Exception:  # pragma: no cover
                untrack = False
        if untrack:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker API drift
                pass
        return segment


def _unlink_segments(segments: List) -> None:
    """Best-effort close+unlink of owned blocks (also the GC finalizer)."""
    while segments:
        segment = segments.pop()
        for method in ("close", "unlink"):
            try:
                getattr(segment, method)()
            except (AttributeError, BufferError, FileNotFoundError, OSError):
                pass


class _SharedBlock:
    """One parent-owned shared byte range, per the plane's rung.

    ``"shm"`` backs it with a POSIX shared-memory segment; ``"mmap"``
    with a ``MAP_SHARED`` temp file — so the mmap rung works end to end
    even when ``/dev/shm`` is unavailable or full (its reason to exist).
    ``name`` is what workers attach by: the segment name or the path.
    """

    def __init__(self, plane: str, size: int) -> None:
        self.plane = plane
        self._mapped = None
        self._segment = None
        if plane == "shm":
            self._segment = _shared_memory.SharedMemory(create=True, size=size)
            self.name = self._segment.name
        else:
            handle, path = tempfile.mkstemp(
                prefix="pincer-shm-", suffix=".blk"
            )
            os.ftruncate(handle, size)
            os.close(handle)
            self._mapped = _np.memmap(
                path, dtype=_np.uint8, mode="r+", shape=(size,)
            )
            self.name = path

    @property
    def buf(self):
        return self._segment.buf if self._segment is not None else self._mapped

    def close(self) -> None:
        if self._segment is not None:
            self._segment.close()
        self._mapped = None

    def unlink(self) -> None:
        if self._segment is not None:
            self._segment.unlink()
        else:
            os.unlink(self.name)


def _word_bounds(num_words: int, num_workers: int) -> List[Tuple[int, int]]:
    """Contiguous word ranges per worker (some may be empty on tiny dbs)."""
    base, extra = divmod(num_words, num_workers)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for worker in range(num_workers):
        stop = start + base + (1 if worker < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------


def _shm_worker(connection, spec: Dict, cursor) -> None:
    """Attach the shared index, then serve count tasks until told to stop.

    ``spec`` describes the matrix (shared segment name, or snapshot path
    plus offset for the mmap rung), this worker's word-aligned row shard,
    and its slot in the result array.  Candidate batches arrive through
    the shared batch block named in each task message; nothing bigger
    than a small control dict ever crosses the pipe.
    """
    import numpy as np

    started = time.perf_counter()
    matrix_segment = None
    untrack = spec.get("untrack")
    try:
        if spec["plane"] == "shm":
            matrix_segment = attach_segment(spec["matrix_name"], untrack)
            matrix = np.ndarray(
                spec["shape"], dtype=np.uint64, buffer=matrix_segment.buf
            )
        else:  # mmap rung: the snapshot file is the shared medium
            matrix = np.memmap(
                spec["snapshot_path"],
                dtype="<u8",
                mode="r",
                offset=spec["matrix_offset"],
                shape=spec["shape"],
            )
        full_index = PackedBitmapIndex(matrix, {}, spec["num_rows"])
        word_lo, word_hi = spec["word_range"]
        slice_index = full_index.word_slice(word_lo, word_hi)
    except BaseException as exc:  # pragma: no cover - defensive
        connection.send(("error", repr(exc)))
        connection.close()
        return
    connection.send(("ready", os.getpid(), time.perf_counter() - started))

    worker_id = spec["worker"]
    num_workers = spec["num_workers"]
    batch_segment = results_segment = None
    attached_names: Tuple[Optional[str], Optional[str]] = (None, None)
    while True:
        try:
            task = connection.recv()
        except EOFError:  # parent vanished
            break
        if task is None:
            break
        try:
            names = (task["batch_name"], task["results_name"])
            if names != attached_names:
                _close_quietly(batch_segment, results_segment)
                batch_segment, batch_buffer = _attach_block(
                    spec["plane"], names[0], untrack
                )
                results_segment, results_buffer = _attach_block(
                    spec["plane"], names[1], untrack
                )
                attached_names = names
            capacity = task["capacity_candidates"]
            lengths_all = np.ndarray(
                (capacity,), dtype=np.int64, buffer=batch_buffer
            )
            flat_all = np.ndarray(
                (task["capacity_items"],),
                dtype=np.int64,
                buffer=batch_buffer,
                offset=capacity * 8,
            )
            results = np.ndarray(
                (num_workers, capacity),
                dtype=np.uint32,
                buffer=results_buffer,
            )
            n = task["n"]
            lengths = lengths_all[:n]
            flat_rows = flat_all[: task["flat_len"]]
            offsets = np.zeros(n, dtype=np.intp)
            if n > 1:
                np.cumsum(lengths[:-1], out=offsets[1:])
            out = results[worker_id]

            wall_started = time.perf_counter()
            cpu_started = time.process_time()
            hits_before = full_index.prefix_hits + slice_index.prefix_hits
            misses_before = full_index.prefix_misses + slice_index.prefix_misses
            chunks_taken = 0
            if task["mode"] == "rows":
                slice_index.counts_into(
                    lengths, flat_rows, out, 0, n, offsets=offsets
                )
                records_read = slice_index.num_rows
            else:
                chunk = task["chunk"]
                while True:
                    with cursor.get_lock():
                        chunk_id = cursor.value
                        cursor.value = chunk_id + 1
                    lo = chunk_id * chunk
                    if lo >= n:
                        break
                    full_index.counts_into(
                        lengths, flat_rows, out, lo, min(lo + chunk, n),
                        offsets=offsets,
                    )
                    chunks_taken += 1
                # the pass reads the database once logically, whichever
                # worker touches which candidate; the parent bills |D|
                records_read = 0
            meta = {
                "records_read": records_read,
                "seconds": time.perf_counter() - wall_started,
                "cpu_seconds": time.process_time() - cpu_started,
                "maxrss_kb": rusage_snapshot().get("maxrss_kb", 0),
                "chunks_taken": chunks_taken,
                "prefix_hits": full_index.prefix_hits
                + slice_index.prefix_hits
                - hits_before,
                "prefix_misses": full_index.prefix_misses
                + slice_index.prefix_misses
                - misses_before,
            }
            connection.send(("done", meta))
        except BaseException as exc:  # pragma: no cover - defensive
            connection.send(("error", repr(exc)))
    try:
        del lengths_all, flat_all, results
    except NameError:  # stopped before the first task
        pass
    del matrix, full_index, slice_index
    _close_quietly(batch_segment, results_segment, matrix_segment)
    connection.close()


def _close_quietly(*segments) -> None:
    for segment in segments:
        if segment is not None:
            try:
                segment.close()
            except (AttributeError, BufferError, OSError):  # pragma: no cover
                pass  # np.memmap blocks have no close(); GC unmaps them


def _attach_block(plane: str, name: str, untrack):
    """Worker-side attach: -> ``(holder, buffer)`` for either rung."""
    import numpy as np

    if plane == "shm":
        segment = attach_segment(name, untrack)
        return segment, segment.buf
    mapped = np.memmap(name, dtype=np.uint8, mode="r+")
    return mapped, mapped


# ----------------------------------------------------------------------
# parent-side plane state
# ----------------------------------------------------------------------


class _ShmPlane:
    """Parent-side handle on the shared segments and worker specs."""

    def __init__(self, plane: str, num_rows: int, num_words: int) -> None:
        self.plane = plane  # "shm" | "mmap"
        self.num_rows = num_rows
        self.num_words = num_words
        self.matrix_segment = None
        self.temp_snapshot: Optional[Path] = None
        self.batch_segment = None
        self.results_segment = None
        self.capacity_candidates = 0
        self.capacity_items = 0
        self.num_workers = 0
        self.cursor = None
        self.lengths = None  # np views over the batch/results blocks
        self.flat = None
        self.results = None
        #: owned segments, shared with the GC finalizer for leak-proofing
        self.owned: List = []

    def ensure_capacity(self, num_candidates: int, num_items: int) -> None:
        """(Re)allocate the batch + result blocks; unlink outgrown ones."""
        if (
            num_candidates <= self.capacity_candidates
            and num_items <= self.capacity_items
        ):
            return
        capacity_c = max(
            INITIAL_BATCH_CAPACITY, 2 * self.capacity_candidates, num_candidates
        )
        capacity_i = max(
            INITIAL_ITEM_CAPACITY, 2 * self.capacity_items, num_items
        )
        old = [
            segment
            for segment in (self.batch_segment, self.results_segment)
            if segment is not None
        ]
        self.lengths = self.flat = self.results = None
        batch_bytes = capacity_c * 8 + capacity_i * 8
        results_bytes = self.num_workers * capacity_c * 4
        self.batch_segment = _SharedBlock(self.plane, batch_bytes)
        self.results_segment = _SharedBlock(self.plane, results_bytes)
        self.owned.extend([self.batch_segment, self.results_segment])
        self.capacity_candidates = capacity_c
        self.capacity_items = capacity_i
        self.lengths = _np.ndarray(
            (capacity_c,), dtype=_np.int64, buffer=self.batch_segment.buf
        )
        self.flat = _np.ndarray(
            (capacity_i,),
            dtype=_np.int64,
            buffer=self.batch_segment.buf,
            offset=capacity_c * 8,
        )
        self.results = _np.ndarray(
            (self.num_workers, capacity_c),
            dtype=_np.uint32,
            buffer=self.results_segment.buf,
        )
        for segment in old:
            # workers still hold the old mapping until their next task
            # message names the new segments; unlinking now only removes
            # the name
            self.owned.remove(segment)
            try:
                segment.unlink()
                segment.close()
            except (BufferError, FileNotFoundError, OSError):  # pragma: no cover
                pass
        del old

    def task_header(self) -> Dict:
        return {
            "batch_name": self.batch_segment.name,
            "results_name": self.results_segment.name,
            "capacity_candidates": self.capacity_candidates,
            "capacity_items": self.capacity_items,
        }

    def close(self) -> None:
        self.lengths = self.flat = self.results = None
        _unlink_segments(self.owned)
        self.matrix_segment = None
        self.batch_segment = None
        self.results_segment = None
        if self.temp_snapshot is not None:
            try:
                self.temp_snapshot.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
            self.temp_snapshot = None


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------


class ShmShardedCounter(ShardedCounter):
    """The ``shm`` engine: sharded counting over one shared index.

    Inherits the whole pipe-plane machinery of :class:`ShardedCounter`
    as its third fallback rung; everything above it replaces per-worker
    index builds and pickled batches with shared-memory attaches.

    Parameters match :class:`ShardedCounter`, plus:

    steal_chunk:
        Candidate-mode work-stealing chunk size override (default: the
        scheduler picks per pass).
    """

    name = "shm"

    def __init__(
        self,
        num_shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        use_processes: Optional[bool] = None,
        steal_chunk: Optional[int] = None,
    ) -> None:
        super().__init__(
            num_shards=num_shards,
            max_workers=max_workers,
            use_processes=use_processes,
        )
        self._steal_chunk = steal_chunk
        self._plane: Optional[_ShmPlane] = None
        self._parent_index: Optional[PackedBitmapIndex] = None
        self._scheduler: Optional[AdaptiveShardScheduler] = None
        self._finalizer = None
        #: which rung of the fallback ladder is serving: "shm", "mmap",
        #: "pipe" (inherited worker plane) or "serial"
        self.plane = "unattached"
        #: seconds the most recent attach took (index + publish + spawn)
        self.last_attach_seconds = 0.0
        #: per-worker startup seconds reported at the latest attach
        self.worker_startup_seconds: List[float] = []
        #: scheduler decision of the most recent pass
        self.last_mode: Optional[str] = None
        #: work-stealing accounting (cumulative since attach)
        self.steals = 0
        self.chunks_dispatched = 0

    # ------------------------------------------------------------------
    # attach / detach
    # ------------------------------------------------------------------

    def _attach(self, db) -> None:
        attach_started = time.perf_counter()
        self.close()
        num_rows = len(db)
        workers = self._num_shards or default_num_shards(
            num_rows, self._max_workers
        )
        workers = max(1, min(workers, num_rows) if num_rows else 1)
        processes = (
            self._use_processes if self._use_processes is not None else workers > 1
        )
        if (
            HAVE_NUMPY
            and _shared_memory is not None
            and processes
            and workers > 1
            and self._attach_shared(db, workers)
        ):
            self._db_ref = weakref.ref(db)
            self.last_attach_seconds = time.perf_counter() - attach_started
            if self.obs.enabled:
                self.obs.gauge("shard.attach_seconds").set(
                    self.last_attach_seconds
                )
            logger.debug(
                "shm plane up: %s, %d workers, %d words, attach %.4fs "
                "(worker startup max %.4fs)",
                self.plane, workers, self._plane.num_words,
                self.last_attach_seconds,
                max(self.worker_startup_seconds or [0.0]),
            )
            return
        super()._attach(db)  # pipe plane or serial shards
        self.plane = "pipe" if self._connections else "serial"
        self.last_attach_seconds = time.perf_counter() - attach_started

    def _attach_shared(self, db, workers: int) -> bool:
        """Publish the index and spawn attach-only workers; False to fall."""
        index = self._build_parent_index(db)
        matrix = index._matrix
        num_words = index.num_words
        plane: Optional[_ShmPlane] = None
        try:
            plane = _ShmPlane("shm", index.num_rows, num_words)
            segment = _shared_memory.SharedMemory(
                create=True, size=int(matrix.nbytes)
            )
            plane.matrix_segment = segment
            plane.owned.append(segment)
            shared_matrix = _np.ndarray(
                matrix.shape, dtype=_np.uint64, buffer=segment.buf
            )
            shared_matrix[:] = matrix
            del shared_matrix
            matrix_spec = {"plane": "shm", "matrix_name": segment.name}
        except (OSError, ValueError):
            if plane is not None:
                plane.close()
            plane, matrix_spec = self._mmap_fallback(db, index, num_words)
            if plane is None:
                return False
        plane.num_workers = workers
        if not self._spawn_shm_workers(plane, matrix_spec, index, workers):
            plane.close()
            return False
        self._plane = plane
        self._parent_index = index
        self._scheduler = AdaptiveShardScheduler(
            workers, chunk=self._steal_chunk
        )
        self.plane = plane.plane
        self.shard_rows = self._slice_rows(index, workers)
        self.steals = 0
        self.chunks_dispatched = 0
        # leak-proofing: unlink whatever is still owned when the counter
        # is garbage-collected or the interpreter exits without close()
        self._finalizer = weakref.finalize(self, _unlink_segments, plane.owned)
        return True

    def _build_parent_index(self, db) -> PackedBitmapIndex:
        """The full vertical index — memory-mapped when a snapshot exists."""
        snapshot_path = getattr(db, "snapshot_path", None)
        if snapshot_path is not None:
            return load_snapshot(snapshot_path).packed_index()
        return PackedBitmapIndex.from_database(db)

    def _mmap_fallback(self, db, index, num_words):
        """Second rung: share the matrix through a snapshot file mmap."""
        try:
            snapshot_path = getattr(db, "snapshot_path", None)
            temp_snapshot = None
            if snapshot_path is None:
                handle, name = tempfile.mkstemp(
                    prefix="pincer-shm-", suffix=".snap"
                )
                os.close(handle)
                temp_snapshot = Path(name)
                snapshot_database(db, temp_snapshot)
                snapshot_path = temp_snapshot
            snap = load_snapshot(snapshot_path)
            plane = _ShmPlane("mmap", index.num_rows, num_words)
            plane.temp_snapshot = temp_snapshot
            return plane, {
                "plane": "mmap",
                "snapshot_path": str(snapshot_path),
                "matrix_offset": snap.matrix_offset,
            }
        except (OSError, ValueError):  # pragma: no cover - disk exhaustion
            return None, None

    def _slice_rows(self, index, workers: int) -> List[int]:
        rows = []
        for word_lo, word_hi in _word_bounds(index.num_words, workers):
            lo = min(index.num_rows, word_lo * 64)
            hi = min(index.num_rows, word_hi * 64)
            rows.append(hi - lo)
        return rows

    def _spawn_shm_workers(self, plane, matrix_spec, index, workers) -> bool:
        import multiprocessing

        context = multiprocessing.get_context()
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        plane.cursor = context.Value("l", 0)
        untrack = context.get_start_method() != "fork"
        bounds = _word_bounds(index.num_words, workers)
        processes: List = []
        connections: List = []
        self.worker_startup_seconds = []
        try:
            for worker_id, word_range in enumerate(bounds):
                spec = dict(
                    matrix_spec,
                    shape=(int(index._matrix.shape[0]), index.num_words),
                    num_rows=index.num_rows,
                    word_range=word_range,
                    worker=worker_id,
                    num_workers=workers,
                    untrack=untrack,
                )
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_shm_worker,
                    args=(child_end, spec, plane.cursor),
                    daemon=True,
                )
                process.start()
                child_end.close()
                processes.append(process)
                connections.append(parent_end)
            for connection in connections:
                reply = connection.recv()
                if reply[0] != "ready":
                    raise RuntimeError(
                        "shm worker failed to start: %s" % (reply[1],)
                    )
                self.worker_startup_seconds.append(reply[2])
        except (OSError, RuntimeError, EOFError):
            for connection in connections:
                connection.close()
            for process in processes:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=1.0)
            return False
        self._workers = processes
        self._connections = connections
        self.worker_pids = [process.pid for process in processes]
        return True

    def close(self) -> None:
        super().close()
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._plane is not None:
            self._plane.close()
            self._plane = None
        self._parent_index = None
        self._scheduler = None
        self.plane = "unattached"
        self.last_mode = None
        self.worker_startup_seconds = []

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------

    def note_pass_rate(self, rate: Optional[float]) -> None:
        """Miner-observed candidates/second: feeds the mode scheduler."""
        if self._scheduler is not None:
            self._scheduler.note_miner_rate(rate)

    def _count(self, db, candidates: List[Itemset]) -> Dict[Itemset, int]:
        if not self._attached_to(db):
            self._attach(db)
        if self._plane is None:
            return super()._count(db, candidates)
        totals = self._count_shared(candidates)
        self._record_shard_metrics()
        return dict(zip(candidates, totals))

    def _count_shared(self, candidates: List[Itemset]) -> List[int]:
        plane = self._plane
        index = self._parent_index
        n = len(candidates)
        lengths, flat_rows = index.map_candidates(candidates)
        plane.ensure_capacity(n, len(flat_rows))
        plane.lengths[:n] = lengths
        plane.flat[: len(flat_rows)] = flat_rows
        mode, chunk = self._scheduler.choose(n, plane.num_rows)
        self.last_mode = mode
        if mode == "candidates":
            plane.results[:, :n] = 0
            plane.cursor.value = 0
        task = plane.task_header()
        task.update(
            n=n, flat_len=len(flat_rows), mode=mode, chunk=chunk,
            num_workers=plane.num_workers,
        )
        pass_started = time.perf_counter()
        try:
            for connection in self._connections:
                connection.send(task)
        except (BrokenPipeError, OSError):
            self.close()
            raise RuntimeError("shm worker died mid-pass") from None
        metas = self._collect_replies()
        seconds = time.perf_counter() - pass_started
        self._scheduler.observe(mode, n, seconds)
        if mode == "candidates":
            self.records_read += plane.num_rows
            total_chunks = (n + chunk - 1) // chunk
            self.chunks_dispatched += total_chunks
            fair_share = -(-total_chunks // plane.num_workers)
            steals = sum(
                max(0, meta["chunks_taken"] - fair_share) for meta in metas
            )
            self.steals += steals
        else:
            steals = 0
        totals = plane.results[: plane.num_workers, :n].sum(
            axis=0, dtype=_np.int64
        )
        if self.obs.enabled:
            self.obs.counter("scheduler.mode.%s" % mode).inc()
            self.obs.counter("shard.steals").inc(steals)
            hits = sum(meta["prefix_hits"] for meta in metas)
            misses = sum(meta["prefix_misses"] for meta in metas)
            self.obs.counter("prefix_cache.hits").inc(hits)
            self.obs.counter("prefix_cache.misses").inc(misses)
        return totals.tolist()

    def _collect_replies(self) -> List[Dict]:
        """Deadline-aware reply collection (mirrors the pipe plane)."""
        metas: List[Optional[Dict]] = [None] * len(self._connections)
        self.last_shard_seconds = [0.0] * len(self._connections)
        self.last_shard_cpu_seconds = [0.0] * len(self._connections)
        self.last_shard_maxrss_kb = [0] * len(self._connections)
        pending = set(range(len(self._connections)))
        while pending:
            try:
                self._check_deadline()
            except Exception:
                self.close()
                raise
            for shard in sorted(pending):
                connection = self._connections[shard]
                try:
                    if not connection.poll(0.01):
                        continue
                    reply = connection.recv()
                except (EOFError, OSError):
                    self.close()
                    raise RuntimeError(
                        "shm worker %d died mid-pass" % shard
                    ) from None
                if reply[0] != "done":
                    self.close()
                    raise RuntimeError(
                        "shm worker %d failed: %s" % (shard, reply[1])
                    )
                meta = reply[1]
                metas[shard] = meta
                self.records_read += meta["records_read"]
                self.last_shard_seconds[shard] = meta["seconds"]
                self.last_shard_cpu_seconds[shard] = meta["cpu_seconds"]
                self.last_shard_maxrss_kb[shard] = meta["maxrss_kb"]
                pending.discard(shard)
        return [meta for meta in metas if meta is not None]
