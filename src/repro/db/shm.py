"""Zero-copy shared-memory data plane: the ``shm`` engine.

The ``sharded`` engine (:mod:`repro.db.parallel`) pays a pre-parallel tax
the paper's cost model never sees: every worker process re-builds a
shard-local vertical index from pickled transactions at startup, and
every pass moves candidate batches and count vectors through pipes as
pickled Python objects.  This module removes both copies:

* **One index, attached everywhere.**  The parent builds (or
  memory-maps, via a :mod:`repro.db.snapshot` file) the packed uint64
  bitmap matrix once, publishes it in a
  :class:`multiprocessing.shared_memory.SharedMemory` segment, and each
  worker attaches NumPy views over the same physical pages — worker
  startup is O(1) regardless of ``|D|``, and the transactions are never
  forked or pickled per worker.
* **Flat-encoded batches, preallocated results.**  Per pass, the parent
  maps candidates to matrix-row ids once and writes the flat encoding
  into a shared batch block; counts come back through a preallocated
  shared ``uint32`` result array (one row per worker, summed by the
  parent).  The only pipe traffic is a tiny per-pass control message.
* **Two sharding shapes.**  Because every worker sees the *whole* index,
  each pass can be split either by transactions (word-aligned column
  slices of the matrix: many rows, few candidates) or by candidates with
  work-stealing chunks off a shared cursor (few rows, wide fused
  C_k+MFCS batches — exactly Pincer's early passes).  The choice is made
  per pass by :class:`repro.db.parallel.AdaptiveShardScheduler`.

Fallback ladder, walked automatically: shared memory → ``mmap`` of a
snapshot file → the classic fork/pipe plane of
:class:`~repro.db.parallel.ShardedCounter` → in-process serial shards.
All rungs produce byte-identical counts and identical pass/IO
accounting.
"""

from __future__ import annotations

import os
import tempfile
import time
import weakref
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .._types import Itemset
from ..obs.logsetup import get_logger
from ..obs.resources import rusage_snapshot
from ..obs.telemetry import (
    STATE_COUNTING,
    STATE_IDLE,
    STATE_STEALING,
    TelemetryWriter,
)
from .parallel import AdaptiveShardScheduler, ShardedCounter, default_num_shards
from .snapshot import load_snapshot, snapshot_database
from .vertical import HAVE_NUMPY, PackedBitmapIndex

try:  # pragma: no cover - mirrors repro.db.vertical
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - very old interpreters
    _shared_memory = None

__all__ = ["ShmShardedCounter", "attach_segment"]

logger = get_logger("db.shm")

#: Initial shared-batch capacity (candidates / flat items); grows 2x.
INITIAL_BATCH_CAPACITY = 4096
INITIAL_ITEM_CAPACITY = 4 * INITIAL_BATCH_CAPACITY


def attach_segment(name: str, untrack: Optional[bool] = None):
    """Attach an existing shared-memory segment without tracker ownership.

    Attaching registers the segment with the process's
    ``resource_tracker`` on Pythons before 3.13, which makes the *worker*
    unlink (and warn about) a segment the parent still owns when the
    worker exits.  The creator is the sole owner here, so attachments are
    explicitly untracked: ``track=False`` where supported, manual
    ``resource_tracker.unregister`` otherwise.

    The manual path matters only when the attaching process runs its
    *own* tracker (spawn/forkserver children); a fork child shares the
    parent's tracker, where the duplicate registration is an idempotent
    set-add and unregistering here would steal the parent's entry.
    ``untrack=None`` decides from the process's start method.
    """
    try:
        return _shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        segment = _shared_memory.SharedMemory(name=name, create=False)
        if untrack is None:
            try:
                import multiprocessing

                untrack = multiprocessing.get_start_method() != "fork"
            except Exception:  # pragma: no cover
                untrack = False
        if untrack:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker API drift
                pass
        return segment


def _unlink_segments(segments: List) -> None:
    """Best-effort close+unlink of owned blocks (also the GC finalizer)."""
    while segments:
        segment = segments.pop()
        for method in ("close", "unlink"):
            try:
                getattr(segment, method)()
            except (AttributeError, BufferError, FileNotFoundError, OSError):
                pass


class _SharedBlock:
    """One parent-owned shared byte range, per the plane's rung.

    ``"shm"`` backs it with a POSIX shared-memory segment; ``"mmap"``
    with a ``MAP_SHARED`` temp file — so the mmap rung works end to end
    even when ``/dev/shm`` is unavailable or full (its reason to exist).
    ``name`` is what workers attach by: the segment name or the path.
    """

    def __init__(self, plane: str, size: int) -> None:
        self.plane = plane
        self._mapped = None
        self._segment = None
        if plane == "shm":
            self._segment = _shared_memory.SharedMemory(create=True, size=size)
            self.name = self._segment.name
        else:
            handle, path = tempfile.mkstemp(
                prefix="pincer-shm-", suffix=".blk"
            )
            os.ftruncate(handle, size)
            os.close(handle)
            self._mapped = _np.memmap(
                path, dtype=_np.uint8, mode="r+", shape=(size,)
            )
            self.name = path

    @property
    def buf(self):
        return self._segment.buf if self._segment is not None else self._mapped

    def close(self) -> None:
        if self._segment is not None:
            self._segment.close()
        self._mapped = None

    def unlink(self) -> None:
        if self._segment is not None:
            self._segment.unlink()
        else:
            os.unlink(self.name)


def _word_bounds(num_words: int, num_workers: int) -> List[Tuple[int, int]]:
    """Contiguous word ranges per worker (some may be empty on tiny dbs)."""
    base, extra = divmod(num_words, num_workers)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for worker in range(num_workers):
        stop = start + base + (1 if worker < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------


def _shm_worker(connection, spec: Dict, cursor) -> None:
    """Attach the shared index, then serve count tasks until told to stop.

    ``spec`` describes the matrix (shared segment name, or snapshot path
    plus offset for the mmap rung), this worker's word-aligned row shard,
    and its slot in the result array.  Candidate batches arrive through
    the shared batch block named in each task message; nothing bigger
    than a small control dict ever crosses the pipe.
    """
    import numpy as np

    started = time.perf_counter()
    matrix_segment = None
    untrack = spec.get("untrack")
    try:
        if spec["plane"] == "shm":
            matrix_segment = attach_segment(spec["matrix_name"], untrack)
            matrix = np.ndarray(
                spec["shape"], dtype=np.uint64, buffer=matrix_segment.buf
            )
        else:  # mmap rung: the snapshot file is the shared medium
            matrix = np.memmap(
                spec["snapshot_path"],
                dtype="<u8",
                mode="r",
                offset=spec["matrix_offset"],
                shape=spec["shape"],
            )
        full_index = PackedBitmapIndex(matrix, {}, spec["num_rows"])
        word_lo, word_hi = spec["word_range"]
        slice_index = full_index.word_slice(word_lo, word_hi)
    except BaseException as exc:  # pragma: no cover - defensive
        connection.send(("error", repr(exc)))
        connection.close()
        return
    telemetry = TelemetryWriter.attach(spec.get("telemetry"))
    connection.send(("ready", os.getpid(), time.perf_counter() - started))
    if telemetry is not None:
        telemetry.beat(state=STATE_IDLE, rows_total=slice_index.num_rows)

    worker_id = spec["worker"]
    num_workers = spec["num_workers"]
    batch_segment = results_segment = None
    attached_names: Tuple[Optional[str], Optional[str]] = (None, None)
    while True:
        try:
            task = connection.recv()
        except EOFError:  # parent vanished
            break
        if task is None:
            break
        try:
            names = (task["batch_name"], task["results_name"])
            if names != attached_names:
                _close_quietly(batch_segment, results_segment)
                batch_segment, batch_buffer = _attach_block(
                    spec["plane"], names[0], untrack
                )
                results_segment, results_buffer = _attach_block(
                    spec["plane"], names[1], untrack
                )
                attached_names = names
            capacity = task["capacity_candidates"]
            lengths_all = np.ndarray(
                (capacity,), dtype=np.int64, buffer=batch_buffer
            )
            flat_all = np.ndarray(
                (task["capacity_items"],),
                dtype=np.int64,
                buffer=batch_buffer,
                offset=capacity * 8,
            )
            results = np.ndarray(
                (num_workers, capacity),
                dtype=np.uint32,
                buffer=results_buffer,
            )
            n = task["n"]
            lengths = lengths_all[:n]
            flat_rows = flat_all[: task["flat_len"]]
            offsets = np.zeros(n, dtype=np.intp)
            if n > 1:
                np.cumsum(lengths[:-1], out=offsets[1:])
            out = results[worker_id]

            wall_started = time.perf_counter()
            cpu_started = time.process_time()
            hits_before = full_index.prefix_hits + slice_index.prefix_hits
            misses_before = full_index.prefix_misses + slice_index.prefix_misses
            chunks_taken = 0
            beat_hook = telemetry.maybe_beat if telemetry is not None else None
            if task["mode"] == "rows":
                if telemetry is not None:
                    telemetry.beat(state=STATE_COUNTING, candidates_total=n)
                slice_index.counts_into(
                    lengths, flat_rows, out, 0, n, offsets=offsets,
                    deadline_check=beat_hook,
                )
                records_read = slice_index.num_rows
                if telemetry is not None:
                    telemetry.advance(
                        candidates_done=n,
                        rows_done=records_read,
                        records_read=records_read,
                    )
            else:
                if telemetry is not None:
                    telemetry.beat(state=STATE_STEALING, candidates_total=n)
                chunk = task["chunk"]
                while True:
                    with cursor.get_lock():
                        chunk_id = cursor.value
                        cursor.value = chunk_id + 1
                    lo = chunk_id * chunk
                    if lo >= n:
                        break
                    hi = min(lo + chunk, n)
                    full_index.counts_into(
                        lengths, flat_rows, out, lo, hi,
                        offsets=offsets, deadline_check=beat_hook,
                    )
                    chunks_taken += 1
                    if telemetry is not None:
                        telemetry.advance(candidates_done=hi - lo)
                        telemetry.note(cursor=chunk_id)
                        telemetry.maybe_beat()
                # the pass reads the database once logically, whichever
                # worker touches which candidate; the parent bills |D|
                records_read = 0
            if telemetry is not None:
                telemetry.beat(state=STATE_IDLE)
            meta = {
                "records_read": records_read,
                "seconds": time.perf_counter() - wall_started,
                "cpu_seconds": time.process_time() - cpu_started,
                "maxrss_kb": rusage_snapshot().get("maxrss_kb", 0),
                "chunks_taken": chunks_taken,
                "prefix_hits": full_index.prefix_hits
                + slice_index.prefix_hits
                - hits_before,
                "prefix_misses": full_index.prefix_misses
                + slice_index.prefix_misses
                - misses_before,
            }
            connection.send(("done", meta))
        except BaseException as exc:  # pragma: no cover - defensive
            connection.send(("error", repr(exc)))
    try:
        del lengths_all, flat_all, results
    except NameError:  # stopped before the first task
        pass
    del matrix, full_index, slice_index
    if telemetry is not None:
        telemetry.close()
    _close_quietly(batch_segment, results_segment, matrix_segment)
    connection.close()


def _close_quietly(*segments) -> None:
    for segment in segments:
        if segment is not None:
            try:
                segment.close()
            except (AttributeError, BufferError, OSError):  # pragma: no cover
                pass  # np.memmap blocks have no close(); GC unmaps them


def _attach_block(plane: str, name: str, untrack):
    """Worker-side attach: -> ``(holder, buffer)`` for either rung."""
    import numpy as np

    if plane == "shm":
        segment = attach_segment(name, untrack)
        return segment, segment.buf
    mapped = np.memmap(name, dtype=np.uint8, mode="r+")
    return mapped, mapped


# ----------------------------------------------------------------------
# parent-side plane state
# ----------------------------------------------------------------------


class _ShmPlane:
    """Parent-side handle on the shared segments and worker specs."""

    def __init__(self, plane: str, num_rows: int, num_words: int) -> None:
        self.plane = plane  # "shm" | "mmap"
        self.num_rows = num_rows
        self.num_words = num_words
        self.matrix_segment = None
        self.temp_snapshot: Optional[Path] = None
        self.batch_segment = None
        self.results_segment = None
        self.capacity_candidates = 0
        self.capacity_items = 0
        self.num_workers = 0
        self.cursor = None
        self.lengths = None  # np views over the batch/results blocks
        self.flat = None
        self.results = None
        #: owned segments, shared with the GC finalizer for leak-proofing
        self.owned: List = []

    def ensure_capacity(self, num_candidates: int, num_items: int) -> None:
        """(Re)allocate the batch + result blocks; unlink outgrown ones."""
        if (
            num_candidates <= self.capacity_candidates
            and num_items <= self.capacity_items
        ):
            return
        capacity_c = max(
            INITIAL_BATCH_CAPACITY, 2 * self.capacity_candidates, num_candidates
        )
        capacity_i = max(
            INITIAL_ITEM_CAPACITY, 2 * self.capacity_items, num_items
        )
        old = [
            segment
            for segment in (self.batch_segment, self.results_segment)
            if segment is not None
        ]
        self.lengths = self.flat = self.results = None
        batch_bytes = capacity_c * 8 + capacity_i * 8
        results_bytes = self.num_workers * capacity_c * 4
        self.batch_segment = _SharedBlock(self.plane, batch_bytes)
        self.results_segment = _SharedBlock(self.plane, results_bytes)
        self.owned.extend([self.batch_segment, self.results_segment])
        self.capacity_candidates = capacity_c
        self.capacity_items = capacity_i
        self.lengths = _np.ndarray(
            (capacity_c,), dtype=_np.int64, buffer=self.batch_segment.buf
        )
        self.flat = _np.ndarray(
            (capacity_i,),
            dtype=_np.int64,
            buffer=self.batch_segment.buf,
            offset=capacity_c * 8,
        )
        self.results = _np.ndarray(
            (self.num_workers, capacity_c),
            dtype=_np.uint32,
            buffer=self.results_segment.buf,
        )
        for segment in old:
            # workers still hold the old mapping until their next task
            # message names the new segments; unlinking now only removes
            # the name
            self.owned.remove(segment)
            try:
                segment.unlink()
                segment.close()
            except (BufferError, FileNotFoundError, OSError):  # pragma: no cover
                pass
        del old

    def task_header(self) -> Dict:
        return {
            "batch_name": self.batch_segment.name,
            "results_name": self.results_segment.name,
            "capacity_candidates": self.capacity_candidates,
            "capacity_items": self.capacity_items,
        }

    def close(self) -> None:
        self.lengths = self.flat = self.results = None
        _unlink_segments(self.owned)
        self.matrix_segment = None
        self.batch_segment = None
        self.results_segment = None
        if self.temp_snapshot is not None:
            try:
                self.temp_snapshot.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
            self.temp_snapshot = None


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------


class ShmShardedCounter(ShardedCounter):
    """The ``shm`` engine: sharded counting over one shared index.

    Inherits the whole pipe-plane machinery of :class:`ShardedCounter`
    as its third fallback rung; everything above it replaces per-worker
    index builds and pickled batches with shared-memory attaches.

    Parameters match :class:`ShardedCounter`, plus:

    steal_chunk:
        Candidate-mode work-stealing chunk size override (default: the
        scheduler picks per pass).
    """

    name = "shm"

    def __init__(
        self,
        num_shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        use_processes: Optional[bool] = None,
        steal_chunk: Optional[int] = None,
    ) -> None:
        super().__init__(
            num_shards=num_shards,
            max_workers=max_workers,
            use_processes=use_processes,
        )
        self._steal_chunk = steal_chunk
        self._plane: Optional[_ShmPlane] = None
        self._parent_index: Optional[PackedBitmapIndex] = None
        self._scheduler: Optional[AdaptiveShardScheduler] = None
        self._finalizer = None
        #: word-aligned matrix column ranges per worker (for recovery)
        self._word_ranges: List[Tuple[int, int]] = []
        #: which rung of the fallback ladder is serving: "shm", "mmap",
        #: "pipe" (inherited worker plane) or "serial"
        self.plane = "unattached"
        #: seconds the most recent attach took (index + publish + spawn)
        self.last_attach_seconds = 0.0
        #: per-worker startup seconds reported at the latest attach
        self.worker_startup_seconds: List[float] = []
        #: scheduler decision of the most recent pass
        self.last_mode: Optional[str] = None
        #: work-stealing accounting (cumulative since attach)
        self.steals = 0
        self.chunks_dispatched = 0

    # ------------------------------------------------------------------
    # attach / detach
    # ------------------------------------------------------------------

    def _attach(self, db) -> None:
        attach_started = time.perf_counter()
        self._detach()
        num_rows = len(db)
        workers = self._num_shards or default_num_shards(
            num_rows, self._max_workers
        )
        workers = max(1, min(workers, num_rows) if num_rows else 1)
        processes = (
            self._use_processes if self._use_processes is not None else workers > 1
        )
        if (
            HAVE_NUMPY
            and _shared_memory is not None
            and processes
            and workers > 1
            # one stall strike steps the ladder below the shared planes;
            # the second (handled by the base class) forces serial
            and self._stall_strikes < 1
            and self._attach_shared(db, workers)
        ):
            self._db_ref = weakref.ref(db)
            self.last_attach_seconds = time.perf_counter() - attach_started
            if self.obs.enabled:
                self.obs.gauge("shard.attach_seconds").set(
                    self.last_attach_seconds
                )
            logger.debug(
                "shm plane up: %s, %d workers, %d words, attach %.4fs "
                "(worker startup max %.4fs)",
                self.plane, workers, self._plane.num_words,
                self.last_attach_seconds,
                max(self.worker_startup_seconds or [0.0]),
            )
            return
        super()._attach(db)  # pipe plane or serial shards
        self.plane = "pipe" if self._connections else "serial"
        self.last_attach_seconds = time.perf_counter() - attach_started

    def _attach_shared(self, db, workers: int) -> bool:
        """Publish the index and spawn attach-only workers; False to fall."""
        index = self._build_parent_index(db)
        matrix = index._matrix
        num_words = index.num_words
        plane: Optional[_ShmPlane] = None
        try:
            plane = _ShmPlane("shm", index.num_rows, num_words)
            segment = _shared_memory.SharedMemory(
                create=True, size=int(matrix.nbytes)
            )
            plane.matrix_segment = segment
            plane.owned.append(segment)
            shared_matrix = _np.ndarray(
                matrix.shape, dtype=_np.uint64, buffer=segment.buf
            )
            shared_matrix[:] = matrix
            del shared_matrix
            matrix_spec = {"plane": "shm", "matrix_name": segment.name}
        except (OSError, ValueError):
            if plane is not None:
                plane.close()
            plane, matrix_spec = self._mmap_fallback(db, index, num_words)
            if plane is None:
                return False
        plane.num_workers = workers
        self._telemetry = self._make_telemetry(workers)
        if not self._spawn_shm_workers(plane, matrix_spec, index, workers):
            plane.close()
            self._close_telemetry()
            return False
        self._plane = plane
        self._parent_index = index
        self._scheduler = AdaptiveShardScheduler(
            workers, chunk=self._steal_chunk
        )
        self.plane = plane.plane
        self.shard_rows = self._slice_rows(index, workers)
        self.steals = 0
        self.chunks_dispatched = 0
        # leak-proofing: unlink whatever is still owned when the counter
        # is garbage-collected or the interpreter exits without close()
        self._finalizer = weakref.finalize(self, _unlink_segments, plane.owned)
        return True

    def _build_parent_index(self, db) -> PackedBitmapIndex:
        """The full vertical index — memory-mapped when a snapshot exists."""
        snapshot_path = getattr(db, "snapshot_path", None)
        if snapshot_path is not None:
            return load_snapshot(snapshot_path).packed_index()
        return PackedBitmapIndex.from_database(db)

    def _mmap_fallback(self, db, index, num_words):
        """Second rung: share the matrix through a snapshot file mmap."""
        try:
            snapshot_path = getattr(db, "snapshot_path", None)
            temp_snapshot = None
            if snapshot_path is not None:
                snap = load_snapshot(snapshot_path)
                if snap.num_partitions > 1:
                    # a v2 partitioned snapshot has no single contiguous
                    # matrix for the workers to window; fall through to a
                    # temp v1 file (the partitioned engine is the plane
                    # that maps v2 files partition by partition)
                    snapshot_path = None
            if snapshot_path is None:
                handle, name = tempfile.mkstemp(
                    prefix="pincer-shm-", suffix=".snap"
                )
                os.close(handle)
                temp_snapshot = Path(name)
                snapshot_database(db, temp_snapshot)
                snapshot_path = temp_snapshot
                snap = load_snapshot(snapshot_path)
            plane = _ShmPlane("mmap", index.num_rows, num_words)
            plane.temp_snapshot = temp_snapshot
            return plane, {
                "plane": "mmap",
                "snapshot_path": str(snapshot_path),
                "matrix_offset": snap.matrix_offset,
            }
        except (OSError, ValueError):  # pragma: no cover - disk exhaustion
            return None, None

    def _slice_rows(self, index, workers: int) -> List[int]:
        rows = []
        for word_lo, word_hi in _word_bounds(index.num_words, workers):
            lo = min(index.num_rows, word_lo * 64)
            hi = min(index.num_rows, word_hi * 64)
            rows.append(hi - lo)
        return rows

    def _spawn_shm_workers(self, plane, matrix_spec, index, workers) -> bool:
        import multiprocessing

        context = multiprocessing.get_context()
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        plane.cursor = context.Value("l", 0)
        untrack = context.get_start_method() != "fork"
        bounds = _word_bounds(index.num_words, workers)
        self._word_ranges = list(bounds)
        processes: List = []
        connections: List = []
        self.worker_startup_seconds = []
        try:
            for worker_id, word_range in enumerate(bounds):
                spec = dict(
                    matrix_spec,
                    shape=(int(index._matrix.shape[0]), index.num_words),
                    num_rows=index.num_rows,
                    word_range=word_range,
                    worker=worker_id,
                    num_workers=workers,
                    untrack=untrack,
                    telemetry=(
                        self._telemetry.worker_spec(worker_id)
                        if self._telemetry is not None
                        else None
                    ),
                )
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_shm_worker,
                    args=(child_end, spec, plane.cursor),
                    daemon=True,
                )
                process.start()
                child_end.close()
                processes.append(process)
                connections.append(parent_end)
            for connection in connections:
                reply = connection.recv()
                if reply[0] != "ready":
                    raise RuntimeError(
                        "shm worker failed to start: %s" % (reply[1],)
                    )
                self.worker_startup_seconds.append(reply[2])
        except (OSError, RuntimeError, EOFError):
            for connection in connections:
                connection.close()
            for process in processes:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=1.0)
            return False
        self._workers = processes
        self._connections = connections
        self.worker_pids = [process.pid for process in processes]
        return True

    def _detach(self) -> None:
        super()._detach()
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._plane is not None:
            self._plane.close()
            self._plane = None
        self._parent_index = None
        self._scheduler = None
        self._word_ranges = []
        self.plane = "unattached"
        self.last_mode = None
        self.worker_startup_seconds = []

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------

    def note_pass_rate(self, rate: Optional[float]) -> None:
        """Miner-observed candidates/second: feeds the mode scheduler."""
        if self._scheduler is not None:
            self._scheduler.note_miner_rate(rate)

    def begin_query(self) -> None:
        """Forget the previous query's miner-fed rate.

        The per-mode throughput EWMAs survive — they measure this
        database on this machine — but the miner rate describes the
        *previous* query's candidate shape and would skew the first-pass
        mode choice of the next one.
        """
        if self._scheduler is not None:
            self._scheduler.reset_query()

    def _count(self, db, candidates: List[Itemset]) -> Dict[Itemset, int]:
        if not self._attached_to(db):
            self._attach(db)
        if self._plane is None:
            return super()._count(db, candidates)
        totals = self._count_shared(candidates)
        self._record_shard_metrics()
        self._finish_pass_after_stalls()
        return dict(zip(candidates, totals))

    def _count_shared(self, candidates: List[Itemset]) -> List[int]:
        plane = self._plane
        index = self._parent_index
        n = len(candidates)
        lengths, flat_rows = index.map_candidates(candidates)
        plane.ensure_capacity(n, len(flat_rows))
        plane.lengths[:n] = lengths
        plane.flat[: len(flat_rows)] = flat_rows
        mode, chunk = self._scheduler.choose(n, plane.num_rows)
        self.last_mode = mode
        task = plane.task_header()
        task.update(
            n=n, flat_len=len(flat_rows), mode=mode, chunk=chunk,
            num_workers=plane.num_workers,
        )
        if self._telemetry is not None:
            self._telemetry.begin_pass(self.passes, n, mode)
        pass_started = time.perf_counter()
        self.last_shard_seconds = [0.0] * len(self._connections)
        self.last_shard_cpu_seconds = [0.0] * len(self._connections)
        self.last_shard_maxrss_kb = [0] * len(self._connections)
        dead: set = set()
        metas: List[Dict] = []
        while True:
            live = [
                shard
                for shard in range(len(self._connections))
                if shard not in dead
            ]
            if mode == "candidates":
                # stealing writes are scattered over every row, so each
                # (re)attempt starts from zero; a retry after a stall
                # recounts the full batch on the surviving workers —
                # counts_into is a pure function of the shared matrix, so
                # the recount is byte-identical to an undisturbed pass.
                # The reset writes the raw ctypes object: no worker is
                # mid-claim here, and a stalled worker may have died
                # holding the cursor's lock
                plane.results[:, :n] = 0
                plane.cursor.get_obj().value = 0
            if not live:
                self._parent_recount_all(task)
                break
            sent: List[int] = []
            recovered: List[Dict] = []
            for shard in live:
                try:
                    self._connections[shard].send(task)
                    sent.append(shard)
                except (BrokenPipeError, OSError):
                    if self._telemetry is None:
                        self._detach()
                        raise RuntimeError(
                            "shm worker died mid-pass"
                        ) from None
                    # the worker died before this pass even reached it:
                    # retire it now — rows mode recounts its word slice
                    # in the parent, candidates mode lets the survivors
                    # steal its share off the cursor
                    self._retire_shm_worker(shard, dead)
                    if mode == "rows":
                        recovered.append(self._recover_shm_rows(shard, task))
            if not sent:
                self._parent_recount_all(task)
                break
            metas, retry = self._collect_replies(task, sent, dead)
            metas.extend(recovered)
            if not retry:
                break
        seconds = time.perf_counter() - pass_started
        self._scheduler.observe(mode, n, seconds)
        if mode == "candidates":
            self.records_read += plane.num_rows
            total_chunks = (n + chunk - 1) // chunk
            self.chunks_dispatched += total_chunks
            fair_share = -(-total_chunks // plane.num_workers)
            steals = sum(
                max(0, meta["chunks_taken"] - fair_share) for meta in metas
            )
            self.steals += steals
        else:
            steals = 0
        totals = plane.results[: plane.num_workers, :n].sum(
            axis=0, dtype=_np.int64
        )
        if self._telemetry is not None:
            self._telemetry.end_pass(n)
        if self.obs.enabled:
            self.obs.counter("scheduler.mode.%s" % mode).inc()
            self.obs.counter("shard.steals").inc(steals)
            hits = sum(meta["prefix_hits"] for meta in metas)
            misses = sum(meta["prefix_misses"] for meta in metas)
            self.obs.counter("prefix_cache.hits").inc(hits)
            self.obs.counter("prefix_cache.misses").inc(misses)
        return totals.tolist()

    def _collect_replies(
        self,
        task: Optional[Dict] = None,
        live: Optional[List[int]] = None,
        dead: Optional[set] = None,
    ) -> Tuple[List[Dict], bool]:
        """Deadline- and stall-aware reply collection.

        Returns ``(metas, retry)``.  ``retry`` is True only when a
        candidates-mode worker stalled: its chunk claims are
        unrecoverable (the shared cursor already moved past them), so
        the caller must zero the results and re-run the task on the
        surviving workers.  Rows-mode stalls are absorbed here — the
        parent recounts the stalled worker's word slice into that
        worker's result row, which no other process writes.
        """
        if live is None:
            live = list(range(len(self._connections)))
        if dead is None:
            dead = set()
        mode = task["mode"] if task is not None else "rows"
        telemetry = self._telemetry
        metas: List[Optional[Dict]] = [None] * len(self._connections)
        pending = set(live)
        retry = False
        while pending:
            try:
                self._check_deadline()
            except Exception:
                # pending replies would poison the next pass: drop the
                # plane; the next count() re-attaches cleanly
                self._detach()
                raise
            if telemetry is not None:
                telemetry.poll()
                for event in telemetry.check_stalls(
                    pending, alive=self._worker_alive
                ):
                    if event.shard not in pending:
                        continue
                    pending.discard(event.shard)
                    self._retire_shm_worker(event.shard, dead)
                    if mode == "rows" and task is not None:
                        metas[event.shard] = self._recover_shm_rows(
                            event.shard, task
                        )
                    else:
                        retry = True
            for shard in sorted(pending):
                connection = self._connections[shard]
                try:
                    if not connection.poll(0.01):
                        continue
                    reply = connection.recv()
                except (EOFError, OSError):
                    if telemetry is not None and task is not None:
                        # raced the watchdog to a dead worker: same
                        # recovery, different messenger
                        pending.discard(shard)
                        self._retire_shm_worker(shard, dead)
                        if mode == "rows":
                            metas[shard] = self._recover_shm_rows(shard, task)
                        else:
                            retry = True
                        continue
                    self._detach()
                    raise RuntimeError(
                        "shm worker %d died mid-pass" % shard
                    ) from None
                if reply[0] != "done":
                    self._detach()
                    raise RuntimeError(
                        "shm worker %d failed: %s" % (shard, reply[1])
                    )
                meta = reply[1]
                metas[shard] = meta
                self.records_read += meta["records_read"]
                self.last_shard_seconds[shard] = meta["seconds"]
                self.last_shard_cpu_seconds[shard] = meta["cpu_seconds"]
                self.last_shard_maxrss_kb[shard] = meta["maxrss_kb"]
                pending.discard(shard)
        return [meta for meta in metas if meta is not None], retry

    # ------------------------------------------------------------------
    # stall recovery
    # ------------------------------------------------------------------

    def _retire_shm_worker(self, shard: int, dead: set) -> None:
        """SIGKILL a stalled worker and take the stall strike."""
        dead.add(shard)
        worker = self._workers[shard]
        worker.kill()
        worker.join(timeout=2.0)
        if self._telemetry is not None:
            # no-op if the watchdog already flagged this stall; covers
            # deaths the pipe announced first (send/recv races)
            self._telemetry.note_worker_dead(shard)
        self.shards_reassigned += 1
        self._stall_strikes += 1
        self._needs_reattach = True
        if self.obs.enabled:
            self.obs.counter("telemetry.shards_reassigned").inc()

    def _recover_shm_rows(self, shard: int, task: Dict) -> Dict:
        """Recount a stalled worker's word slice into its result row.

        The worker is already dead (SIGKILL), the row belongs to it
        alone, and ``counts_into`` writes only ``out[lo:hi)`` — zeroing
        the row first makes the parent's recount byte-identical to what
        an undisturbed worker would have produced, even over a partial
        write the victim left behind.
        """
        plane = self._plane
        n = task["n"]
        word_lo, word_hi = self._word_ranges[shard]
        slice_index = self._parent_index.word_slice(word_lo, word_hi)
        out = plane.results[shard]
        out[:n] = 0
        started = time.perf_counter()
        cpu_started = time.process_time()
        if n:
            slice_index.counts_into(
                plane.lengths[:n],
                plane.flat[: task["flat_len"]],
                out,
                0,
                n,
                deadline_check=self._check_deadline,
            )
        meta = {
            "records_read": slice_index.num_rows,
            "seconds": time.perf_counter() - started,
            "cpu_seconds": time.process_time() - cpu_started,
            "maxrss_kb": rusage_snapshot().get("maxrss_kb", 0),
            "chunks_taken": 0,
            "prefix_hits": 0,
            "prefix_misses": 0,
        }
        self.records_read += meta["records_read"]
        self.last_shard_seconds[shard] += meta["seconds"]
        self.last_shard_cpu_seconds[shard] += meta["cpu_seconds"]
        self.last_shard_maxrss_kb[shard] = max(
            self.last_shard_maxrss_kb[shard], meta["maxrss_kb"]
        )
        logger.warning(
            "shard %d word slice [%d, %d) recounted by the parent (%.3fs)",
            shard, word_lo, word_hi, meta["seconds"],
        )
        return meta

    def _parent_recount_all(self, task: Dict) -> None:
        """Last resort: every worker stalled — the parent counts alone.

        Every result row is zeroed first (no worker is left alive to
        race the writes): rows mode leaves the previous pass's counts in
        dead workers' rows, and the column sum must see only row 0.
        """
        plane = self._plane
        n = task["n"]
        logger.warning(
            "all %d shm workers stalled; parent counting the batch alone",
            len(self._connections),
        )
        plane.results[:, :n] = 0
        if n:
            self._parent_index.counts_into(
                plane.lengths[:n],
                plane.flat[: task["flat_len"]],
                plane.results[0],
                0,
                n,
                deadline_check=self._check_deadline,
            )
