"""Compressed counting tier: roaring-style hybrid bitmap containers.

The ``packed`` engine (:mod:`repro.db.vertical`) spends its wall time on
AND + popcount over dense ``uint64`` rows — every candidate pays for the
*whole* transaction dimension even when the items involved occur in a
tiny fraction of it.  Real basket data is dominated by exactly those
sparse low-support items, so this module stores each item's vertical
bitmap as a *hybrid container index* in the style of Roaring bitmaps
(Chambi et al.): the row space is cut into 2^16-row chunks, and each
column picks the cheapest of three container forms for its payload —
sized in bytes exactly like roaring's array/bitmap/run decision:

``array``
    A sorted vector of row positions — the form for sparse columns.
    Intersections become one vectorized ``searchsorted`` membership
    test of the smaller side against the larger: O(|small| log |big|)
    C work with *constant* interpreter overhead, however many chunks
    the column spans.
``bitmap``
    Packed ``uint64`` words covering only the column's *occupied
    chunk-aligned span* — chunks before the first and past the last set
    bit are never stored, and an AND of two bitmap containers touches
    only the chunks in the overlap of both spans.
``run``
    Sorted ``[start, stop)`` intervals — the clustered form (a column
    set in one contiguous stretch of transactions costs 16 bytes).

The fused intersect+popcount dispatches on the container pair:
array∧array is a ``searchsorted`` probe, array∧bitmap a word
gather-and-test, bitmap∧bitmap a word AND over the span overlap (zero
work when the spans are disjoint — the absent chunks are skipped
wholesale), array∧run an interval ``searchsorted``.
Support counting walks the sorted candidate stream with the same
prefix-sharing discipline as :class:`~repro.db.vertical.PrefixIntersector`
and *fuses* the final AND with the popcount — when the next candidate
does not extend the current one, the last intersection is answered as a
cardinality directly, never materialising the result.

:class:`RoaringCounter` is the engine facade registered as ``roaring``.
It resolves one rung of the fallback ladder per database at index-build
time, from measured column density:

``roaring``
    The NumPy hybrid container index above — sparse data, NumPy present.
``packed``
    :class:`~repro.db.vertical.PackedBitmapIndex` — dense data (the
    containers would all degenerate to bitmap form, so the flat matrix
    and its vectorized batch kernel win); compression would not pay.
``bitmap``
    A pure-Python chunked-int index — no NumPy, sparse data: one Python
    int bitmap per *occupied* chunk, so absent-chunk skipping survives
    the loss of vectorization.
``python``
    :class:`~repro.db.vertical.IntBitmapIndex` — no NumPy, dense data.

Every rung returns byte-identical counts (the differential suite in
``tests/test_roaring.py`` and the bench-regress sentinel both pin this),
so the ladder is a pure performance decision, like the shm engine's
shm → mmap → pipe → serial ladder.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .._types import Itemset
from .base import SupportCounter
from .vertical import (
    HAVE_NUMPY,
    IntBitmapIndex,
    PackedBitmapIndex,
    popcount,
    _int_bitmaps,
)

try:  # NumPy is optional; the pure-Python rungs cover its absence.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via no-NumPy CI cell
    _np = None

__all__ = [
    "ARRAY_MAX",
    "CHUNK_SIZE",
    "ChunkedIntIndex",
    "RoaringCounter",
    "RoaringIndex",
    "TIER_LADDER",
    "measure_density",
]

#: Rows per chunk — the roaring convention: the low 16 bits of a row id
#: address within a chunk, the high bits select it.
CHUNK_BITS = 16
CHUNK_SIZE = 1 << CHUNK_BITS
#: uint64 words per bitmap container.
CHUNK_WORDS = CHUNK_SIZE // 64
#: Cardinality below which a materialised intersection converts back to
#: array form (roaring's array/bitmap flip point: 4096 entries).
ARRAY_MAX = 4096

#: The fallback ladder, best rung first.
TIER_LADDER = ("roaring", "packed", "bitmap", "python")

#: Mean column density above which compression stops paying and the
#: engine drops to the flat packed/int representation.
DENSE_CUTOFF = 0.10

#: Item-steps between deadline checks in the container walk (matches the
#: work-budget cadence of the packed path).
_DEADLINE_WORK = 4096


def measure_density(db) -> Dict[str, float]:
    """Cheap density evidence for a database: one pass over the counts.

    Returns a JSON-ready dict with the structural facts the tier choice
    (and :func:`repro.db.counting.engine_decision`) keys on:

    ``rows``/``items``/``nnz``
        shape and total set bits of the vertical view;
    ``density``
        mean column density ``nnz / (rows * items)``;
    ``max_item_density``
        density of the most frequent item (skew witness);
    ``sparse_item_fraction``
        fraction of items that would build array containers
        (support <= ARRAY_MAX per chunk on average).
    """
    rows = len(db)
    counts = db.item_support_counts()
    items = len(counts)
    nnz = sum(counts.values())
    cells = rows * items
    chunks = max(1, (rows + CHUNK_SIZE - 1) // CHUNK_SIZE)
    sparse_cut = ARRAY_MAX * chunks
    return {
        "rows": rows,
        "items": items,
        "nnz": nnz,
        "density": (nnz / cells) if cells else 0.0,
        "max_item_density": (
            max(counts.values()) / rows if counts and rows else 0.0
        ),
        "sparse_item_fraction": (
            sum(1 for value in counts.values() if value <= sparse_cut) / items
            if items
            else 0.0
        ),
    }


# ----------------------------------------------------------------------
# NumPy containers
# ----------------------------------------------------------------------

if _np is not None:

    from .vertical import _popcount_words

    _ONES = _np.uint64(0xFFFFFFFFFFFFFFFF)

    class _Sparse:
        """Sorted int64 row positions of a whole column (array form).

        One flat array per column keeps the interpreter overhead of an
        intersection *constant* — a single vectorized ``searchsorted``
        probe — no matter how many 2^16-row chunks the column spans.
        """

        __slots__ = ("positions",)
        kind = "array"

        def __init__(self, positions) -> None:
            self.positions = positions

        @property
        def card(self) -> int:
            return int(self.positions.shape[0])

    class _Dense:
        """Packed uint64 words over the column's occupied word span.

        ``offset`` is the span's first word index; words before it and
        past the end are implicitly zero and never stored, so an AND of
        two dense containers slices only the overlap of both spans.
        """

        __slots__ = ("offset", "words", "card")
        kind = "bitmap"

        def __init__(self, offset: int, words, card: int) -> None:
            self.offset = offset
            self.words = words
            self.card = card

    class _Run:
        """Sorted, disjoint ``[start, stop)`` int64 intervals (run form).

        Run-vs-bitmap intersections expand to dense words lazily, once,
        and cache the expansion — runs are chosen only when there are
        very few of them, so the expansion is cheap and rare.
        """

        __slots__ = ("runs", "card", "_dense")
        kind = "run"

        def __init__(self, runs, card: int) -> None:
            self.runs = runs
            self.card = card
            self._dense = None

        def dense(self) -> "_Dense":
            if self._dense is None:
                runs = self.runs
                lo = int(runs[0, 0]) >> 6
                hi = ((int(runs[-1, 1]) - 1) >> 6) + 1
                words = _np.zeros(hi - lo, dtype=_np.uint64)
                for start, stop in runs.tolist():
                    first = (start >> 6) - lo
                    last = ((stop - 1) >> 6) - lo
                    head = _ONES << _np.uint64(start & 63)
                    tail = _ONES >> _np.uint64(63 - ((stop - 1) & 63))
                    if first == last:
                        words[first] |= head & tail
                    else:
                        words[first] |= head
                        words[first + 1 : last] = _ONES
                        words[last] |= tail
                self._dense = _Dense(lo, words, self.card)
            return self._dense

    def _probe_sparse(positions, other):
        """Bool mask: which sorted ``positions`` are set in ``other``.

        The sparse probe needs no bounds mask: ``take(mode="clip")``
        clips an off-the-end index to the last element, which compares
        unequal by construction (the probed value is larger than it).
        """
        if type(other) is _Sparse:
            theirs = other.positions
            got = theirs.take(
                _np.searchsorted(theirs, positions), mode="clip"
            )
            return got == positions
        if type(other) is _Dense:
            bits = _gather_bits(positions, other)
            if type(bits) is tuple:
                valid, bits = bits
                return valid & (bits != 0)
            return bits != 0
        runs = other.runs
        idx = _np.searchsorted(runs[:, 0], positions, side="right") - 1
        stops = runs[:, 1].take(_np.maximum(idx, 0))
        return (idx >= 0) & (positions < stops)

    def _gather_bits(positions, dense):
        """Per-position bit values gathered from a dense container.

        Returns an int array of 0/1 values — or, when some positions
        fall outside the container's span, a ``(valid, bits)`` pair.
        The common case (a span covering the whole probe range) skips
        the bounds arithmetic entirely: one gather, one shift, one mask.
        """
        word_index = (positions >> 6) - dense.offset
        # uint64 words viewed as int64: arithmetic shift differs from
        # logical only in the bits above the one ``& 1`` keeps
        if dense.offset == 0 and (
            int(positions[-1]) >> 6
        ) < dense.words.shape[0]:
            gathered = dense.words.take(word_index).view(_np.int64)
            return (gathered >> (positions & 63)) & 1
        valid = (word_index >= 0) & (word_index < dense.words.shape[0])
        gathered = dense.words.take(word_index, mode="clip").view(_np.int64)
        return valid, (gathered >> (positions & 63)) & 1

    def _probe_count(positions, other) -> int:
        """How many sorted ``positions`` are set in ``other`` (fused)."""
        if type(other) is _Sparse:
            theirs = other.positions
            got = theirs.take(
                _np.searchsorted(theirs, positions), mode="clip"
            )
            return int(_np.count_nonzero(got == positions))
        if type(other) is _Dense:
            bits = _gather_bits(positions, other)
            if type(bits) is tuple:
                valid, bits = bits
                return int(_np.count_nonzero(valid & (bits != 0)))
            return int(_np.count_nonzero(bits))
        return int(_np.count_nonzero(_probe_sparse(positions, other)))

    def _run_intersect(runs_a, runs_b):
        """Interval-merge intersection of two run lists (None when empty)."""
        list_a = runs_a.tolist()
        list_b = runs_b.tolist()
        out: List[Tuple[int, int]] = []
        card = 0
        i = j = 0
        while i < len(list_a) and j < len(list_b):
            start = max(list_a[i][0], list_b[j][0])
            stop = min(list_a[i][1], list_b[j][1])
            if start < stop:
                out.append((start, stop))
                card += stop - start
            if list_a[i][1] <= list_b[j][1]:
                i += 1
            else:
                j += 1
        if not out:
            return None
        return _np.array(out, dtype=_np.int64), card

    def _dense_overlap(a, b):
        """Word slices of two dense containers over their span overlap."""
        lo = max(a.offset, b.offset)
        hi = min(a.offset + a.words.shape[0], b.offset + b.words.shape[0])
        if hi <= lo:
            return None
        return (
            lo,
            a.words[lo - a.offset : hi - a.offset],
            b.words[lo - b.offset : hi - b.offset],
        )

    def _col_and(a, b):
        """Fully-materialised column intersection (None when empty)."""
        ta, tb = type(a), type(b)
        if ta is _Sparse or tb is _Sparse:
            # probe the smaller sparse side: O(|small| log |big|)
            if ta is not _Sparse or (tb is _Sparse and b.card < a.card):
                a, b = b, a
            kept = a.positions[_probe_sparse(a.positions, b)]
            if not kept.shape[0]:
                return None
            return _Sparse(kept)
        if ta is _Run and tb is _Run:
            merged = _run_intersect(a.runs, b.runs)
            if merged is None:
                return None
            return _Run(*merged)
        if ta is _Run:
            a = a.dense()
        if tb is _Run:
            b = b.dense()
        overlap = _dense_overlap(a, b)
        if overlap is None:
            return None
        lo, words_a, words_b = overlap
        words = _np.bitwise_and(words_a, words_b)
        card = int(_popcount_words(words[None, :])[0])
        if card == 0:
            return None
        if card <= words.shape[0]:
            # same byte rule as the build (8*card vs 8*words): sparse is
            # now the cheaper form, and later fused ops against this
            # intersection become array probes instead of word ANDs
            bits = _np.unpackbits(words.view(_np.uint8), bitorder="little")
            return _Sparse(_np.nonzero(bits)[0] + lo * 64)
        return _Dense(lo, words, card)

    def _col_and_card(a, b) -> int:
        """Fused intersect+popcount: cardinality without materialising."""
        ta, tb = type(a), type(b)
        if ta is _Sparse or tb is _Sparse:
            if ta is not _Sparse or (tb is _Sparse and b.card < a.card):
                a, b = b, a
            return _probe_count(a.positions, b)
        if ta is _Run:
            if tb is _Run:
                merged = _run_intersect(a.runs, b.runs)
                return 0 if merged is None else merged[1]
            a = a.dense()
        if tb is _Run:
            b = b.dense()
        overlap = _dense_overlap(a, b)
        if overlap is None:
            return 0
        _, words_a, words_b = overlap
        return int(
            _popcount_words(_np.bitwise_and(words_a, words_b)[None, :])[0]
        )


class RoaringIndex:
    """Hybrid container index over one database's vertical view.

    Same ``counts`` contract as :class:`~repro.db.vertical.PackedBitmapIndex`
    (including the ``prefix_hits``/``prefix_misses`` accounting), but the
    candidate walk is container-native: sorted stream, longest-shared-
    prefix memo, fused final AND+popcount, absent-chunk skipping.
    """

    def __init__(self, columns: Dict[int, object], num_rows: int) -> None:
        self._columns = columns
        self._num_rows = num_rows
        self.prefix_hits = 0
        self.prefix_misses = 0

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @classmethod
    def from_bitmaps(
        cls, bitmaps: Dict[int, int], num_rows: int
    ) -> "RoaringIndex":
        columns: Dict[int, object] = {}
        for item, value in bitmaps.items():
            container = cls._build_column(value, num_rows)
            if container is not None:  # empty columns: lookup miss = 0
                columns[item] = container
        return cls(columns, num_rows)

    @classmethod
    def from_transactions(
        cls,
        transactions: Sequence[Iterable[int]],
        universe: Optional[Iterable[int]] = None,
    ) -> "RoaringIndex":
        transactions = list(transactions)
        return cls.from_bitmaps(
            _int_bitmaps(transactions, universe), len(transactions)
        )

    @classmethod
    def from_database(cls, db) -> "RoaringIndex":
        return cls.from_bitmaps(dict(db.item_bitmaps()), len(db))

    @staticmethod
    def _build_column(value: int, num_rows: int):
        """Cheapest whole-column container for one item's bitmap.

        Byte costs: array ``8*card``, run ``16*runs``, bitmap ``8*words``
        over the occupied chunk-aligned span; ties prefer the array form
        (its probe is the cheapest intersection).  Empty columns return
        ``None`` and are not stored at all.
        """
        if not value:
            return None
        data = value.to_bytes((num_rows + 7) // 8 or 1, "little")
        data += b"\x00" * (-len(data) % 8)
        # the whole container decision runs at word level — positions are
        # unpacked only if the array/run form actually wins, so a dense
        # column never pays for bit unpacking at all
        words_all = _np.frombuffer(data, dtype=_np.uint64)
        occupied = _np.flatnonzero(words_all)
        occ_vals = words_all.take(occupied)
        card = int(_popcount_words(occ_vals[None, :])[0])
        # run count without positions: a run of L set bits contains L-1
        # adjacent pairs, so num_runs = card - pairs (pairs inside a word
        # via w & (w >> 1); pairs straddling consecutive words via the
        # high bit of one and the low bit of the next)
        pairs = int(
            _popcount_words(
                (occ_vals & (occ_vals >> _np.uint64(1)))[None, :]
            )[0]
        )
        if occupied.shape[0] > 1:
            adjacent = occupied[1:] == occupied[:-1] + 1
            straddle = (
                (occ_vals[:-1] >> _np.uint64(63)) & occ_vals[1:]
            ) & _np.uint64(1)
            pairs += int(_np.count_nonzero(adjacent & (straddle != 0)))
        chunk_bytes = CHUNK_SIZE // 8
        first_chunk = int(occupied[0]) // CHUNK_WORDS
        last_chunk = int(occupied[-1]) // CHUNK_WORDS
        lo_byte = first_chunk * chunk_bytes
        hi_byte = min(len(data), (last_chunk + 1) * chunk_bytes)
        sparse_bytes = 8 * card
        run_bytes = 16 * (card - pairs)
        dense_bytes = 8 * ((hi_byte - lo_byte + 7) // 8)
        if min(sparse_bytes, run_bytes) <= dense_bytes:
            bits = _np.unpackbits(occ_vals.view(_np.uint8), bitorder="little")
            flat = _np.flatnonzero(bits)
            positions = occupied.take(flat >> 6) * 64 + (flat & 63)
            if sparse_bytes <= run_bytes:
                return _Sparse(positions)
            breaks = _np.flatnonzero(_np.diff(positions) > 1)
            starts = _np.concatenate(([positions[0]], positions[breaks + 1]))
            stops = _np.concatenate((positions[breaks], [positions[-1]])) + 1
            return _Run(_np.stack([starts, stops], axis=1), card)
        piece = data[lo_byte:hi_byte]
        piece += b"\x00" * (-len(piece) % 8)
        words = _np.frombuffer(piece, dtype=_np.uint8).view(_np.uint64).copy()
        return _Dense(first_chunk * CHUNK_WORDS, words, card)

    # ------------------------------------------------------------------

    def container_counts(self) -> Dict[str, int]:
        """How many columns each container kind is serving."""
        tally = {"array": 0, "bitmap": 0, "run": 0}
        for container in self._columns.values():
            tally[container.kind] += 1
        return tally

    def compressed_bytes(self) -> int:
        """Payload bytes of every container (the compression numerator)."""
        total = 0
        for container in self._columns.values():
            if container.kind == "array":
                total += 8 * container.card
            elif container.kind == "bitmap":
                total += 8 * int(container.words.shape[0])
            else:
                total += 16 * int(container.runs.shape[0])
        return total

    def dense_bytes(self) -> int:
        """What the flat packed matrix would spend on the same view."""
        num_words = max(1, (self._num_rows + 63) // 64)
        return len(self._columns) * num_words * 8

    def density(self) -> float:
        cells = len(self._columns) * self._num_rows
        if not cells:
            return 0.0
        return sum(c.card for c in self._columns.values()) / cells

    def counts(
        self,
        candidates: Sequence[Itemset],
        deadline_check: Optional[Callable[[], None]] = None,
        chunk_size: Optional[int] = None,
    ) -> List[int]:
        walk = _PrefixWalk(
            self._columns.get, _col_and, _col_and_card, self._num_rows
        )
        results = walk.counts(candidates, deadline_check)
        self.prefix_hits += walk.hits
        self.prefix_misses += walk.misses
        return results


class _PrefixWalk:
    """Sorted-candidate walk with a prefix memo and a fused last AND.

    Generic over the column type: ``and_full(a, b)`` materialises an
    intersection (must allocate — column objects are borrowed by the
    memo), ``and_card(a, b)`` answers only the cardinality.  Columns need
    a ``card`` attribute.  The memo is the same stack discipline as
    :class:`~repro.db.vertical.PrefixIntersector`; the fusion looks one
    candidate ahead in the sorted order — only when the next candidate
    *extends* the current one is the final intersection materialised for
    reuse, otherwise it is answered as a count directly.
    """

    def __init__(self, lookup, and_full, and_card, num_rows: int) -> None:
        self._lookup = lookup
        self._and_full = and_full
        self._and_card = and_card
        self._num_rows = num_rows
        self.hits = 0
        self.misses = 0

    def counts(
        self,
        candidates: Sequence[Itemset],
        deadline_check: Optional[Callable[[], None]] = None,
    ) -> List[int]:
        total = len(candidates)
        results = [0] * total
        order = sorted(range(total), key=lambda i: candidates[i])
        stack_items: List[int] = []
        stack_values: List[Optional[object]] = []  # None = no survivors
        work = 0
        for step, position in enumerate(order):
            candidate = candidates[position]
            length = len(candidate)
            if length == 0:
                results[position] = self._num_rows
                continue
            shared = 0
            limit = min(len(stack_items), length)
            while shared < limit and stack_items[shared] == candidate[shared]:
                shared += 1
            # a fused-away level holds no bitmap to extend or read — step
            # back below it so the walk recomputes that level (duplicates)
            while shared and stack_values[shared - 1] is _UNMATERIALIZED:
                shared -= 1
            del stack_items[shared:]
            del stack_values[shared:]
            self.hits += shared
            self.misses += length - shared
            successor = (
                candidates[order[step + 1]] if step + 1 < total else None
            )
            extends = (
                successor is not None
                and len(successor) > length
                and successor[:length] == candidate
            )
            value = stack_values[shared - 1] if shared else _TOP
            count: Optional[int] = None
            for depth in range(shared, length):
                work += 1
                if deadline_check is not None and work >= _DEADLINE_WORK:
                    work = 0
                    deadline_check()
                item = candidate[depth]
                last = depth == length - 1
                if value is None:
                    stack_items.append(item)
                    stack_values.append(None)
                    continue
                column = self._lookup(item)
                if column is None:
                    value = None
                elif value is _TOP:
                    value = column  # borrowed: and_full always allocates
                elif last and not extends:
                    # fused intersect+popcount: nothing downstream reuses
                    # this intersection, so never materialise it
                    count = self._and_card(value, column)
                    value = _UNMATERIALIZED
                else:
                    value = self._and_full(value, column)
                stack_items.append(item)
                stack_values.append(value)
            tail = stack_values[-1] if stack_values else _TOP
            if count is not None:
                results[position] = count
            elif tail is None:
                results[position] = 0
            elif tail is _TOP:
                results[position] = self._num_rows
            else:
                results[position] = tail.card
        return results


#: Sentinel for the empty prefix ("all rows").
_TOP = object()


class _Unmaterialized:
    """Placeholder for a fused-away intersection (count answered already).

    It can only be observed by an immediately following *duplicate*
    candidate (a duplicate shares every item but the memo holds no
    bitmap for the last level); re-deriving from the shorter prefix is
    what the stack discipline does anyway, so ``card`` is never read.
    """

    card = None


_UNMATERIALIZED = _Unmaterialized()


# ----------------------------------------------------------------------
# pure-Python chunked tier (the ladder's "bitmap" rung)
# ----------------------------------------------------------------------


class _IntVector:
    """Chunked arbitrary-precision bitmaps: chunk id -> non-zero int."""

    __slots__ = ("chunks", "_card")

    def __init__(self, chunks: Dict[int, int], card: Optional[int] = None) -> None:
        self.chunks = chunks
        self._card = card

    @property
    def card(self) -> int:
        if self._card is None:
            self._card = sum(popcount(value) for value in self.chunks.values())
        return self._card

    def and_vector(self, other: "_IntVector") -> "_IntVector":
        mine, theirs = self.chunks, other.chunks
        if len(theirs) < len(mine):
            mine, theirs = theirs, mine
        out: Dict[int, int] = {}
        for key, value in mine.items():
            peer = theirs.get(key)
            if peer is not None:
                combined = value & peer
                if combined:
                    out[key] = combined
        return _IntVector(out)

    def and_card(self, other: "_IntVector") -> int:
        mine, theirs = self.chunks, other.chunks
        if len(theirs) < len(mine):
            mine, theirs = theirs, mine
        total = 0
        for key, value in mine.items():
            peer = theirs.get(key)
            if peer is not None:
                total += popcount(value & peer)
        return total


class ChunkedIntIndex:
    """Pure-Python twin of :class:`RoaringIndex` (chunked int bitmaps).

    Keeps the absent-chunk skipping — the part of the compressed tier
    that survives without NumPy — while every per-chunk AND/popcount
    stays a C-level big-int operation.
    """

    def __init__(self, columns: Dict[int, _IntVector], num_rows: int) -> None:
        self._columns = columns
        self._num_rows = num_rows
        self.prefix_hits = 0
        self.prefix_misses = 0

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @classmethod
    def from_bitmaps(
        cls, bitmaps: Dict[int, int], num_rows: int
    ) -> "ChunkedIntIndex":
        mask = (1 << CHUNK_SIZE) - 1
        columns: Dict[int, _IntVector] = {}
        for item, value in bitmaps.items():
            chunks: Dict[int, int] = {}
            index = 0
            while value:
                piece = value & mask
                if piece:
                    chunks[index] = piece
                value >>= CHUNK_SIZE
                index += 1
            columns[item] = _IntVector(chunks)
        return cls(columns, num_rows)

    @classmethod
    def from_transactions(
        cls,
        transactions: Sequence[Iterable[int]],
        universe: Optional[Iterable[int]] = None,
    ) -> "ChunkedIntIndex":
        transactions = list(transactions)
        return cls.from_bitmaps(
            _int_bitmaps(transactions, universe), len(transactions)
        )

    @classmethod
    def from_database(cls, db) -> "ChunkedIntIndex":
        return cls.from_bitmaps(dict(db.item_bitmaps()), len(db))

    def counts(
        self,
        candidates: Sequence[Itemset],
        deadline_check: Optional[Callable[[], None]] = None,
        chunk_size: Optional[int] = None,
    ) -> List[int]:
        walk = _PrefixWalk(
            self._columns.get,
            lambda a, b: a.and_vector(b),
            lambda a, b: a.and_card(b),
            self._num_rows,
        )
        results = walk.counts(candidates, deadline_check)
        self.prefix_hits += walk.hits
        self.prefix_misses += walk.misses
        return results


# ----------------------------------------------------------------------
# the engine facade
# ----------------------------------------------------------------------


class RoaringCounter(SupportCounter):
    """The ``roaring`` engine: compressed counting with a fallback ladder.

    The rung is picked per database at index-build time from measured
    column density (:data:`DENSE_CUTOFF`) and NumPy availability, and is
    reported as :attr:`tier` plus ``engine.roaring.*`` metrics.
    ``force_tier`` pins a rung for differential tests; a forced rung
    whose prerequisites are missing (NumPy-backed rungs on a bare
    interpreter) steps down the ladder exactly like the shm engine does.
    """

    name = "roaring"

    def __init__(
        self,
        force_tier: Optional[str] = None,
        dense_cutoff: float = DENSE_CUTOFF,
    ) -> None:
        super().__init__()
        if force_tier is not None and force_tier not in TIER_LADDER:
            raise ValueError(
                "unknown roaring tier %r (choose from %s)"
                % (force_tier, ", ".join(TIER_LADDER))
            )
        self._force_tier = force_tier
        self._dense_cutoff = dense_cutoff
        self._index = None
        self._index_db = None
        #: the ladder rung serving the current database (None until built)
        self.tier: Optional[str] = None
        #: mean column density measured at the last index build
        self.density: float = 0.0
        self.prefix_cache_hits = 0
        self.prefix_cache_misses = 0

    # ------------------------------------------------------------------

    def _resolve_tier(self, density: float) -> str:
        if self._force_tier is not None:
            tier = self._force_tier
            if not HAVE_NUMPY and tier in ("roaring", "packed"):
                # step down the ladder to the pure-Python twin rung
                tier = "bitmap" if tier == "roaring" else "python"
            return tier
        if HAVE_NUMPY:
            return "roaring" if density <= self._dense_cutoff else "packed"
        return "bitmap" if density <= self._dense_cutoff else "python"

    @staticmethod
    def _build_index(tier: str, bitmaps: Dict[int, int], num_rows: int):
        if tier == "roaring":
            return RoaringIndex.from_bitmaps(bitmaps, num_rows)
        if tier == "packed":
            return PackedBitmapIndex.from_bitmaps(bitmaps, num_rows)
        if tier == "bitmap":
            return ChunkedIntIndex.from_bitmaps(bitmaps, num_rows)
        return IntBitmapIndex.from_bitmaps(bitmaps, num_rows)

    def _index_for(self, db):
        if (
            self._index is None
            or self._index_db is None
            or self._index_db() is not db
        ):
            bitmaps = db.item_bitmaps()
            num_rows = len(db)
            cells = len(bitmaps) * num_rows
            density = (
                sum(popcount(value) for value in bitmaps.values()) / cells
                if cells
                else 0.0
            )
            tier = self._resolve_tier(density)
            self._index = self._build_index(tier, bitmaps, num_rows)
            self._index_db = weakref.ref(db)
            self.tier = tier
            self.density = density
            if self.obs.enabled:
                self.obs.counter("engine.roaring.tier.%s" % tier).inc()
                self.obs.gauge("engine.roaring.density").set(density)
                if isinstance(self._index, RoaringIndex):
                    mix = self._index.container_counts()
                    for kind, value in mix.items():
                        self.obs.gauge(
                            "engine.roaring.containers.%s" % kind
                        ).set(value)
                    self.obs.gauge("engine.roaring.compressed_bytes").set(
                        self._index.compressed_bytes()
                    )
                    self.obs.gauge("engine.roaring.dense_bytes").set(
                        self._index.dense_bytes()
                    )
        return self._index

    def container_counts(self) -> Dict[str, int]:
        """Container mix of the current index ({} off the roaring rung)."""
        if isinstance(self._index, RoaringIndex):
            return self._index.container_counts()
        return {}

    def _count(self, db, candidates: List[Itemset]) -> Dict[Itemset, int]:
        index = self._index_for(db)
        hits_before = index.prefix_hits
        misses_before = index.prefix_misses
        counts = index.counts(candidates, deadline_check=self._check_deadline)
        hits = index.prefix_hits - hits_before
        misses = index.prefix_misses - misses_before
        self.prefix_cache_hits += hits
        self.prefix_cache_misses += misses
        if self.obs.enabled:
            self.obs.counter("prefix_cache.hits").inc(hits)
            self.obs.counter("prefix_cache.misses").inc(misses)
        return dict(zip(candidates, counts))

    def reset(self) -> None:
        super().reset()
        self.prefix_cache_hits = 0
        self.prefix_cache_misses = 0
