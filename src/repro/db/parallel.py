"""Sharded support counting: the ``sharded`` engine.

The segmentation structure of Rajalakshmi et al. (arXiv:1109.2427):
support is additive over a row partition of the database, so the database
is split into contiguous transaction shards, each shard is counted
independently, and the per-shard counts are summed.  Nothing about the
pass/IO accounting changes — one ``count`` call is still one logical pass
over every transaction, whichever process touches it.

Execution modes, chosen per database:

* **in-process** (``num_shards == 1``, or ``use_processes=False``): the
  shards are counted serially on shard-local indexes and summed.  This is
  the degenerate-but-correct mode for small databases, single-core boxes,
  and environments where ``multiprocessing`` is unavailable (spawn
  failures silently fall back here).
* **multi-process**: one worker process per shard, each holding a
  persistent shard-local index (:func:`repro.db.vertical.build_index` —
  packed NumPy when available).  The index is built **once**, when the
  worker starts, and reused across every later pass of the same mining
  run; per pass only the candidate batch and the count vector cross the
  pipe.

The shard-count heuristic targets one shard per core, but never slices so
thin that per-shard fixed costs (pipe round-trip, batch dispatch) beat
the counting itself: shards smaller than :data:`MIN_ROWS_PER_SHARD`
transactions are not worth a process.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import weakref
from typing import Dict, List, Optional, Tuple

from .._types import Itemset
from ..obs.logsetup import get_logger
from ..obs.resources import rusage_snapshot
from .base import SupportCounter
from .vertical import build_index

__all__ = ["MIN_ROWS_PER_SHARD", "ShardedCounter", "default_num_shards"]

logger = get_logger("db.parallel")

#: Below this many transactions a shard cannot amortise its dispatch cost.
MIN_ROWS_PER_SHARD = 512


def default_num_shards(num_rows: int, max_workers: Optional[int] = None) -> int:
    """One shard per core, capped so every shard stays worth dispatching."""
    cores = os.cpu_count() or 1
    cap = max_workers if max_workers is not None else cores
    return max(1, min(cap, num_rows // MIN_ROWS_PER_SHARD))


def _shard_bounds(num_rows: int, num_shards: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal [start, stop) row ranges covering the db."""
    base, extra = divmod(num_rows, num_shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for shard in range(num_shards):
        stop = start + base + (1 if shard < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _shard_worker(connection, transactions, universe) -> None:
    """Worker loop: build the shard index once, then serve count batches.

    Each reply carries the counts **plus the shard's own accounting** —
    the records the batch read (every shard row, once), the worker's
    wall-clock and CPU seconds for the batch, and the worker process's
    peak RSS — so the parent can aggregate exact ``records_read`` totals
    and per-shard resource attribution without a side channel.
    """
    num_rows = len(transactions)
    try:
        index = build_index(transactions, universe)
    except BaseException as exc:  # pragma: no cover - defensive
        connection.send(("error", repr(exc)))
        connection.close()
        return
    connection.send(("ready", os.getpid()))
    while True:
        try:
            message = connection.recv()
        except EOFError:  # parent vanished
            break
        if message is None:
            break
        try:
            started = time.perf_counter()
            cpu_started = time.process_time()
            counts = index.counts(message)
            meta = {
                "records_read": num_rows,
                "seconds": time.perf_counter() - started,
                "cpu_seconds": time.process_time() - cpu_started,
                "maxrss_kb": rusage_snapshot().get("maxrss_kb", 0),
            }
            connection.send(("counts", counts, meta))
        except BaseException as exc:  # pragma: no cover - defensive
            connection.send(("error", repr(exc)))
    connection.close()


class ShardedCounter(SupportCounter):
    """Row-sharded counting engine with persistent per-shard workers.

    Parameters
    ----------
    num_shards:
        Explicit shard count; default is the per-database heuristic
        :func:`default_num_shards`.
    max_workers:
        Cap for the heuristic (ignored when ``num_shards`` is given).
    use_processes:
        True/False forces worker processes on/off; None (default) uses
        processes whenever there is more than one shard.
    """

    name = "sharded"

    def __init__(
        self,
        num_shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        use_processes: Optional[bool] = None,
    ) -> None:
        super().__init__()
        if num_shards is not None and num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self._num_shards = num_shards
        self._max_workers = max_workers
        self._use_processes = use_processes
        self._db_ref = None
        self._indexes: List[object] = []
        self._workers: List[multiprocessing.Process] = []
        self._connections: List[object] = []
        self.worker_pids: List[int] = []
        #: rows per shard of the attached database (parallel to workers)
        self.shard_rows: List[int] = []
        #: per-shard worker seconds of the most recent pass
        self.last_shard_seconds: List[float] = []
        #: per-shard worker CPU seconds of the most recent pass
        self.last_shard_cpu_seconds: List[float] = []
        #: per-shard worker peak RSS (kB) as of the most recent pass
        self.last_shard_maxrss_kb: List[int] = []

    # ------------------------------------------------------------------
    # worker / shard lifecycle
    # ------------------------------------------------------------------

    def _attached_to(self, db) -> bool:
        return self._db_ref is not None and self._db_ref() is db

    def _attach(self, db) -> None:
        self.close()
        transactions = list(db.transactions)
        shards = self._num_shards or default_num_shards(
            len(transactions), self._max_workers
        )
        shards = max(1, min(shards, len(transactions)) if transactions else 1)
        bounds = _shard_bounds(len(transactions), shards)
        universe = list(db.universe)
        processes = (
            self._use_processes if self._use_processes is not None else shards > 1
        )
        self.shard_rows = [stop - start for start, stop in bounds]
        if processes and shards > 1:
            if self._spawn_workers(transactions, universe, bounds):
                self._db_ref = weakref.ref(db)
                logger.debug(
                    "attached %d worker shards (rows per shard: %s)",
                    len(bounds), self.shard_rows,
                )
                return
        # serial sharding: same shard-local indexes, same summation
        self._indexes = [
            build_index(transactions[start:stop], universe)
            for start, stop in bounds
        ]
        self._db_ref = weakref.ref(db)
        logger.debug("attached %d in-process shards", len(self._indexes))

    def _spawn_workers(self, transactions, universe, bounds) -> bool:
        context = multiprocessing.get_context()
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        workers: List[multiprocessing.Process] = []
        connections: List[object] = []
        try:
            for start, stop in bounds:
                parent_end, child_end = context.Pipe()
                worker = context.Process(
                    target=_shard_worker,
                    args=(child_end, transactions[start:stop], universe),
                    daemon=True,
                )
                worker.start()
                child_end.close()
                workers.append(worker)
                connections.append(parent_end)
            for connection in connections:
                kind, payload = connection.recv()
                if kind != "ready":
                    raise RuntimeError(
                        "shard worker failed to start: %s" % (payload,)
                    )
        except (OSError, RuntimeError, EOFError):
            for connection in connections:
                connection.close()
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
                worker.join(timeout=1.0)
            return False
        self._workers = workers
        self._connections = connections
        self.worker_pids = [worker.pid for worker in workers]
        return True

    def close(self) -> None:
        """Shut down workers and drop shard indexes (idempotent)."""
        for connection in self._connections:
            try:
                connection.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        for worker in self._workers:
            worker.join(timeout=2.0)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
                worker.join(timeout=1.0)
        for connection in self._connections:
            try:
                connection.close()
            except OSError:  # pragma: no cover
                pass
        self._workers = []
        self._connections = []
        self.worker_pids = []
        self.shard_rows = []
        self.last_shard_seconds = []
        self.last_shard_cpu_seconds = []
        self.last_shard_maxrss_kb = []
        self._indexes = []
        self._db_ref = None

    def __del__(self):  # pragma: no cover - interpreter teardown timing
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "ShardedCounter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------

    def _bill_records(self, db) -> None:
        """Deferred: shard workers *report* the records they read.

        The parent sums the per-shard reports in :meth:`_count` instead of
        assuming ``len(db)`` up front, so ``records_read`` (and through it
        ``MiningStats.records_read``) reflects what the shards actually
        touched — the shard reports of a completed pass always sum to
        ``len(db)``, and an aborted pass bills only the shards that
        answered.
        """

    def _count(self, db, candidates: List[Itemset]) -> Dict[Itemset, int]:
        if not self._attached_to(db):
            self._attach(db)
        if self._connections:
            totals = self._count_in_workers(candidates)
        else:
            totals = [0] * len(candidates)
            self.last_shard_seconds = [0.0] * len(self._indexes)
            self.last_shard_cpu_seconds = [0.0] * len(self._indexes)
            rss_kb = rusage_snapshot().get("maxrss_kb", 0)
            self.last_shard_maxrss_kb = [rss_kb] * len(self._indexes)
            for shard, index in enumerate(self._indexes):
                self._check_deadline()
                shard_started = time.perf_counter()
                shard_cpu_started = time.process_time()
                for position, count in enumerate(
                    index.counts(candidates, deadline_check=self._check_deadline)
                ):
                    totals[position] += count
                self.last_shard_seconds[shard] = (
                    time.perf_counter() - shard_started
                )
                self.last_shard_cpu_seconds[shard] = (
                    time.process_time() - shard_cpu_started
                )
                self.records_read += index.num_rows
        self._record_shard_metrics()
        return dict(zip(candidates, totals))

    def _count_in_workers(self, candidates: List[Itemset]) -> List[int]:
        for connection in self._connections:
            connection.send(candidates)
        totals = [0] * len(candidates)
        self.last_shard_seconds = [0.0] * len(self._connections)
        self.last_shard_cpu_seconds = [0.0] * len(self._connections)
        self.last_shard_maxrss_kb = [0] * len(self._connections)
        pending = set(range(len(self._connections)))
        while pending:
            try:
                self._check_deadline()
            except Exception:
                # pending replies would poison the next pass: drop the
                # pool; the next count() re-attaches cleanly
                self.close()
                raise
            for shard in sorted(pending):
                connection = self._connections[shard]
                if not connection.poll(0.01):
                    continue
                reply = connection.recv()
                if reply[0] != "counts":
                    self.close()
                    raise RuntimeError("shard %d failed: %s" % (shard, reply[1]))
                _, payload, meta = reply
                for position, count in enumerate(payload):
                    totals[position] += count
                self.records_read += meta["records_read"]
                self.last_shard_seconds[shard] = meta["seconds"]
                self.last_shard_cpu_seconds[shard] = meta.get(
                    "cpu_seconds", 0.0
                )
                self.last_shard_maxrss_kb[shard] = meta.get("maxrss_kb", 0)
                pending.discard(shard)
        return totals

    def _record_shard_metrics(self) -> None:
        """Feed the latest pass's per-shard numbers into the registry."""
        obs = self.obs
        if not obs.enabled:
            return
        obs.gauge("shard.count").set(
            max(len(self.last_shard_seconds), len(self.shard_rows))
        )
        worker_seconds = obs.histogram("shard.worker_seconds")
        for seconds in self.last_shard_seconds:
            worker_seconds.observe(seconds)
        if self.last_shard_seconds:
            obs.gauge("shard.last_pass_max_seconds").set(
                max(self.last_shard_seconds)
            )
            obs.counter("shard.worker_seconds_total_ms").inc(
                int(sum(self.last_shard_seconds) * 1000)
            )
        cpu_seconds = obs.histogram("shard.cpu_seconds")
        for seconds in self.last_shard_cpu_seconds:
            cpu_seconds.observe(seconds)
        if self.last_shard_maxrss_kb:
            obs.gauge("shard.max_rss_kb").set(max(self.last_shard_maxrss_kb))
