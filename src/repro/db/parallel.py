"""Sharded support counting: the ``sharded`` engine.

The segmentation structure of Rajalakshmi et al. (arXiv:1109.2427):
support is additive over a row partition of the database, so the database
is split into contiguous transaction shards, each shard is counted
independently, and the per-shard counts are summed.  Nothing about the
pass/IO accounting changes — one ``count`` call is still one logical pass
over every transaction, whichever process touches it.

Execution modes, chosen per database:

* **in-process** (``num_shards == 1``, or ``use_processes=False``): the
  shards are counted serially on shard-local indexes and summed.  This is
  the degenerate-but-correct mode for small databases, single-core boxes,
  and environments where ``multiprocessing`` is unavailable (spawn
  failures silently fall back here).
* **multi-process**: one worker process per shard, each holding a
  persistent shard-local index (:func:`repro.db.vertical.build_index` —
  packed NumPy when available).  The index is built **once**, when the
  worker starts, and reused across every later pass of the same mining
  run; per pass only the candidate batch and the count vector cross the
  pipe.

The shard-count heuristic targets one shard per core, but never slices so
thin that per-shard fixed costs (pipe round-trip, batch dispatch) beat
the counting itself: shards smaller than :data:`MIN_ROWS_PER_SHARD`
transactions are not worth a process.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
import weakref
from typing import Dict, List, Optional, Tuple

from .._types import Itemset
from ..obs.logsetup import get_logger
from ..obs.resources import rusage_snapshot
from ..obs.telemetry import (
    STATE_COUNTING,
    STATE_IDLE,
    TelemetryConfig,
    TelemetryWriter,
)
from .base import SupportCounter
from .vertical import build_index

__all__ = [
    "AdaptiveShardScheduler",
    "MIN_ROWS_PER_SHARD",
    "PIPE_BATCH_LIMIT",
    "ShardedCounter",
    "default_num_shards",
]

logger = get_logger("db.parallel")

#: Below this many transactions a shard cannot amortise its dispatch cost.
MIN_ROWS_PER_SHARD = 512

#: Largest candidate batch a single pipe message may carry.  A fused
#: C_k+MFCS batch can reach tens of thousands of itemsets in Pincer's
#: early passes; bounding the payload keeps every worker heartbeat (and
#: the parent's deadline poll) within one chunk of latency.
PIPE_BATCH_LIMIT = 4096

#: Environment override capping worker counts fleet-wide (operators can
#: pin CI boxes or shared hosts without touching call sites).
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"


def default_num_shards(num_rows: int, max_workers: Optional[int] = None) -> int:
    """One shard per core, capped so every shard stays worth dispatching.

    The ``REPRO_MAX_WORKERS`` environment variable caps the result even
    when ``max_workers`` is passed explicitly — it is the operator's
    ceiling, not a default.
    """
    cores = os.cpu_count() or 1
    cap = max_workers if max_workers is not None else cores
    env_cap = os.environ.get(MAX_WORKERS_ENV)
    if env_cap:
        try:
            cap = min(cap, max(1, int(env_cap)))
        except ValueError:
            logger.warning(
                "ignoring non-integer %s=%r", MAX_WORKERS_ENV, env_cap
            )
    shards = max(1, min(cap, num_rows // MIN_ROWS_PER_SHARD))
    logger.debug(
        "shard plan: %d shards for %d rows (cores=%d, max_workers=%r, %s=%r)",
        shards, num_rows, cores, max_workers, MAX_WORKERS_ENV, env_cap,
    )
    return shards


def _shard_bounds(num_rows: int, num_shards: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal [start, stop) row ranges covering the db."""
    base, extra = divmod(num_rows, num_shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for shard in range(num_shards):
        stop = start + base + (1 if shard < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _shard_worker(connection, transactions, universe, telemetry_spec=None) -> None:
    """Worker loop: build the shard index once, then serve count batches.

    Each reply carries the counts **plus the shard's own accounting** —
    the records the batch read (every shard row, once), the worker's
    wall-clock and CPU seconds for the batch, and the worker process's
    peak RSS — so the parent can aggregate exact ``records_read`` totals
    and per-shard resource attribution without a side channel.

    With a ``telemetry_spec`` the worker also publishes seqlock
    heartbeats into its telemetry slot: a beat at batch boundaries plus
    throttled mid-count beats through the index's ``deadline_check``
    hook, so the parent's stall watchdog sees liveness *inside* a long
    batch.  Telemetry failures never affect counting.
    """
    num_rows = len(transactions)
    startup_started = time.perf_counter()
    try:
        index = build_index(transactions, universe)
    except BaseException as exc:  # pragma: no cover - defensive
        connection.send(("error", repr(exc)))
        connection.close()
        return
    telemetry = TelemetryWriter.attach(telemetry_spec)
    connection.send(
        ("ready", os.getpid(), time.perf_counter() - startup_started)
    )
    if telemetry is not None:
        telemetry.beat(state=STATE_IDLE, rows_total=num_rows)
    while True:
        try:
            message = connection.recv()
        except EOFError:  # parent vanished
            break
        if message is None:
            break
        try:
            if isinstance(message, tuple) and message[0] == "count":
                _, batch, bill = message
            else:  # bare candidate list: one unchunked pass
                batch, bill = message, True
            started = time.perf_counter()
            cpu_started = time.process_time()
            if telemetry is not None:
                telemetry.beat(state=STATE_COUNTING, candidates_total=len(batch))
                counts = index.counts(batch, deadline_check=telemetry.maybe_beat)
                telemetry.advance(
                    candidates_done=len(batch),
                    rows_done=num_rows,
                    records_read=num_rows if bill else 0,
                )
                telemetry.beat(state=STATE_IDLE)
            else:
                counts = index.counts(batch)
            meta = {
                "records_read": num_rows if bill else 0,
                "seconds": time.perf_counter() - started,
                "cpu_seconds": time.process_time() - cpu_started,
                "maxrss_kb": rusage_snapshot().get("maxrss_kb", 0),
            }
            connection.send(("counts", counts, meta))
        except BaseException as exc:  # pragma: no cover - defensive
            connection.send(("error", repr(exc)))
    if telemetry is not None:
        telemetry.close()
    connection.close()


class ShardedCounter(SupportCounter):
    """Row-sharded counting engine with persistent per-shard workers.

    Parameters
    ----------
    num_shards:
        Explicit shard count; default is the per-database heuristic
        :func:`default_num_shards`.
    max_workers:
        Cap for the heuristic (ignored when ``num_shards`` is given).
    use_processes:
        True/False forces worker processes on/off; None (default) uses
        processes whenever there is more than one shard.
    """

    name = "sharded"

    def __init__(
        self,
        num_shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        use_processes: Optional[bool] = None,
    ) -> None:
        super().__init__()
        if num_shards is not None and num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self._num_shards = num_shards
        self._max_workers = max_workers
        self._use_processes = use_processes
        self._db_ref = None
        self._indexes: List[object] = []
        self._workers: List[multiprocessing.Process] = []
        self._connections: List[object] = []
        self.worker_pids: List[int] = []
        #: rows per shard of the attached database (parallel to workers)
        self.shard_rows: List[int] = []
        #: per-shard worker seconds of the most recent pass
        self.last_shard_seconds: List[float] = []
        #: per-shard worker CPU seconds of the most recent pass
        self.last_shard_cpu_seconds: List[float] = []
        #: per-shard worker peak RSS (kB) as of the most recent pass
        self.last_shard_maxrss_kb: List[int] = []
        #: seconds each worker took to become ready at the latest attach
        #: (index build for the pipe plane, segment attach for shm)
        self.worker_startup_seconds: List[float] = []
        #: pipe-payload chunks the most recent pass was split into
        self.last_batch_chunks = 0
        #: live telemetry plane (EngineTelemetry), when obs requests one
        self._telemetry = None
        #: stalls survived so far; each one steps the fallback ladder
        #: down at the next attach (see :meth:`_attach`)
        self._stall_strikes = 0
        #: [start, stop) row bounds per shard of the latest attach
        self._shard_bounds: List[Tuple[int, int]] = []
        #: shard -> parent-side replacement index for shards whose worker
        #: stalled this attach (their work runs in-process from then on)
        self._failed_shards: Dict[int, object] = {}
        self._needs_reattach = False
        #: shards reassigned away from stalled workers (cumulative)
        self.shards_reassigned = 0

    # ------------------------------------------------------------------
    # worker / shard lifecycle
    # ------------------------------------------------------------------

    def _attached_to(self, db) -> bool:
        return self._db_ref is not None and self._db_ref() is db

    def _attach(self, db) -> None:
        self._detach()
        transactions = list(db.transactions)
        shards = self._num_shards or default_num_shards(
            len(transactions), self._max_workers
        )
        shards = max(1, min(shards, len(transactions)) if transactions else 1)
        bounds = _shard_bounds(len(transactions), shards)
        universe = list(db.universe)
        processes = (
            self._use_processes if self._use_processes is not None else shards > 1
        )
        self.shard_rows = [stop - start for start, stop in bounds]
        self._shard_bounds = list(bounds)
        self._failed_shards = {}
        if processes and shards > 1 and self._stall_strikes < 2:
            self._telemetry = self._make_telemetry(shards)
            if self._spawn_workers(transactions, universe, bounds):
                self._db_ref = weakref.ref(db)
                logger.debug(
                    "attached %d worker shards (rows per shard: %s)",
                    len(bounds), self.shard_rows,
                )
                return
            self._close_telemetry()
        # serial sharding: same shard-local indexes, same summation
        self._indexes = [
            build_index(transactions[start:stop], universe)
            for start, stop in bounds
        ]
        self._db_ref = weakref.ref(db)
        logger.debug("attached %d in-process shards", len(self._indexes))

    def _make_telemetry(self, num_workers: int):
        """Build the engine's telemetry plane when obs asks for one."""
        config = TelemetryConfig.from_option(
            getattr(self.obs, "telemetry", None)
        )
        if config is None:
            return None
        try:
            from ..obs.telemetry import EngineTelemetry

            return EngineTelemetry(num_workers, config, obs=self.obs)
        except Exception:
            logger.warning(
                "telemetry plane unavailable; mining without heartbeats",
                exc_info=True,
            )
            return None

    def _close_telemetry(self) -> None:
        if self._telemetry is not None:
            telemetry, self._telemetry = self._telemetry, None
            try:
                telemetry.close()
            except Exception:  # pragma: no cover - teardown resilience
                logger.debug("telemetry close failed", exc_info=True)

    def _spawn_workers(self, transactions, universe, bounds) -> bool:
        context = multiprocessing.get_context()
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        workers: List[multiprocessing.Process] = []
        connections: List[object] = []
        try:
            for shard, (start, stop) in enumerate(bounds):
                parent_end, child_end = context.Pipe()
                spec = (
                    self._telemetry.worker_spec(shard)
                    if self._telemetry is not None
                    else None
                )
                worker = context.Process(
                    target=_shard_worker,
                    args=(child_end, transactions[start:stop], universe, spec),
                    daemon=True,
                )
                worker.start()
                child_end.close()
                workers.append(worker)
                connections.append(parent_end)
            startup_seconds = []
            for connection in connections:
                reply = connection.recv()
                if reply[0] != "ready":
                    raise RuntimeError(
                        "shard worker failed to start: %s" % (reply[1],)
                    )
                startup_seconds.append(reply[2] if len(reply) > 2 else 0.0)
        except (OSError, RuntimeError, EOFError):
            for connection in connections:
                connection.close()
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
                worker.join(timeout=1.0)
            return False
        self._workers = workers
        self._connections = connections
        self.worker_pids = [worker.pid for worker in workers]
        self.worker_startup_seconds = startup_seconds
        return True

    def _detach(self) -> None:
        """Shut down workers and drop shard indexes (idempotent).

        ``_stall_strikes`` deliberately survives: it is the fallback
        ladder's memory, and the post-stall reattach goes through here.
        This is the *internal* teardown — re-attach cycles and stall
        recovery call it directly; the sealing ``close()`` (inherited
        from :class:`~repro.db.base.SupportCounter`) layers the
        use-after-close guard on top.
        """
        for connection in self._connections:
            try:
                connection.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        for worker in self._workers:
            worker.join(timeout=2.0)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
                worker.join(timeout=1.0)
            if worker.is_alive():  # pragma: no cover - SIGSTOPped worker
                # SIGTERM stays pending on a stopped process; only
                # SIGKILL resumes-and-reaps it
                worker.kill()
                worker.join(timeout=1.0)
        for connection in self._connections:
            try:
                connection.close()
            except OSError:  # pragma: no cover
                pass
        self._workers = []
        self._connections = []
        self.worker_pids = []
        self.worker_startup_seconds = []
        self.shard_rows = []
        self.last_shard_seconds = []
        self.last_shard_cpu_seconds = []
        self.last_shard_maxrss_kb = []
        self._indexes = []
        self._db_ref = None
        self._shard_bounds = []
        self._failed_shards = {}
        self._needs_reattach = False
        self._close_telemetry()

    def __del__(self):  # pragma: no cover - interpreter teardown timing
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "ShardedCounter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------

    def _bill_records(self, db) -> None:
        """Deferred: shard workers *report* the records they read.

        The parent sums the per-shard reports in :meth:`_count` instead of
        assuming ``len(db)`` up front, so ``records_read`` (and through it
        ``MiningStats.records_read``) reflects what the shards actually
        touched — the shard reports of a completed pass always sum to
        ``len(db)``, and an aborted pass bills only the shards that
        answered.
        """

    def _count(self, db, candidates: List[Itemset]) -> Dict[Itemset, int]:
        if not self._attached_to(db):
            self._attach(db)
        if self._connections:
            totals = self._count_in_workers(candidates)
        else:
            totals = [0] * len(candidates)
            self.last_shard_seconds = [0.0] * len(self._indexes)
            self.last_shard_cpu_seconds = [0.0] * len(self._indexes)
            rss_kb = rusage_snapshot().get("maxrss_kb", 0)
            self.last_shard_maxrss_kb = [rss_kb] * len(self._indexes)
            for shard, index in enumerate(self._indexes):
                self._check_deadline()
                shard_started = time.perf_counter()
                shard_cpu_started = time.process_time()
                for position, count in enumerate(
                    index.counts(candidates, deadline_check=self._check_deadline)
                ):
                    totals[position] += count
                self.last_shard_seconds[shard] = (
                    time.perf_counter() - shard_started
                )
                self.last_shard_cpu_seconds[shard] = (
                    time.process_time() - shard_cpu_started
                )
                self.records_read += index.num_rows
        self._record_shard_metrics()
        self._finish_pass_after_stalls()
        return dict(zip(candidates, totals))

    def note_candidate_bound(self, bound: Optional[int]) -> None:
        """Miner-provided bound on the next pass's candidates (live ETA)."""
        if self._telemetry is not None and bound is not None:
            self._telemetry.note_bound(bound)

    def _worker_alive(self, shard: int) -> bool:
        try:
            return self._workers[shard].is_alive()
        except (IndexError, ValueError):  # pragma: no cover - torn state
            return False

    def _finish_pass_after_stalls(self) -> None:
        """After a pass that survived a stall: drop the wounded pool.

        The next ``count()`` re-attaches; ``_stall_strikes`` (which
        :meth:`close` preserves) steps the ladder down — one strike
        keeps/pipes the process plane, two strikes force in-process
        serial shards.
        """
        if self._needs_reattach:
            logger.info(
                "re-attaching after %d stall strike(s); ladder position: %s",
                self._stall_strikes,
                "serial" if self._stall_strikes >= 2 else "processes",
            )
            self._detach()

    def _build_recovery_index(self, shard: int):
        """Rebuild the stalled shard's index in-process, from the db."""
        db = self._db_ref() if self._db_ref is not None else None
        if db is None:  # pragma: no cover - db died mid-pass
            raise RuntimeError("database vanished during shard recovery")
        start, stop = self._shard_bounds[shard]
        transactions = list(
            itertools.islice(iter(db.transactions), start, stop)
        )
        return build_index(transactions, list(db.universe))

    def _recover_pipe_shard(
        self, shard: int, chunk, start: int, totals: List[int], bill: bool
    ) -> None:
        """Take a stalled worker's shard over, in-process, mid-pass.

        The worker is SIGKILLed (a SIGSTOPped process ignores SIGTERM),
        so it can neither write another reply nor hold the pass hostage;
        any reply it managed to send for *this* chunk stays unread
        (``pending`` already dropped the shard), so adding the local
        count below never double-counts.  Counts are byte-identical by
        construction: the same ``build_index`` over the same transaction
        slice.
        """
        worker = self._workers[shard]
        worker.kill()
        worker.join(timeout=2.0)
        if self._telemetry is not None:
            # no-op if the watchdog already flagged this stall; covers
            # deaths the pipe announced first (send/recv races)
            self._telemetry.note_worker_dead(shard)
        index = self._failed_shards.get(shard)
        if index is None:
            rebuild_started = time.perf_counter()
            index = self._build_recovery_index(shard)
            self._failed_shards[shard] = index
            self.shards_reassigned += 1
            self._stall_strikes += 1
            self._needs_reattach = True
            if self.obs.enabled:
                self.obs.counter("telemetry.shards_reassigned").inc()
            logger.warning(
                "shard %d reassigned to the parent (index rebuild %.3fs)",
                shard, time.perf_counter() - rebuild_started,
            )
        self._count_failed_shard(shard, index, chunk, start, totals, bill)

    def _count_failed_shard(
        self, shard: int, index, chunk, start: int, totals: List[int], bill: bool
    ) -> None:
        shard_started = time.perf_counter()
        shard_cpu_started = time.process_time()
        for position, count in enumerate(
            index.counts(chunk, deadline_check=self._check_deadline)
        ):
            totals[start + position] += count
        if bill:
            self.records_read += index.num_rows
        self.last_shard_seconds[shard] += time.perf_counter() - shard_started
        self.last_shard_cpu_seconds[shard] += (
            time.process_time() - shard_cpu_started
        )
        self.last_shard_maxrss_kb[shard] = max(
            self.last_shard_maxrss_kb[shard],
            rusage_snapshot().get("maxrss_kb", 0),
        )

    def _count_in_workers(self, candidates: List[Itemset]) -> List[int]:
        """One pass through the worker pool, in bounded pipe chunks.

        Batches above :data:`PIPE_BATCH_LIMIT` are split so no single
        message (or worker compute burst) can stall the heartbeat; the
        shard only bills its rows on the first chunk — the pass still
        reads each transaction once, however many chunks carried it.

        With a telemetry plane attached, the reply-wait loop doubles as
        the watchdog tick: stalled workers' shards are re-counted by the
        parent mid-pass (byte-identical — same index build, same rows)
        and the pool is retired at the end of the pass.
        """
        totals = [0] * len(candidates)
        telemetry = self._telemetry
        self.last_shard_seconds = [0.0] * len(self._connections)
        self.last_shard_cpu_seconds = [0.0] * len(self._connections)
        self.last_shard_maxrss_kb = [0] * len(self._connections)
        starts = range(0, len(candidates), PIPE_BATCH_LIMIT)
        self.last_batch_chunks = len(starts)
        if telemetry is not None:
            telemetry.begin_pass(self.passes, len(candidates))
        for chunk_index, start in enumerate(starts):
            chunk = candidates[start : start + PIPE_BATCH_LIMIT]
            bill = chunk_index == 0
            pending = set()
            # snapshot first: a send-time death below adds to
            # _failed_shards *and* counts this chunk itself — iterating
            # the live dict here would count that chunk twice
            already_failed = sorted(self._failed_shards.items())
            for shard, connection in enumerate(self._connections):
                if shard in self._failed_shards:
                    continue
                try:
                    connection.send(("count", chunk, bill))
                except (BrokenPipeError, OSError):
                    if telemetry is not None:
                        # the worker died before the chunk reached it
                        self._recover_pipe_shard(
                            shard, chunk, start, totals, bill
                        )
                        continue
                    self._detach()
                    raise RuntimeError(
                        "shard %d died mid-pass" % shard
                    ) from None
                pending.add(shard)
            # shards taken over on an earlier chunk count in-process;
            # their rows were billed when the takeover happened on chunk 0
            for shard, index in already_failed:
                self._count_failed_shard(
                    shard, index, chunk, start, totals, False
                )
            while pending:
                try:
                    self._check_deadline()
                except Exception:
                    # pending replies would poison the next pass: drop the
                    # pool; the next count() re-attaches cleanly
                    self._detach()
                    raise
                if telemetry is not None:
                    telemetry.poll()
                    for event in telemetry.check_stalls(
                        pending, alive=self._worker_alive
                    ):
                        if event.shard in pending:
                            pending.discard(event.shard)
                            self._recover_pipe_shard(
                                event.shard, chunk, start, totals, bill
                            )
                for shard in sorted(pending):
                    connection = self._connections[shard]
                    try:
                        if not connection.poll(0.01):
                            continue
                        reply = connection.recv()
                    except (EOFError, OSError):
                        if telemetry is not None:
                            # raced the watchdog to a dead worker: same
                            # takeover, different messenger
                            pending.discard(shard)
                            self._recover_pipe_shard(
                                shard, chunk, start, totals, bill
                            )
                            continue
                        self._detach()
                        raise RuntimeError(
                            "shard %d died mid-pass" % shard
                        ) from None
                    if reply[0] != "counts":
                        self._detach()
                        raise RuntimeError(
                            "shard %d failed: %s" % (shard, reply[1])
                        )
                    _, payload, meta = reply
                    for position, count in enumerate(payload):
                        totals[start + position] += count
                    self.records_read += meta["records_read"]
                    self.last_shard_seconds[shard] += meta["seconds"]
                    self.last_shard_cpu_seconds[shard] += meta.get(
                        "cpu_seconds", 0.0
                    )
                    self.last_shard_maxrss_kb[shard] = max(
                        self.last_shard_maxrss_kb[shard],
                        meta.get("maxrss_kb", 0),
                    )
                    pending.discard(shard)
        if telemetry is not None:
            telemetry.end_pass(len(candidates))
        return totals

    def _record_shard_metrics(self) -> None:
        """Feed the latest pass's per-shard numbers into the registry."""
        obs = self.obs
        if not obs.enabled:
            return
        obs.gauge("shard.count").set(
            max(len(self.last_shard_seconds), len(self.shard_rows))
        )
        worker_seconds = obs.histogram("shard.worker_seconds")
        for seconds in self.last_shard_seconds:
            worker_seconds.observe(seconds)
        if self.last_shard_seconds:
            obs.gauge("shard.last_pass_max_seconds").set(
                max(self.last_shard_seconds)
            )
            obs.counter("shard.worker_seconds_total_ms").inc(
                int(sum(self.last_shard_seconds) * 1000)
            )
        cpu_seconds = obs.histogram("shard.cpu_seconds")
        for seconds in self.last_shard_cpu_seconds:
            cpu_seconds.observe(seconds)
        if self.last_shard_maxrss_kb:
            obs.gauge("shard.max_rss_kb").set(max(self.last_shard_maxrss_kb))
        if self.last_batch_chunks:
            obs.counter("shard.batch_chunks").inc(self.last_batch_chunks)
            self.last_batch_chunks = 0


class AdaptiveShardScheduler:
    """Per-pass choice between row-sharding and candidate work-stealing.

    With every worker attached to the *whole* shared index
    (:mod:`repro.db.shm`), a pass can be partitioned along either axis:

    * ``"rows"`` — each worker counts all candidates on its word-aligned
      transaction slice; cheapest coordination, but a pass with few
      candidates on many workers leaves the per-candidate vectorization
      underfed, and static slices cannot absorb skew.
    * ``"candidates"`` — workers steal fixed-size candidate chunks off a
      shared cursor and count them against the full index; perfect for
      the wide fused C_k+MFCS batches of Pincer's early passes, and skew
      self-balances by construction.

    The choice is structural when it must be (too few candidates to
    slice, or fewer matrix words than workers) and measured when it can
    be: per-mode EWMA throughput (candidates/second over observed
    passes) picks the faster mode once both have been tried, with
    hysteresis so a noisy pass cannot cause flapping.  The miner can feed
    its flight-recorder per-candidate rate via :meth:`note_miner_rate`;
    passes predicted to finish almost instantly stay in row mode, where
    there is no cursor lock to contend on.
    """

    MIN_CHUNK = 64
    MAX_CHUNK = 4096
    #: A measured mode must beat the other by this factor to win.
    HYSTERESIS = 1.2
    #: Predicted pass wall-time below which stealing overhead dominates.
    MIN_STEAL_SECONDS = 0.005

    def __init__(
        self,
        num_workers: int,
        chunk: Optional[int] = None,
        alpha: float = 0.4,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.num_workers = num_workers
        self._fixed_chunk = chunk
        self._alpha = alpha
        self._rates: Dict[str, Optional[float]] = {
            "rows": None, "candidates": None,
        }
        self._miner_rate: Optional[float] = None
        #: decisions taken so far, by mode (observability + tests)
        self.decisions: Dict[str, int] = {"rows": 0, "candidates": 0}

    def reset_query(self) -> None:
        """Drop state describing the *previous* query's candidate shape.

        The miner-fed rate predicts how fast the next pass counts, but
        that prediction came from another query's candidates; carrying it
        over would bias the first-pass mode choice.  The per-mode EWMAs
        stay — they measure this database on this machine, which the next
        query shares.
        """
        self._miner_rate = None

    def chunk_for(self, num_candidates: int) -> int:
        """Work-stealing chunk size: ~4 chunks per worker, clamped."""
        if self._fixed_chunk:
            return max(1, self._fixed_chunk)
        target = -(-num_candidates // (4 * self.num_workers))
        return max(self.MIN_CHUNK, min(self.MAX_CHUNK, target))

    def choose(self, num_candidates: int, num_rows: int):
        """-> ``(mode, chunk)`` for a pass of this shape."""
        mode = self._pick(num_candidates, num_rows)
        self.decisions[mode] += 1
        return mode, self.chunk_for(num_candidates)

    def _pick(self, num_candidates: int, num_rows: int) -> str:
        if num_candidates < 2 * self.num_workers:
            return "rows"  # not enough candidates to keep stealers busy
        num_words = max(1, (num_rows + 63) // 64)
        if num_words < self.num_workers:
            return "candidates"  # row slices would idle some workers
        if self._miner_rate:
            predicted = num_candidates / self._miner_rate
            if predicted < self.MIN_STEAL_SECONDS:
                return "rows"
        rows_rate = self._rates["rows"]
        candidates_rate = self._rates["candidates"]
        if rows_rate is not None and candidates_rate is not None:
            if candidates_rate > rows_rate * self.HYSTERESIS:
                return "candidates"
            if rows_rate > candidates_rate * self.HYSTERESIS:
                return "rows"
            # within the hysteresis band: keep the cheaper coordination
            return "rows"
        # unmeasured: wide batches amortise stealing, narrow ones don't
        if num_candidates >= self.num_workers * self.MIN_CHUNK:
            return "candidates"
        return "rows"

    def observe(self, mode: str, num_candidates: int, seconds: float) -> None:
        """Feed back a completed pass's throughput for ``mode``."""
        if seconds <= 0.0 or num_candidates <= 0:
            return
        rate = num_candidates / seconds
        previous = self._rates.get(mode)
        self._rates[mode] = (
            rate
            if previous is None
            else (1.0 - self._alpha) * previous + self._alpha * rate
        )

    def note_miner_rate(self, rate: Optional[float]) -> None:
        """Accept the miner's observed per-candidate counting rate (c/s)."""
        if rate and rate > 0.0:
            self._miner_rate = rate
