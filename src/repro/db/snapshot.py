"""Versioned on-disk packed-bitmap snapshots (the ``.snap`` format).

A snapshot serialises the *vertical* view of a transaction database — the
``(num_items, num_words)`` uint64 bitmap matrix of
:class:`repro.db.vertical.PackedBitmapIndex`, plus the item universe and
the row count — into a single flat file designed to be **memory-mapped**:
every multi-byte field is little-endian, the matrix is row-major, and
both the universe array and the matrix start on 8-byte boundaries, so a
reader can hand the OS page cache the whole index with one
``numpy.memmap`` call and zero parsing.

This is the pre-parallel tax killer for out-of-core mining: a
:class:`repro.db.disk.DiskTransactionDatabase` normally pays one full
basket parse for the metadata pass and another to build bitmaps.  With a
snapshot (``pincer snapshot data.dat``), both are replaced by one
``open`` + header read, and the shared-memory counting plane
(:mod:`repro.db.shm`) can fall back to mapping this file directly when
POSIX shared memory is unavailable.

Layout (version 1)::

    offset  size               field
    ------  ----               -----
         0  8                  magic  b"PINCSNAP"
         8  4                  format version (uint32)
        12  4                  reserved flags (uint32, zero)
        16  8                  num_rows   (uint64) — transactions
        24  8                  num_items  (uint64) — universe size
        32  8                  num_words  (uint64) — ceil(num_rows/64), min 1
        40  8 * num_items      universe   (int64, ascending)
         …  8 * num_items
             * num_words       bitmap matrix (uint64, row-major; row i is
                               the transaction bitmap of ``universe[i]``,
                               little-endian across words, tail bits zero)

The format is self-describing and NumPy-optional: :func:`write_snapshot`
and :meth:`Snapshot.int_bitmaps` work with pure-Python int bitmaps, so
snapshots written on a NumPy box load on a bare interpreter and vice
versa.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

from .vertical import HAVE_NUMPY, IntBitmapIndex, PackedBitmapIndex

try:  # pragma: no cover - import guard mirrors repro.db.vertical
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

PathLike = Union[str, Path]

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_SUFFIX",
    "SNAPSHOT_VERSION",
    "Snapshot",
    "SnapshotFormatError",
    "default_snapshot_path",
    "load_snapshot",
    "snapshot_database",
    "write_snapshot",
]

SNAPSHOT_MAGIC = b"PINCSNAP"
SNAPSHOT_VERSION = 1
SNAPSHOT_SUFFIX = ".snap"

_HEADER = struct.Struct("<8sIIQQQ")
HEADER_SIZE = _HEADER.size  # 40 bytes; keeps the arrays 8-byte aligned


class SnapshotFormatError(ValueError):
    """The file is not a snapshot this reader understands."""


def default_snapshot_path(database_path: PathLike) -> Path:
    """``data.dat`` -> ``data.dat.snap`` (suffix appended, not replaced)."""
    path = Path(database_path)
    return path.with_name(path.name + SNAPSHOT_SUFFIX)


def _num_words(num_rows: int) -> int:
    return max(1, (num_rows + 63) // 64)


def write_snapshot(
    path: PathLike,
    universe: Iterable[int],
    num_rows: int,
    bitmaps: Optional[Dict[int, int]] = None,
    matrix=None,
) -> Path:
    """Serialise a vertical index to ``path`` (atomic: write + rename).

    Exactly one of ``bitmaps`` (item -> arbitrary-precision int bitmap,
    the lazy vertical view) and ``matrix`` (a ``(num_items, num_words)``
    uint64 array whose row order matches sorted ``universe``) must be
    given.
    """
    if (bitmaps is None) == (matrix is None):
        raise ValueError("give exactly one of bitmaps and matrix")
    items = sorted(set(int(item) for item in universe))
    words = _num_words(num_rows)
    path = Path(path)
    temp = path.with_name(path.name + ".tmp.%d" % os.getpid())
    with open(temp, "wb") as handle:
        handle.write(
            _HEADER.pack(
                SNAPSHOT_MAGIC, SNAPSHOT_VERSION, 0,
                num_rows, len(items), words,
            )
        )
        handle.write(struct.pack("<%dq" % len(items), *items))
        if matrix is not None:
            if tuple(matrix.shape) != (len(items), words):
                raise ValueError(
                    "matrix shape %r does not match universe/rows"
                    % (tuple(matrix.shape),)
                )
            handle.write(
                _np.ascontiguousarray(matrix, dtype="<u8").tobytes()
            )
        else:
            num_bytes = words * 8
            zero = b"\x00" * num_bytes
            for item in items:
                value = bitmaps.get(item, 0)
                handle.write(value.to_bytes(num_bytes, "little") if value else zero)
    os.replace(temp, path)
    return path


def snapshot_database(db, path: Optional[PathLike] = None) -> Path:
    """Build and write the snapshot of any database exposing the db surface.

    Works for :class:`~repro.db.transaction_db.TransactionDatabase` and
    :class:`~repro.db.disk.DiskTransactionDatabase` alike: one (streaming)
    pass builds the vertical bitmaps, then they are serialised.  Returns
    the written path (default: the database file + ``.snap`` when the
    database knows its file, else ``path`` is required).
    """
    if path is None:
        source = getattr(db, "path", None)
        if source is None:
            raise ValueError("path is required for in-memory databases")
        path = default_snapshot_path(source)
    return write_snapshot(
        path, db.universe, len(db), bitmaps=db.item_bitmaps()
    )


class Snapshot:
    """A validated, lazily-materialised snapshot file.

    Holds only the header metadata; the matrix is materialised on demand
    either as a zero-copy :func:`numpy.memmap` view (:meth:`matrix`,
    :meth:`packed_index`) or as pure-Python int bitmaps
    (:meth:`int_bitmaps`) on interpreters without NumPy.
    """

    def __init__(
        self,
        path: Path,
        version: int,
        num_rows: int,
        universe: Tuple[int, ...],
        num_words: int,
    ) -> None:
        self.path = path
        self.version = version
        self.num_rows = num_rows
        self.universe = universe
        self.num_words = num_words

    def __repr__(self) -> str:
        return "Snapshot(%r, v%d, |D|=%d, |I|=%d)" % (
            str(self.path), self.version, self.num_rows, len(self.universe),
        )

    @property
    def num_items(self) -> int:
        return len(self.universe)

    @property
    def matrix_offset(self) -> int:
        """Byte offset of the bitmap matrix inside the file."""
        return HEADER_SIZE + 8 * self.num_items

    @property
    def matrix_shape(self) -> Tuple[int, int]:
        return (self.num_items, self.num_words)

    def matrix(self, writable: bool = False):
        """The bitmap matrix as a ``numpy.memmap`` view (zero-copy)."""
        if _np is None:  # pragma: no cover - NumPy-less interpreters
            raise RuntimeError("snapshot memory-mapping requires NumPy")
        return _np.memmap(
            self.path,
            dtype="<u8",
            mode="r+" if writable else "r",
            offset=self.matrix_offset,
            shape=self.matrix_shape,
        )

    def int_bitmaps(self) -> Dict[int, int]:
        """item -> arbitrary-precision int bitmap (pure-Python read)."""
        num_bytes = self.num_words * 8
        bitmaps: Dict[int, int] = {}
        with open(self.path, "rb") as handle:
            handle.seek(self.matrix_offset)
            for item in self.universe:
                bitmaps[item] = int.from_bytes(handle.read(num_bytes), "little")
        return bitmaps

    def packed_index(self) -> "PackedBitmapIndex":
        """A :class:`PackedBitmapIndex` over the memory-mapped matrix."""
        rows = {item: row for row, item in enumerate(self.universe)}
        return PackedBitmapIndex(self.matrix(), rows, self.num_rows)

    def index(self, force_python: bool = False):
        """The best available counting index backed by this snapshot."""
        if HAVE_NUMPY and not force_python:
            return self.packed_index()
        return IntBitmapIndex(self.int_bitmaps(), self.num_rows)


def load_snapshot(path: PathLike) -> Snapshot:
    """Validate ``path`` and return its :class:`Snapshot` header view.

    Raises :class:`SnapshotFormatError` on a bad magic, an unsupported
    version, or a file whose size disagrees with its own header.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        header = handle.read(HEADER_SIZE)
        if len(header) < HEADER_SIZE:
            raise SnapshotFormatError("%s: truncated snapshot header" % path)
        magic, version, _, num_rows, num_items, num_words = _HEADER.unpack(
            header
        )
        if magic != SNAPSHOT_MAGIC:
            raise SnapshotFormatError("%s: not a snapshot file" % path)
        if version != SNAPSHOT_VERSION:
            raise SnapshotFormatError(
                "%s: snapshot version %d (reader supports %d)"
                % (path, version, SNAPSHOT_VERSION)
            )
        if num_words != _num_words(num_rows):
            raise SnapshotFormatError(
                "%s: num_words %d inconsistent with num_rows %d"
                % (path, num_words, num_rows)
            )
        universe = struct.unpack(
            "<%dq" % num_items, handle.read(8 * num_items)
        )
    expected = HEADER_SIZE + 8 * num_items + 8 * num_items * num_words
    actual = os.path.getsize(path)
    if actual != expected:
        raise SnapshotFormatError(
            "%s: file is %d bytes, header promises %d" % (path, actual, expected)
        )
    if any(a >= b for a, b in zip(universe, universe[1:])):
        raise SnapshotFormatError("%s: universe is not strictly ascending" % path)
    return Snapshot(path, version, num_rows, tuple(universe), num_words)
