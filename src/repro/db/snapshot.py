"""Versioned on-disk packed-bitmap snapshots (the ``.snap`` format).

A snapshot serialises the *vertical* view of a transaction database — the
``(num_items, num_words)`` uint64 bitmap matrix of
:class:`repro.db.vertical.PackedBitmapIndex`, plus the item universe and
the row count — into a single flat file designed to be **memory-mapped**:
every multi-byte field is little-endian, the matrix is row-major, and
both the universe array and the matrix start on 8-byte boundaries, so a
reader can hand the OS page cache the whole index with one
``numpy.memmap`` call and zero parsing.

This is the pre-parallel tax killer for out-of-core mining: a
:class:`repro.db.disk.DiskTransactionDatabase` normally pays one full
basket parse for the metadata pass and another to build bitmaps.  With a
snapshot (``pincer snapshot data.dat``), both are replaced by one
``open`` + header read, and the shared-memory counting plane
(:mod:`repro.db.shm`) can fall back to mapping this file directly when
POSIX shared memory is unavailable.

Layout (version 1)::

    offset  size               field
    ------  ----               -----
         0  8                  magic  b"PINCSNAP"
         8  4                  format version (uint32)
        12  4                  reserved flags (uint32, zero)
        16  8                  num_rows   (uint64) — transactions
        24  8                  num_items  (uint64) — universe size
        32  8                  num_words  (uint64) — ceil(num_rows/64), min 1
        40  8 * num_items      universe   (int64, ascending)
         …  8 * num_items
             * num_words       bitmap matrix (uint64, row-major; row i is
                               the transaction bitmap of ``universe[i]``,
                               little-endian across words, tail bits zero)

Layout (version 2 — partitioned, for out-of-core mining)::

    offset  size               field
    ------  ----               -----
         0  40                 header as v1, version = 2
        40  8 * num_items      universe   (int64, ascending)
         …  8                  num_partitions (uint64, >= 1)
         …  32 * P             partition directory: per partition
                               (row_start, num_rows, num_words,
                               matrix_offset), all uint64
         …  …                  per-partition matrices, in directory
                               order: each a row-major
                               ``(num_items, num_words_p)`` uint64 block

Version 2 splits the **rows** (transactions) into contiguous ranges and
stores one complete packed matrix per range, each independently
memory-mappable and 8-byte aligned.  Partition boundaries are 64-row
aligned (every partition except the last holds a multiple of 64 rows),
which makes each partition's matrix exactly a word-aligned column slice
of the logical global matrix: bit ``t`` of the global bitmap of an item
lives in partition ``p`` with ``row_start_p <= t`` at local bit
``t - row_start_p``.  Support is therefore *additive* over partitions —
``support(X) = Σ_p popcount(AND of X's rows in partition p)`` — which is
what the two-scan Partition mining scheme and the memory-budget counting
plane (:mod:`repro.db.outofcore`) build on.

:func:`write_snapshot` still writes version 1 (the default, and the only
layout with a single contiguous matrix); :func:`write_partitioned_snapshot`
streams rows into a version-2 file one partition at a time, never holding
the full matrix.  :func:`load_snapshot` reads both; a v1 file surfaces as
a single-partition snapshot, so partition-aware readers need no special
case.

The format is self-describing and NumPy-optional: the writers and
:meth:`Snapshot.int_bitmaps` work with pure-Python int bitmaps, so
snapshots written on a NumPy box load on a bare interpreter and vice
versa.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from .vertical import HAVE_NUMPY, IntBitmapIndex, PackedBitmapIndex

try:  # pragma: no cover - import guard mirrors repro.db.vertical
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

PathLike = Union[str, Path]

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_SUFFIX",
    "SNAPSHOT_VERSION",
    "SNAPSHOT_VERSION_PARTITIONED",
    "SUPPORTED_SNAPSHOT_VERSIONS",
    "Snapshot",
    "SnapshotFormatError",
    "SnapshotPartition",
    "default_snapshot_path",
    "load_snapshot",
    "partition_row_starts",
    "snapshot_database",
    "write_partitioned_snapshot",
    "write_snapshot",
]

SNAPSHOT_MAGIC = b"PINCSNAP"
#: The default *written* version: one contiguous matrix.
SNAPSHOT_VERSION = 1
#: The partitioned layout written by :func:`write_partitioned_snapshot`.
SNAPSHOT_VERSION_PARTITIONED = 2
SUPPORTED_SNAPSHOT_VERSIONS = (SNAPSHOT_VERSION, SNAPSHOT_VERSION_PARTITIONED)
SNAPSHOT_SUFFIX = ".snap"

_HEADER = struct.Struct("<8sIIQQQ")
HEADER_SIZE = _HEADER.size  # 40 bytes; keeps the arrays 8-byte aligned

_PARTITION_ENTRY = struct.Struct("<QQQQ")
PARTITION_ENTRY_SIZE = _PARTITION_ENTRY.size  # 32 bytes, 8-aligned

#: Buffered (item-row, local-row) pairs between vectorized matrix
#: flushes in the streaming v2 writer; bounds writer memory to a few MiB
#: regardless of partition size.
_WRITER_FLUSH_PAIRS = 1 << 19


class SnapshotFormatError(ValueError):
    """The file is not a snapshot this reader understands."""


def default_snapshot_path(database_path: PathLike) -> Path:
    """``data.dat`` -> ``data.dat.snap`` (suffix appended, not replaced)."""
    path = Path(database_path)
    return path.with_name(path.name + SNAPSHOT_SUFFIX)


def _num_words(num_rows: int) -> int:
    return max(1, (num_rows + 63) // 64)


def write_snapshot(
    path: PathLike,
    universe: Iterable[int],
    num_rows: int,
    bitmaps: Optional[Dict[int, int]] = None,
    matrix=None,
) -> Path:
    """Serialise a vertical index to ``path`` (atomic: write + rename).

    Exactly one of ``bitmaps`` (item -> arbitrary-precision int bitmap,
    the lazy vertical view) and ``matrix`` (a ``(num_items, num_words)``
    uint64 array whose row order matches sorted ``universe``) must be
    given.  Always writes format version 1 (single contiguous matrix);
    see :func:`write_partitioned_snapshot` for the partitioned v2 layout.
    """
    if (bitmaps is None) == (matrix is None):
        raise ValueError("give exactly one of bitmaps and matrix")
    items = sorted(set(int(item) for item in universe))
    words = _num_words(num_rows)
    path = Path(path)
    temp = path.with_name(path.name + ".tmp.%d" % os.getpid())
    with open(temp, "wb") as handle:
        handle.write(
            _HEADER.pack(
                SNAPSHOT_MAGIC, SNAPSHOT_VERSION, 0,
                num_rows, len(items), words,
            )
        )
        handle.write(struct.pack("<%dq" % len(items), *items))
        if matrix is not None:
            if tuple(matrix.shape) != (len(items), words):
                raise ValueError(
                    "matrix shape %r does not match universe/rows"
                    % (tuple(matrix.shape),)
                )
            handle.write(
                _np.ascontiguousarray(matrix, dtype="<u8").tobytes()
            )
        else:
            num_bytes = words * 8
            zero = b"\x00" * num_bytes
            for item in items:
                value = bitmaps.get(item, 0)
                handle.write(value.to_bytes(num_bytes, "little") if value else zero)
    os.replace(temp, path)
    return path


def partition_row_starts(
    num_rows: int,
    num_partitions: Optional[int] = None,
    partition_rows: Optional[int] = None,
) -> List[int]:
    """Row offsets of the v2 partition boundaries (64-row aligned).

    Exactly one of ``num_partitions`` and ``partition_rows`` may be
    given (neither means one partition).  The per-partition row count is
    rounded **up** to a multiple of 64 so every partition's matrix is a
    word-aligned column slice of the logical global matrix; tiny
    databases may therefore end up with fewer partitions than requested.
    """
    if num_partitions is not None and partition_rows is not None:
        raise ValueError("give at most one of num_partitions and partition_rows")
    if num_rows <= 0:
        return [0]
    if partition_rows is None:
        if num_partitions is None:
            return [0]
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        partition_rows = -(-num_rows // num_partitions)  # ceil division
    if partition_rows < 1:
        raise ValueError("partition_rows must be at least 1")
    partition_rows = ((partition_rows + 63) // 64) * 64
    return list(range(0, num_rows, partition_rows))


def write_partitioned_snapshot(
    path: PathLike,
    universe: Iterable[int],
    num_rows: int,
    transactions: Iterable[Iterable[int]],
    *,
    num_partitions: Optional[int] = None,
    partition_rows: Optional[int] = None,
    force_python: bool = False,
) -> Path:
    """Stream ``transactions`` into a partitioned v2 snapshot at ``path``.

    ``transactions`` is consumed exactly once, in row order, and only one
    partition's matrix (``num_items x ceil(rows_p / 64)`` uint64 words)
    is resident at a time — the writer's memory is bounded by the
    *partition* size, not the database size, which is what lets
    ``pincer snapshot --partitions`` build beyond-RAM snapshots.

    Partition sizing follows :func:`partition_row_starts`; every item in
    every transaction must be in ``universe``.  Atomic like
    :func:`write_snapshot` (temp file + rename).
    """
    items = sorted(set(int(item) for item in universe))
    row_of = {item: row for row, item in enumerate(items)}
    starts = partition_row_starts(
        num_rows, num_partitions=num_partitions, partition_rows=partition_rows
    )
    bounds = starts + [max(0, num_rows)]
    table: List[Tuple[int, int, int, int]] = []
    directory_end = (
        HEADER_SIZE + 8 * len(items) + 8 + PARTITION_ENTRY_SIZE * len(starts)
    )
    offset = directory_end
    for index in range(len(starts)):
        rows_p = bounds[index + 1] - bounds[index]
        words_p = _num_words(rows_p)
        table.append((bounds[index], rows_p, words_p, offset))
        offset += 8 * len(items) * words_p

    path = Path(path)
    temp = path.with_name(path.name + ".tmp.%d" % os.getpid())
    stream = iter(transactions)
    use_numpy = HAVE_NUMPY and not force_python
    try:
        with open(temp, "wb") as handle:
            handle.write(
                _HEADER.pack(
                    SNAPSHOT_MAGIC, SNAPSHOT_VERSION_PARTITIONED, 0,
                    num_rows, len(items), _num_words(num_rows),
                )
            )
            handle.write(struct.pack("<%dq" % len(items), *items))
            handle.write(struct.pack("<Q", len(table)))
            for entry in table:
                handle.write(_PARTITION_ENTRY.pack(*entry))
            for _, rows_p, words_p, _ in table:
                if use_numpy:
                    _stream_partition_numpy(
                        handle, stream, rows_p, words_p, row_of, len(items)
                    )
                else:
                    _stream_partition_python(
                        handle, stream, rows_p, words_p, row_of, items
                    )
    except Exception:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise
    os.replace(temp, path)
    return path


def _take_rows(stream: Iterator, rows_p: int) -> Iterator:
    """The next ``rows_p`` transactions, or raise on a short stream."""
    for local in range(rows_p):
        try:
            yield next(stream)
        except StopIteration:
            raise ValueError(
                "transaction stream ended %d rows short of num_rows"
                % (rows_p - local)
            ) from None


def _stream_partition_numpy(
    handle, stream, rows_p, words_p, row_of, num_items
) -> None:
    matrix = _np.zeros((num_items, words_p), dtype="<u8")
    buf_items: List[int] = []
    buf_rows: List[int] = []

    def flush() -> None:
        if not buf_items:
            return
        item_rows = _np.asarray(buf_items, dtype=_np.intp)
        positions = _np.asarray(buf_rows, dtype=_np.int64)
        bits = _np.left_shift(
            _np.uint64(1), (positions & 63).astype(_np.uint64)
        )
        _np.bitwise_or.at(matrix, (item_rows, positions >> 6), bits)
        del buf_items[:], buf_rows[:]

    for local, transaction in enumerate(_take_rows(stream, rows_p)):
        for item in transaction:
            buf_items.append(row_of[item])
            buf_rows.append(local)
        if len(buf_items) >= _WRITER_FLUSH_PAIRS:
            flush()
    flush()
    handle.write(matrix.tobytes())


def _stream_partition_python(
    handle, stream, rows_p, words_p, row_of, items
) -> None:
    bitmaps: Dict[int, int] = {}
    for local, transaction in enumerate(_take_rows(stream, rows_p)):
        bit = 1 << local
        for item in transaction:
            if item not in row_of:
                raise KeyError(item)
            bitmaps[item] = bitmaps.get(item, 0) | bit
    num_bytes = words_p * 8
    zero = b"\x00" * num_bytes
    for item in items:
        value = bitmaps.get(item, 0)
        handle.write(value.to_bytes(num_bytes, "little") if value else zero)


def snapshot_database(
    db,
    path: Optional[PathLike] = None,
    *,
    num_partitions: Optional[int] = None,
    partition_rows: Optional[int] = None,
) -> Path:
    """Build and write the snapshot of any database exposing the db surface.

    Works for :class:`~repro.db.transaction_db.TransactionDatabase` and
    :class:`~repro.db.disk.DiskTransactionDatabase` alike: one (streaming)
    pass builds the vertical view, then it is serialised.  Returns the
    written path (default: the database file + ``.snap`` when the
    database knows its file, else ``path`` is required).

    With ``num_partitions`` or ``partition_rows`` the snapshot is written
    in the partitioned v2 layout by streaming rows (memory bounded by one
    partition); otherwise the v1 single-matrix layout is written from the
    database's vertical bitmaps.
    """
    if path is None:
        source = getattr(db, "path", None)
        if source is None:
            raise ValueError("path is required for in-memory databases")
        path = default_snapshot_path(source)
    if num_partitions is not None or partition_rows is not None:
        return write_partitioned_snapshot(
            path, db.universe, len(db), iter(db),
            num_partitions=num_partitions, partition_rows=partition_rows,
        )
    return write_snapshot(
        path, db.universe, len(db), bitmaps=db.item_bitmaps()
    )


class SnapshotPartition:
    """One row range of a snapshot, with its own mmap-able packed matrix.

    Bit ``t`` of this partition's bitmap for an item corresponds to the
    *global* transaction ``row_start + t``.  Partitions are the
    attach/detach unit of the memory-budget scheduler
    (:mod:`repro.db.outofcore`): each offers the same lazy index surface
    as a whole snapshot, over only its own bytes.
    """

    __slots__ = (
        "path", "ordinal", "row_start", "num_rows", "num_words",
        "matrix_offset", "universe",
    )

    def __init__(
        self,
        path: Path,
        ordinal: int,
        row_start: int,
        num_rows: int,
        num_words: int,
        matrix_offset: int,
        universe: Tuple[int, ...],
    ) -> None:
        self.path = path
        self.ordinal = ordinal
        self.row_start = row_start
        self.num_rows = num_rows
        self.num_words = num_words
        self.matrix_offset = matrix_offset
        self.universe = universe

    def __repr__(self) -> str:
        return "SnapshotPartition(#%d, rows [%d, %d), %d words)" % (
            self.ordinal, self.row_start, self.row_start + self.num_rows,
            self.num_words,
        )

    @property
    def num_items(self) -> int:
        return len(self.universe)

    @property
    def word_start(self) -> int:
        """This partition's first word column of the logical global matrix."""
        return self.row_start // 64

    @property
    def matrix_shape(self) -> Tuple[int, int]:
        return (self.num_items, self.num_words)

    @property
    def matrix_bytes(self) -> int:
        """Resident bytes when this partition's matrix is mapped."""
        return 8 * self.num_items * self.num_words

    def matrix(self, writable: bool = False):
        """The partition matrix as a ``numpy.memmap`` view (zero-copy)."""
        if _np is None:  # pragma: no cover - NumPy-less interpreters
            raise RuntimeError("snapshot memory-mapping requires NumPy")
        return _np.memmap(
            self.path,
            dtype="<u8",
            mode="r+" if writable else "r",
            offset=self.matrix_offset,
            shape=self.matrix_shape,
        )

    def int_bitmaps(
        self, word_lo: int = 0, word_hi: Optional[int] = None
    ) -> Dict[int, int]:
        """item -> int bitmap of *local* rows (bit 0 = ``row_start``).

        ``word_lo``/``word_hi`` select a word-aligned window of the
        partition — the pure-Python half of sub-partition windowed
        counting reads only the window's bytes per item.
        """
        if word_hi is None:
            word_hi = self.num_words
        num_bytes = (word_hi - word_lo) * 8
        stride = self.num_words * 8
        bitmaps: Dict[int, int] = {}
        with open(self.path, "rb") as handle:
            for row, item in enumerate(self.universe):
                handle.seek(self.matrix_offset + row * stride + word_lo * 8)
                bitmaps[item] = int.from_bytes(handle.read(num_bytes), "little")
        return bitmaps

    def packed_index(self) -> "PackedBitmapIndex":
        """A :class:`PackedBitmapIndex` over the memory-mapped matrix."""
        rows = {item: row for row, item in enumerate(self.universe)}
        return PackedBitmapIndex(self.matrix(), rows, self.num_rows)

    def index(self, force_python: bool = False):
        """The best available counting index backed by this partition."""
        if HAVE_NUMPY and not force_python:
            return self.packed_index()
        return IntBitmapIndex(self.int_bitmaps(), self.num_rows)


class Snapshot:
    """A validated, lazily-materialised snapshot file.

    Holds only the header metadata; the matrix is materialised on demand
    either as a zero-copy :func:`numpy.memmap` view (:meth:`matrix`,
    :meth:`packed_index`) or as pure-Python int bitmaps
    (:meth:`int_bitmaps`) on interpreters without NumPy.

    Every snapshot — v1 or v2 — exposes :attr:`partitions`; a v1 file is
    a single partition spanning all rows, so partition-aware consumers
    (the out-of-core miner, the budget scheduler) treat both uniformly.
    """

    def __init__(
        self,
        path: Path,
        version: int,
        num_rows: int,
        universe: Tuple[int, ...],
        num_words: int,
        partition_table: Optional[Sequence[Tuple[int, int, int, int]]] = None,
    ) -> None:
        self.path = path
        self.version = version
        self.num_rows = num_rows
        self.universe = universe
        self.num_words = num_words
        if partition_table is None:
            partition_table = (
                (0, num_rows, num_words, HEADER_SIZE + 8 * len(universe)),
            )
        self._partition_table = tuple(
            tuple(entry) for entry in partition_table
        )
        self._partitions: Optional[Tuple[SnapshotPartition, ...]] = None

    def __repr__(self) -> str:
        return "Snapshot(%r, v%d, |D|=%d, |I|=%d, P=%d)" % (
            str(self.path), self.version, self.num_rows,
            len(self.universe), self.num_partitions,
        )

    @property
    def num_items(self) -> int:
        return len(self.universe)

    @property
    def num_partitions(self) -> int:
        return len(self._partition_table)

    @property
    def partitions(self) -> Tuple[SnapshotPartition, ...]:
        """The row partitions, in row order (a v1 file has exactly one)."""
        if self._partitions is None:
            self._partitions = tuple(
                SnapshotPartition(
                    self.path, ordinal, row_start, num_rows, num_words,
                    matrix_offset, self.universe,
                )
                for ordinal, (row_start, num_rows, num_words, matrix_offset)
                in enumerate(self._partition_table)
            )
        return self._partitions

    @property
    def matrix_offset(self) -> int:
        """Byte offset of the bitmap matrix inside the file.

        Only meaningful when the snapshot holds one contiguous matrix
        (any v1 file, or a v2 file with a single partition).
        """
        if self.num_partitions != 1:
            raise SnapshotFormatError(
                "%s: %d-partition snapshot has no contiguous matrix; use "
                ".partitions" % (self.path, self.num_partitions)
            )
        return self._partition_table[0][3]

    @property
    def matrix_shape(self) -> Tuple[int, int]:
        return (self.num_items, self.num_words)

    @property
    def matrix_bytes(self) -> int:
        """Size of the dense logical matrix (all partitions), in bytes."""
        return 8 * self.num_items * self.num_words

    def matrix(self, writable: bool = False):
        """The bitmap matrix as a ``numpy.memmap`` view (zero-copy).

        Multi-partition snapshots have no contiguous on-disk matrix;
        use :attr:`partitions` (zero-copy per partition) or
        :meth:`packed_index` (one documented concatenation copy).
        """
        if _np is None:  # pragma: no cover - NumPy-less interpreters
            raise RuntimeError("snapshot memory-mapping requires NumPy")
        return _np.memmap(
            self.path,
            dtype="<u8",
            mode="r+" if writable else "r",
            offset=self.matrix_offset,
            shape=self.matrix_shape,
        )

    def int_bitmaps(self) -> Dict[int, int]:
        """item -> arbitrary-precision int bitmap (pure-Python read).

        Partition bitmaps concatenate exactly (boundaries are 64-row
        aligned), so the result is identical whether the file is v1 or
        partitioned v2.
        """
        combined: Dict[int, int] = dict.fromkeys(self.universe, 0)
        for partition in self.partitions:
            local = partition.int_bitmaps()
            shift = partition.row_start
            for item, value in local.items():
                if value:
                    combined[item] |= value << shift
        return combined

    def packed_index(self) -> "PackedBitmapIndex":
        """A :class:`PackedBitmapIndex` over the full matrix.

        Zero-copy (a memmap view) for single-partition snapshots.  For a
        multi-partition v2 file the partition matrices are word-aligned
        column slices of the logical matrix, so this concatenates them
        into one resident array — a copy of the full matrix, appropriate
        only for consumers that need the whole index in memory anyway
        (the shared-memory parent attach path).  Budget-respecting
        consumers use :attr:`partitions` instead.
        """
        rows = {item: row for row, item in enumerate(self.universe)}
        if self.num_partitions == 1:
            return PackedBitmapIndex(self.matrix(), rows, self.num_rows)
        if _np is None:  # pragma: no cover - NumPy-less interpreters
            raise RuntimeError("snapshot memory-mapping requires NumPy")
        matrix = _np.empty((self.num_items, self.num_words), dtype="<u8")
        for partition in self.partitions:
            lo = partition.word_start
            matrix[:, lo : lo + partition.num_words] = partition.matrix()
        return PackedBitmapIndex(matrix, rows, self.num_rows)

    def index(self, force_python: bool = False):
        """The best available counting index backed by this snapshot."""
        if HAVE_NUMPY and not force_python:
            return self.packed_index()
        return IntBitmapIndex(self.int_bitmaps(), self.num_rows)


def _load_partition_table(
    handle, path: Path, num_rows: int, num_items: int, num_words: int
) -> List[Tuple[int, int, int, int]]:
    """Parse and validate the v2 partition directory."""
    raw = handle.read(8)
    if len(raw) < 8:
        raise SnapshotFormatError(
            "%s: truncated partition directory (missing count)" % path
        )
    (count,) = struct.unpack("<Q", raw)
    if not 1 <= count <= max(1, num_rows):
        raise SnapshotFormatError(
            "%s: implausible partition count %d for %d rows"
            % (path, count, num_rows)
        )
    raw = handle.read(PARTITION_ENTRY_SIZE * count)
    if len(raw) < PARTITION_ENTRY_SIZE * count:
        raise SnapshotFormatError(
            "%s: truncated partition directory (%d of %d entries)"
            % (path, len(raw) // PARTITION_ENTRY_SIZE, count)
        )
    table = [
        _PARTITION_ENTRY.unpack_from(raw, index * PARTITION_ENTRY_SIZE)
        for index in range(count)
    ]
    directory_end = (
        HEADER_SIZE + 8 * num_items + 8 + PARTITION_ENTRY_SIZE * count
    )
    expected_row = 0
    expected_offset = directory_end
    total_words = 0
    for index, (row_start, rows_p, words_p, matrix_offset) in enumerate(table):
        if row_start != expected_row:
            raise SnapshotFormatError(
                "%s: partition %d starts at row %d, expected %d"
                % (path, index, row_start, expected_row)
            )
        if row_start % 64:
            raise SnapshotFormatError(
                "%s: partition %d start %d is not 64-row aligned"
                % (path, index, row_start)
            )
        if index < count - 1 and (rows_p <= 0 or rows_p % 64):
            raise SnapshotFormatError(
                "%s: non-final partition %d holds %d rows (need a positive "
                "multiple of 64)" % (path, index, rows_p)
            )
        if words_p != _num_words(rows_p):
            raise SnapshotFormatError(
                "%s: partition %d words %d inconsistent with its %d rows"
                % (path, index, words_p, rows_p)
            )
        if matrix_offset != expected_offset:
            raise SnapshotFormatError(
                "%s: partition %d matrix at %d, expected %d"
                % (path, index, matrix_offset, expected_offset)
            )
        expected_row += rows_p
        expected_offset += 8 * num_items * words_p
        total_words += words_p
    if expected_row != num_rows:
        raise SnapshotFormatError(
            "%s: partitions cover %d rows, header promises %d"
            % (path, expected_row, num_rows)
        )
    if total_words != num_words:
        raise SnapshotFormatError(
            "%s: partition words sum to %d, header promises %d"
            % (path, total_words, num_words)
        )
    return table


def load_snapshot(path: PathLike) -> Snapshot:
    """Validate ``path`` and return its :class:`Snapshot` header view.

    Raises :class:`SnapshotFormatError` on a bad magic, an unsupported
    version, a truncated partition directory, or a file whose size
    disagrees with its own header.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        header = handle.read(HEADER_SIZE)
        if len(header) < HEADER_SIZE:
            raise SnapshotFormatError("%s: truncated snapshot header" % path)
        magic, version, _, num_rows, num_items, num_words = _HEADER.unpack(
            header
        )
        if magic != SNAPSHOT_MAGIC:
            raise SnapshotFormatError("%s: not a snapshot file" % path)
        if version not in SUPPORTED_SNAPSHOT_VERSIONS:
            raise SnapshotFormatError(
                "%s: snapshot version %d (reader supports %s)"
                % (
                    path, version,
                    ", ".join(str(v) for v in SUPPORTED_SNAPSHOT_VERSIONS),
                )
            )
        if num_words != _num_words(num_rows):
            raise SnapshotFormatError(
                "%s: num_words %d inconsistent with num_rows %d"
                % (path, num_words, num_rows)
            )
        universe = struct.unpack(
            "<%dq" % num_items, handle.read(8 * num_items)
        )
        table: Optional[List[Tuple[int, int, int, int]]] = None
        if version == SNAPSHOT_VERSION_PARTITIONED:
            table = _load_partition_table(
                handle, path, num_rows, num_items, num_words
            )
    if table is None:
        expected = HEADER_SIZE + 8 * num_items + 8 * num_items * num_words
    else:
        last = table[-1]
        expected = last[3] + 8 * num_items * last[2]
    actual = os.path.getsize(path)
    if actual != expected:
        raise SnapshotFormatError(
            "%s: file is %d bytes, header promises %d" % (path, actual, expected)
        )
    if any(a >= b for a, b in zip(universe, universe[1:])):
        raise SnapshotFormatError("%s: universe is not strictly ascending" % path)
    return Snapshot(
        path, version, num_rows, tuple(universe), num_words,
        partition_table=table,
    )
