"""Base class shared by all support-counting engines.

Lives below :mod:`repro.db.counting` so that engine modules
(:mod:`repro.db.vertical`, :mod:`repro.db.parallel`) can subclass
:class:`SupportCounter` without importing the engine registry — the
registry imports *them*, and a shared basement module breaks the cycle.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from .._types import CountingDeadline, Itemset
from ..obs.instrument import NOOP, Instrumentation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .transaction_db import TransactionDatabase


class EngineClosedError(RuntimeError):
    """A counting request reached an engine after its :meth:`close`.

    Closing is the *external* lifecycle boundary — a session or miner
    declaring the engine's resources (worker pools, shared segments)
    released.  Engines detach and re-attach internally all the time
    (fallback-ladder steps, stall recovery), which never trips this;
    only a caller-visible ``close()`` makes later ``count()`` calls an
    error instead of a silent use-after-free of a dead worker pool.
    """


class SupportCounter:
    """Base class for counting engines; also the pass/IO accountant.

    ``deadline`` (a :func:`time.perf_counter` timestamp, or None) is
    checked periodically by engines that can: exceeding it aborts the
    pass with :class:`CountingDeadline`.

    ``obs`` is the engine's :class:`~repro.obs.instrument.Instrumentation`
    handle; miners attach theirs before mining so counting emits ``count``
    spans (nested under the miner's pass span) and engine metrics.  It
    defaults to the shared disabled bundle, whose cost in :meth:`count` is
    one attribute read and one truthiness check per pass.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.passes = 0
        self.records_read = 0
        self.itemsets_counted = 0
        self.deadline: Optional[float] = None
        self.obs: Instrumentation = NOOP
        #: True once :meth:`close` has run; further counting raises
        #: :class:`EngineClosedError`
        self.closed = False

    def _check_deadline(self) -> None:
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise CountingDeadline(
                "%s engine passed its deadline mid-pass" % self.name
            )

    def _bill_records(self, db: "TransactionDatabase") -> None:
        """Account the records one pass reads.

        The default engines read every transaction exactly once per pass.
        Engines with their own accounting source (the sharded engine sums
        what its workers *report* having read) override this to defer
        billing into :meth:`_count`.
        """
        self.records_read += len(db)

    def count(
        self, db: "TransactionDatabase", candidates: Iterable[Itemset]
    ) -> Dict[Itemset, int]:
        """Count supports of ``candidates``; bills exactly one pass.

        An empty candidate collection is free: no pass is billed and an
        empty mapping is returned.
        """
        if self.closed:
            raise EngineClosedError(
                "%s engine was closed; counting on it would run against "
                "released worker pools / shared segments" % self.name
            )
        batch = candidates if isinstance(candidates, list) else list(candidates)
        if not batch:
            return {}
        self.passes += 1
        records_before = self.records_read
        self._bill_records(db)
        self._check_deadline()
        obs = self.obs
        if obs.enabled:
            with obs.span("count", engine=self.name, batch_size=len(batch)) as span:
                result = self._count(db, batch)
                span.set(records_read=self.records_read - records_before)
            obs.counter("engine.passes").inc()
            obs.counter("engine.records_read").inc(
                self.records_read - records_before
            )
            obs.histogram("engine.batch_size").observe(len(batch))
        else:
            result = self._count(db, batch)
        # engines key their result by itemset, so duplicate candidates
        # collapse in the output; billing the result size keeps
        # ``itemsets_counted`` a count of *unique* itemsets without an
        # upfront dedup scan of every batch
        self.itemsets_counted += len(result)
        return result

    def _count(
        self, db: "TransactionDatabase", candidates: List[Itemset]
    ) -> Dict[Itemset, int]:
        raise NotImplementedError

    def note_pass_rate(self, rate: Optional[float]) -> None:
        """Observed per-candidate counting rate (candidates/second).

        Miners feed the flight-recorder rate of the pass they just
        finished; engines with an internal scheduler (the shared-memory
        plane's row/candidate chooser) use it to predict whether the next
        pass is worth parallel coordination.  Default: ignored.
        """

    def note_candidate_bound(self, bound: Optional[int]) -> None:
        """Provable upper bound on the next pass's candidate count.

        Miners feed the Geerts–Goethals–Van den Bussche bound after each
        pass; engines with a live telemetry plane publish it so an
        attached ``pincer obs top`` can show an honest in-flight ETA.
        Default: ignored.
        """

    def begin_query(self) -> None:
        """Reset per-query adaptive state on a reused engine.

        Sessions and miners call this at the start of each logical query
        so predictions learned from the *previous* query's shape (the
        miner-fed pass rate steering the shared-memory plane's
        row/candidate scheduler) cannot pollute the first-pass decisions
        of an unrelated one.  Structural state that is a property of the
        attached database — worker pools, shared segments, prefix
        caches — deliberately survives; that reuse is the whole point of
        a resident session.  Default: nothing to reset.
        """

    def close(self) -> None:
        """Release engine-held resources (worker pools, shared segments).

        Idempotent: the first call releases, later calls are free.  A
        closed engine refuses further :meth:`count` calls with
        :class:`EngineClosedError` — catching use-after-close at the
        API boundary instead of hanging on a dead worker pipe.
        Subclasses releasing real resources override :meth:`_detach`
        (also used for internal re-attach cycles), not this.
        """
        if self.closed:
            return
        self._detach()
        self.closed = True

    def _detach(self) -> None:
        """Release attached resources without sealing the engine.

        Internal lifecycle step: engines detach when they re-attach to a
        new database, step down the fallback ladder, or recover from a
        stalled pool — and must keep serving ``count()`` afterwards.
        No-op for in-process engines.
        """

    def reset(self) -> None:
        """Zero the pass/IO accounting."""
        self.passes = 0
        self.records_read = 0
        self.itemsets_counted = 0
