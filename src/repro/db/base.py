"""Base class shared by all support-counting engines.

Lives below :mod:`repro.db.counting` so that engine modules
(:mod:`repro.db.vertical`, :mod:`repro.db.parallel`) can subclass
:class:`SupportCounter` without importing the engine registry — the
registry imports *them*, and a shared basement module breaks the cycle.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from .._types import CountingDeadline, Itemset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .transaction_db import TransactionDatabase


class SupportCounter:
    """Base class for counting engines; also the pass/IO accountant.

    ``deadline`` (a :func:`time.perf_counter` timestamp, or None) is
    checked periodically by engines that can: exceeding it aborts the
    pass with :class:`CountingDeadline`.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.passes = 0
        self.records_read = 0
        self.itemsets_counted = 0
        self.deadline: Optional[float] = None

    def _check_deadline(self) -> None:
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise CountingDeadline(
                "%s engine passed its deadline mid-pass" % self.name
            )

    def count(
        self, db: "TransactionDatabase", candidates: Iterable[Itemset]
    ) -> Dict[Itemset, int]:
        """Count supports of ``candidates``; bills exactly one pass.

        An empty candidate collection is free: no pass is billed and an
        empty mapping is returned.
        """
        batch = candidates if isinstance(candidates, list) else list(candidates)
        if not batch:
            return {}
        self.passes += 1
        self.records_read += len(db)
        self._check_deadline()
        # engines key their result by itemset, so duplicate candidates
        # collapse in the output; billing the result size keeps
        # ``itemsets_counted`` a count of *unique* itemsets without an
        # upfront dedup scan of every batch
        result = self._count(db, batch)
        self.itemsets_counted += len(result)
        return result

    def _count(
        self, db: "TransactionDatabase", candidates: List[Itemset]
    ) -> Dict[Itemset, int]:
        raise NotImplementedError

    def reset(self) -> None:
        """Zero the pass/IO accounting."""
        self.passes = 0
        self.records_read = 0
        self.itemsets_counted = 0
