"""In-memory transaction database.

This is the substrate every miner in the library runs on.  A database is a
bag of transactions, each a set of integer items (paper Section 2.1).  The
store is *horizontal* (one row per transaction) because that is what the
levelwise algorithms scan; a *vertical* bitmap view (one bitmap per item,
bit ``t`` set iff transaction ``t`` contains the item) is built lazily for
the bitmap counting engine.

Support thresholds: the paper defines support as a *fraction* of the
transactions.  :meth:`TransactionDatabase.absolute_support` converts a
user-facing fraction into the absolute transaction count the counters
compare against, rounding up so that "support above the threshold" matches
the usual ``count >= ceil(fraction * |D|)`` convention.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from .._types import Itemset


class TransactionDatabase:
    """A set of transactions over an integer item universe.

    Parameters
    ----------
    transactions:
        Any iterable of item iterables.  Each transaction is normalised to a
        ``frozenset`` of ints; empty transactions are kept (they count toward
        ``|D|`` but support nothing, matching the benchmark generator which
        can emit size-0 baskets only if asked to).
    universe:
        Optional explicit item universe.  When omitted, the universe is the
        set of items that occur in at least one transaction.  An explicit
        universe matters when reproducing the paper's setup where ``N=1000``
        items exist but only some occur.
    """

    def __init__(
        self,
        transactions: Iterable[Iterable[int]],
        universe: Optional[Iterable[int]] = None,
    ) -> None:
        self._transactions: List[FrozenSet[int]] = [
            frozenset(transaction) for transaction in transactions
        ]
        if universe is None:
            occurring: set = set()
            for transaction in self._transactions:
                occurring.update(transaction)
            self._universe: Itemset = tuple(sorted(occurring))
        else:
            self._universe = tuple(sorted(set(universe)))
            universe_set = frozenset(self._universe)
            for position, transaction in enumerate(self._transactions):
                if not transaction <= universe_set:
                    raise ValueError(
                        "transaction %d contains items outside the universe"
                        % position
                    )
        self._bitmaps: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[FrozenSet[int]]:
        return iter(self._transactions)

    def __getitem__(self, index: int) -> FrozenSet[int]:
        return self._transactions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransactionDatabase):
            return NotImplemented
        return (
            self._transactions == other._transactions
            and self._universe == other._universe
        )

    def __repr__(self) -> str:
        return "TransactionDatabase(|D|=%d, |I|=%d)" % (
            len(self._transactions),
            len(self._universe),
        )

    @property
    def transactions(self) -> Sequence[FrozenSet[int]]:
        """The transactions, in insertion order."""
        return self._transactions

    @property
    def universe(self) -> Itemset:
        """All items of the database, as a canonical itemset."""
        return self._universe

    @property
    def num_items(self) -> int:
        return len(self._universe)

    def average_transaction_size(self) -> float:
        """Mean basket length — the generator's ``|T|`` parameter, measured."""
        if not self._transactions:
            return 0.0
        return sum(len(transaction) for transaction in self._transactions) / len(
            self._transactions
        )

    # ------------------------------------------------------------------
    # support
    # ------------------------------------------------------------------

    def absolute_support(self, fraction: float) -> int:
        """Convert a fractional minimum support into a transaction count.

        The result is at least 1 so that the empty database edge case and
        ``fraction=0`` do not declare never-seen itemsets frequent.

        >>> TransactionDatabase([[1], [1], [2]]).absolute_support(0.5)
        2
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("minimum support must be a fraction in [0, 1]")
        return max(1, ceil(fraction * len(self._transactions)))

    def support_count(self, candidate: Iterable[int]) -> int:
        """Absolute support of one itemset, by full scan.

        Convenience for examples and tests; the miners use the engines in
        :mod:`repro.db.counting` which amortise the scan over a whole
        candidate set.
        """
        wanted = frozenset(candidate)
        return sum(1 for transaction in self._transactions if wanted <= transaction)

    def support(self, candidate: Iterable[int]) -> float:
        """Fractional support of one itemset.

        >>> TransactionDatabase([[1, 2], [1], [2]]).support([1])
        0.6666666666666666
        """
        if not self._transactions:
            return 0.0
        return self.support_count(candidate) / len(self._transactions)

    def item_support_counts(self) -> Dict[int, int]:
        """Support count of every universe item (the pass-1 1-D array).

        Items that never occur are reported with count 0.
        """
        counts: Dict[int, int] = {item: 0 for item in self._universe}
        for transaction in self._transactions:
            for item in transaction:
                counts[item] += 1
        return counts

    # ------------------------------------------------------------------
    # vertical view
    # ------------------------------------------------------------------

    def item_bitmaps(self) -> Dict[int, int]:
        """Vertical bitmaps: item -> int with bit ``t`` set iff ``t`` has it.

        Built once and cached; arbitrary-precision ints make the AND/popcount
        combination in the bitmap counter a handful of C-level operations.
        """
        if self._bitmaps is None:
            bitmaps = {item: 0 for item in self._universe}
            for position, transaction in enumerate(self._transactions):
                bit = 1 << position
                for item in transaction:
                    bitmaps[item] |= bit
            self._bitmaps = bitmaps
        return self._bitmaps

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_itemset_supports(
        cls, supported: Dict[Itemset, int]
    ) -> "TransactionDatabase":
        """Build a database where each key occurs as a basket ``value`` times.

        Handy for tests that need exact supports:

        >>> db = TransactionDatabase.from_itemset_supports({(1, 2): 2, (3,): 1})
        >>> len(db)
        3
        """
        transactions: List[Tuple[int, ...]] = []
        for basket, copies in supported.items():
            if copies < 0:
                raise ValueError("negative multiplicity for %r" % (basket,))
            transactions.extend([tuple(basket)] * copies)
        return cls(transactions)

    def restricted_to(self, items: Iterable[int]) -> "TransactionDatabase":
        """Project every transaction onto ``items`` (baskets may become empty).

        Useful for drilling into a discovered maximal itemset.
        """
        keep = frozenset(items)
        return TransactionDatabase(
            [transaction & keep for transaction in self._transactions],
            universe=sorted(keep),
        )

    def sample(self, indices: Iterable[int]) -> "TransactionDatabase":
        """A new database containing the transactions at ``indices``."""
        picked = [self._transactions[index] for index in indices]
        return TransactionDatabase(picked, universe=self._universe)

    def occurring_items(self) -> Itemset:
        """Items with non-zero support, as a canonical itemset."""
        seen: set = set()
        for transaction in self._transactions:
            seen.update(transaction)
        return tuple(sorted(seen))
