"""Prefix-trie candidate store, an alternative counting structure.

Later Apriori implementations (e.g. Borgelt's) replaced the hash tree with
an item-prefix trie: every candidate corresponds to a unique root-to-node
path, so counting never needs the de-duplication bookkeeping the hash tree
does.  Unlike the hash tree, a single trie can hold candidates of *mixed*
lengths, which suits Pincer-Search's passes where the bottom-up candidates
(length ``k``) and the MFCS elements (arbitrary length) are counted
together in one scan.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from .._types import Itemset


class _TrieNode:
    __slots__ = ("children", "candidate_index")

    def __init__(self) -> None:
        self.children: Dict[int, "_TrieNode"] = {}
        self.candidate_index: Optional[int] = None


class CandidateTrie:
    """A trie mapping canonical itemsets to support counters."""

    def __init__(self, candidates: Iterable[Itemset] = ()) -> None:
        self._root = _TrieNode()
        self._candidates: List[Itemset] = []
        self._max_length = 0
        for candidate in candidates:
            self.insert(candidate)

    def __len__(self) -> int:
        return len(self._candidates)

    def __contains__(self, candidate: Itemset) -> bool:
        node = self._find(candidate)
        return node is not None and node.candidate_index is not None

    def insert(self, candidate: Itemset) -> None:
        """Add one canonical itemset; inserting twice is a no-op."""
        node = self._root
        for item in candidate:
            node = node.children.setdefault(item, _TrieNode())
        if node.candidate_index is None:
            node.candidate_index = len(self._candidates)
            self._candidates.append(candidate)
            self._max_length = max(self._max_length, len(candidate))

    def _find(self, candidate: Itemset) -> Optional[_TrieNode]:
        node = self._root
        for item in candidate:
            child = node.children.get(item)
            if child is None:
                return None
            node = child
        return node

    # ------------------------------------------------------------------

    def count_database(
        self,
        transactions: Sequence[frozenset],
        deadline_check: Optional[Callable[[], None]] = None,
    ) -> List[int]:
        """Support counts parallel to insertion order.

        ``deadline_check`` (if given) is invoked every few hundred
        transactions; it may raise to abort the scan.
        """
        counts = [0] * len(self._candidates)
        for position, transaction in enumerate(transactions):
            if deadline_check is not None and position % 256 == 0:
                deadline_check()
            items = sorted(transaction)
            self._count(self._root, items, 0, counts)
        return counts

    def _count(
        self, node: _TrieNode, items: List[int], start: int, counts: List[int]
    ) -> None:
        if node.candidate_index is not None:
            counts[node.candidate_index] += 1
        if not node.children:
            return
        for position in range(start, len(items)):
            child = node.children.get(items[position])
            if child is not None:
                self._count(child, items, position + 1, counts)

    def counts_by_itemset(
        self,
        transactions: Sequence[frozenset],
        deadline_check: Optional[Callable[[], None]] = None,
    ) -> Dict[Itemset, int]:
        """Like :meth:`count_database` but keyed by itemset."""
        counts = self.count_database(transactions, deadline_check)
        return dict(zip(self._candidates, counts))

    def itemsets(self) -> List[Itemset]:
        """Stored itemsets in insertion order."""
        return list(self._candidates)
