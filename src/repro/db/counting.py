"""Support-counting engines.

A counting engine answers one question: given a database and a collection
of candidate itemsets, what is the absolute support of each candidate?
Every call corresponds to **one pass over the database** — the unit the
paper's Figures 3 and 4 report — regardless of how the engine is
implemented internally.  Engines track how many passes they have served and
how many transaction records those passes read, giving the I/O model the
benchmark harness reports.

Engines provided:

``naive``
    Per-transaction subset tests against a flat candidate list.  This is
    the moral equivalent of the paper's linked-list implementation
    (Section 4.1.1) and the fairest backend for Apriori-vs-Pincer
    comparisons.
``hashtree``
    The classic Agrawal–Srikant hash tree (:mod:`repro.db.hash_tree`), one
    tree per candidate length.
``trie``
    An item-prefix trie holding all candidate lengths at once
    (:mod:`repro.db.trie`).
``bitmap``
    Vertical bitmaps: support is the popcount of the AND of the item
    bitmaps.  Fastest in CPython; used as the default for large runs.

The 1-D / 2-D array fast paths for passes 1 and 2 (Özden et al., adopted by
the paper in Section 4.1.1) are :func:`count_singletons` and
:func:`count_pairs`; the miners call them directly for the first two passes.
"""

from __future__ import annotations

import time
from collections import defaultdict
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence

from .._types import CountingDeadline, Itemset
from .hash_tree import HashTree
from .transaction_db import TransactionDatabase
from .trie import CandidateTrie

__all__ = [
    "BitmapCounter",
    "CountingDeadline",
    "HashTreeCounter",
    "NaiveCounter",
    "SupportCounter",
    "TrieCounter",
    "available_engines",
    "count_pairs",
    "count_singletons",
    "get_counter",
]


class SupportCounter:
    """Base class for counting engines; also the pass/IO accountant.

    ``deadline`` (a :func:`time.perf_counter` timestamp, or None) is
    checked periodically by engines that can: exceeding it aborts the
    pass with :class:`CountingDeadline`.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.passes = 0
        self.records_read = 0
        self.itemsets_counted = 0
        self.deadline: Optional[float] = None

    def _check_deadline(self) -> None:
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise CountingDeadline(
                "%s engine passed its deadline mid-pass" % self.name
            )

    def count(
        self, db: TransactionDatabase, candidates: Iterable[Itemset]
    ) -> Dict[Itemset, int]:
        """Count supports of ``candidates``; bills exactly one pass.

        An empty candidate collection is free: no pass is billed and an
        empty mapping is returned.
        """
        unique = list(dict.fromkeys(candidates))
        if not unique:
            return {}
        self.passes += 1
        self.records_read += len(db)
        self.itemsets_counted += len(unique)
        return self._count(db, unique)

    def _count(
        self, db: TransactionDatabase, candidates: List[Itemset]
    ) -> Dict[Itemset, int]:
        raise NotImplementedError

    def reset(self) -> None:
        """Zero the pass/IO accounting."""
        self.passes = 0
        self.records_read = 0
        self.itemsets_counted = 0


class NaiveCounter(SupportCounter):
    """Flat scan: each transaction is tested against each candidate."""

    name = "naive"

    def _count(
        self, db: TransactionDatabase, candidates: List[Itemset]
    ) -> Dict[Itemset, int]:
        counts = dict.fromkeys(candidates, 0)
        as_sets = [(candidate, frozenset(candidate)) for candidate in candidates]
        for position, transaction in enumerate(db):
            if position % 512 == 0:
                self._check_deadline()
            for candidate, candidate_set in as_sets:
                if candidate_set <= transaction:
                    counts[candidate] += 1
        return counts


class HashTreeCounter(SupportCounter):
    """Hash-tree engine; one tree per candidate length, one logical pass."""

    name = "hashtree"

    def __init__(self, branch: int = 8, leaf_capacity: int = 16) -> None:
        super().__init__()
        self._branch = branch
        self._leaf_capacity = leaf_capacity

    def _count(
        self, db: TransactionDatabase, candidates: List[Itemset]
    ) -> Dict[Itemset, int]:
        by_length: Dict[int, List[Itemset]] = defaultdict(list)
        for candidate in candidates:
            by_length[len(candidate)].append(candidate)
        counts: Dict[Itemset, int] = {}
        for _, group in sorted(by_length.items()):
            tree = HashTree(group, branch=self._branch, leaf_capacity=self._leaf_capacity)
            counts.update(tree.counts_by_itemset(db.transactions))
        # Mixed lengths share the single billed pass: a real implementation
        # would walk all the trees per transaction, as the paper's pass 6
        # counts C_k and MFCS together.
        if () in counts:
            counts[()] = len(db)
        return counts


class TrieCounter(SupportCounter):
    """Prefix-trie engine; naturally handles mixed candidate lengths."""

    name = "trie"

    def _count(
        self, db: TransactionDatabase, candidates: List[Itemset]
    ) -> Dict[Itemset, int]:
        trie = CandidateTrie(candidates)
        return trie.counts_by_itemset(db.transactions)


class BitmapCounter(SupportCounter):
    """Vertical bitmap engine.

    Support of ``{a, b, c}`` is ``popcount(bitmap[a] & bitmap[b] & bitmap[c])``.
    Candidates mentioning items outside the universe have support 0.
    """

    name = "bitmap"

    def _count(
        self, db: TransactionDatabase, candidates: List[Itemset]
    ) -> Dict[Itemset, int]:
        bitmaps = db.item_bitmaps()
        full = (1 << len(db)) - 1
        counts: Dict[Itemset, int] = {}
        for position, candidate in enumerate(candidates):
            if position % 4096 == 0:
                self._check_deadline()
            accumulator = full
            for item in candidate:
                item_bitmap = bitmaps.get(item)
                if item_bitmap is None:
                    accumulator = 0
                    break
                accumulator &= item_bitmap
                if not accumulator:
                    break
            counts[candidate] = _popcount(accumulator)
        return counts


def _popcount(value: int) -> int:
    """Bit count compatible with Python < 3.10."""
    try:
        return value.bit_count()  # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - legacy interpreters
        return bin(value).count("1")


_ENGINES = {
    "naive": NaiveCounter,
    "hashtree": HashTreeCounter,
    "trie": TrieCounter,
    "bitmap": BitmapCounter,
}

DEFAULT_ENGINE = "bitmap"


def get_counter(name: Optional[str] = None) -> SupportCounter:
    """Instantiate a counting engine by name.

    >>> get_counter("naive").name
    'naive'
    >>> get_counter().name
    'bitmap'
    """
    if name is None or name == "auto":
        name = DEFAULT_ENGINE
    try:
        engine = _ENGINES[name]
    except KeyError:
        raise ValueError(
            "unknown counting engine %r (choose from %s)"
            % (name, ", ".join(sorted(_ENGINES)))
        ) from None
    return engine()


def available_engines() -> List[str]:
    """Names of all registered engines."""
    return sorted(_ENGINES)


# ----------------------------------------------------------------------
# pass-1 / pass-2 array fast paths (paper Section 4.1.1)
# ----------------------------------------------------------------------


def count_singletons(db: TransactionDatabase) -> Dict[Itemset, int]:
    """Pass-1 support counts via a 1-D array over the item universe.

    "The support counting phase runs very fast by using an array, since no
    searching is needed."  Returns counts keyed by 1-itemsets, including
    zero-support universe items.
    """
    return {(item,): count for item, count in db.item_support_counts().items()}


def count_pairs(
    db: TransactionDatabase, frequent_items: Sequence[int]
) -> Dict[Itemset, int]:
    """Pass-2 support counts of all pairs of ``frequent_items``.

    Implements the 2-D array idea: every pair of frequent items in each
    transaction bumps one cell, so "no candidate generation process for
    2-itemsets is needed".  Pairs that never co-occur are reported with
    count 0 so callers can classify all of them.
    """
    keep = frozenset(frequent_items)
    counts: Dict[Itemset, int] = {
        pair: 0 for pair in combinations(sorted(keep), 2)
    }
    for transaction in db:
        present = sorted(transaction & keep)
        for pair in combinations(present, 2):
            counts[pair] += 1
    return counts
