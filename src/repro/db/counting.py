"""Support-counting engines.

A counting engine answers one question: given a database and a collection
of candidate itemsets, what is the absolute support of each candidate?
Every call corresponds to **one pass over the database** — the unit the
paper's Figures 3 and 4 report — regardless of how the engine is
implemented internally.  Engines track how many passes they have served and
how many transaction records those passes read, giving the I/O model the
benchmark harness reports.

Engines provided:

``naive``
    Per-transaction subset tests against a flat candidate list.  This is
    the moral equivalent of the paper's linked-list implementation
    (Section 4.1.1) and the fairest backend for Apriori-vs-Pincer
    comparisons.
``hashtree``
    The classic Agrawal–Srikant hash tree (:mod:`repro.db.hash_tree`), one
    tree per candidate length.
``trie``
    An item-prefix trie holding all candidate lengths at once
    (:mod:`repro.db.trie`).
``bitmap``
    Vertical bitmaps: support is the popcount of the AND of the item
    bitmaps, with candidates sharing prefix intersections through a
    bounded LRU cache that persists across passes
    (:class:`repro.db.vertical.LruPrefixCache`).
``packed``
    Vertical bitmaps packed into ``uint64`` NumPy words; whole candidate
    batches are counted with vectorized AND + popcount
    (:mod:`repro.db.vertical`).  Falls back to pure Python when NumPy is
    absent.  The fastest engine, and what ``auto`` resolves to on large
    databases when NumPy is installed.
``roaring``
    The compressed tier (:mod:`repro.db.roaring`): per-item hybrid
    containers (sorted-array / packed-bitmap / run) in 2^16-row chunks,
    with container-level fused intersect+popcount that skips absent
    chunks.  Wins on sparse skewed data; resolves itself down the
    roaring → packed → bitmap → python ladder when the data is dense or
    NumPy is missing, always byte-identically.
``sharded``
    Row shards counted in parallel worker processes and summed
    (:mod:`repro.db.parallel`); each worker holds a persistent
    shard-local packed index.
``shm``
    The zero-copy shared-memory plane (:mod:`repro.db.shm`): one packed
    index published once via ``multiprocessing.shared_memory`` (or a
    memory-mapped snapshot file), attached — not copied — by every
    worker, with a per-pass adaptive choice between row-sharding and
    candidate work-stealing.  Falls back to ``sharded`` machinery, then
    serial, when shared memory is unavailable.
``partitioned``
    The out-of-core tier (:mod:`repro.db.outofcore`): row partitions of
    a v2 snapshot attached/counted/detached under a byte budget, with
    sub-partition windowed counting when even one partition exceeds it.
    Support is summed over partitions (additive over row ranges), so
    counts are identical to the in-memory engines while the resident
    index never exceeds ``memory_budget``.

The 1-D / 2-D array fast paths for passes 1 and 2 (Özden et al., adopted by
the paper in Section 4.1.1) are :func:`count_singletons` and
:func:`count_pairs`; the miners call them directly for the first two passes.
"""

from __future__ import annotations

import operator
import weakref
from collections import defaultdict
from dataclasses import dataclass, field
from itertools import combinations
from typing import Any, Dict, List, Optional, Sequence

from .._types import CountingDeadline, Itemset
from .base import SupportCounter
from .hash_tree import HashTree
from .outofcore import PartitionedCounter
from .parallel import ShardedCounter
from .roaring import RoaringCounter, measure_density
from .shm import ShmShardedCounter
from .transaction_db import TransactionDatabase
from .trie import CandidateTrie
from .vertical import (
    HAVE_NUMPY,
    LruPrefixCache,
    PackedCounter,
    PrefixIntersector,
    popcount,
)

__all__ = [
    "AUTO_PACKED_MIN_ROWS",
    "AUTO_ROARING_MAX_DENSITY",
    "AUTO_ROARING_MIN_ROWS",
    "BitmapCounter",
    "CountingDeadline",
    "DEFAULT_ENGINE",
    "EngineDecision",
    "HashTreeCounter",
    "NaiveCounter",
    "PackedCounter",
    "PartitionedCounter",
    "RoaringCounter",
    "ShardedCounter",
    "ShmShardedCounter",
    "SupportCounter",
    "TrieCounter",
    "available_engines",
    "count_pairs",
    "count_singletons",
    "engine_decision",
    "get_counter",
    "resolve_counter",
    "select_engine",
]

#: Kept as a module-level alias so existing imports keep working; the
#: per-call ``try/except AttributeError`` it used to wrap is now resolved
#: once at import time in :mod:`repro.db.vertical`.
_popcount = popcount


class NaiveCounter(SupportCounter):
    """Flat scan: each transaction is tested against each candidate."""

    name = "naive"

    def _count(
        self, db: TransactionDatabase, candidates: List[Itemset]
    ) -> Dict[Itemset, int]:
        counts = dict.fromkeys(candidates, 0)
        # iterate the deduped keys: base.count no longer pre-dedups batches
        as_sets = [(candidate, frozenset(candidate)) for candidate in counts]
        for position, transaction in enumerate(db):
            if position % 512 == 0:
                self._check_deadline()
            for candidate, candidate_set in as_sets:
                if candidate_set <= transaction:
                    counts[candidate] += 1
        return counts


class HashTreeCounter(SupportCounter):
    """Hash-tree engine; one tree per candidate length, one logical pass."""

    name = "hashtree"

    def __init__(self, branch: int = 8, leaf_capacity: int = 16) -> None:
        super().__init__()
        self._branch = branch
        self._leaf_capacity = leaf_capacity

    def _count(
        self, db: TransactionDatabase, candidates: List[Itemset]
    ) -> Dict[Itemset, int]:
        by_length: Dict[int, List[Itemset]] = defaultdict(list)
        for candidate in candidates:
            by_length[len(candidate)].append(candidate)
        counts: Dict[Itemset, int] = {}
        for _, group in sorted(by_length.items()):
            tree = HashTree(group, branch=self._branch, leaf_capacity=self._leaf_capacity)
            counts.update(
                tree.counts_by_itemset(
                    db.transactions, deadline_check=self._check_deadline
                )
            )
        # Mixed lengths share the single billed pass: a real implementation
        # would walk all the trees per transaction, as the paper's pass 6
        # counts C_k and MFCS together.
        if () in counts:
            counts[()] = len(db)
        return counts


class TrieCounter(SupportCounter):
    """Prefix-trie engine; naturally handles mixed candidate lengths."""

    name = "trie"

    def _count(
        self, db: TransactionDatabase, candidates: List[Itemset]
    ) -> Dict[Itemset, int]:
        trie = CandidateTrie(candidates)
        return trie.counts_by_itemset(
            db.transactions, deadline_check=self._check_deadline
        )


class BitmapCounter(SupportCounter):
    """Vertical bitmap engine.

    Support of ``{a, b, c}`` is ``popcount(bitmap[a] & bitmap[b] & bitmap[c])``.
    Candidates mentioning items outside the universe have support 0.
    Counting walks the candidates in sorted order through an
    :class:`~repro.db.vertical.LruPrefixCache` that persists across passes
    against the same database, so the running AND of a shared
    ``(k-1)``-prefix is computed once per prefix — and the prefixes of
    pass ``k+1`` (exactly the candidates of pass ``k``) start warm.  The
    cache is bounded (LRU per prefix length), so long low-support runs
    cannot grow it without limit; current size and evictions surface as
    ``engine.prefix_cache.size`` / ``engine.prefix_cache.evictions``.
    """

    name = "bitmap"

    #: per-level bound on the persistent prefix cache (entries per length)
    CACHE_CAPACITY_PER_LEVEL = 4096

    def __init__(self) -> None:
        super().__init__()
        #: cumulative :class:`LruPrefixCache` accounting across passes
        self.prefix_cache_hits = 0
        self.prefix_cache_misses = 0
        self.prefix_cache_evictions = 0
        self._cache: Optional[LruPrefixCache] = None
        self._cache_db = None  # weakref to the db the cache was built for

    def _cache_for(self, db: TransactionDatabase) -> LruPrefixCache:
        """Persistent per-database prefix cache (weakref invalidation)."""
        if (
            self._cache is None
            or self._cache_db is None
            or self._cache_db() is not db
        ):
            bitmaps = db.item_bitmaps()
            full = (1 << len(db)) - 1
            self._cache = LruPrefixCache(
                bitmaps.get,
                operator.and_,
                full,
                capacity_per_level=self.CACHE_CAPACITY_PER_LEVEL,
            )
            self._cache_db = weakref.ref(db)
        return self._cache

    def _count(
        self, db: TransactionDatabase, candidates: List[Itemset]
    ) -> Dict[Itemset, int]:
        cache = self._cache_for(db)
        hits_before = cache.hits
        misses_before = cache.misses
        evictions_before = cache.evictions
        counts: Dict[Itemset, int] = {}
        for position, candidate in enumerate(sorted(candidates)):
            if position % 4096 == 0:
                self._check_deadline()
            value = cache.intersection(candidate)
            counts[candidate] = popcount(value) if value is not None else 0
        hits = cache.hits - hits_before
        misses = cache.misses - misses_before
        evictions = cache.evictions - evictions_before
        self.prefix_cache_hits += hits
        self.prefix_cache_misses += misses
        self.prefix_cache_evictions += evictions
        if self.obs.enabled:
            self.obs.counter("prefix_cache.hits").inc(hits)
            self.obs.counter("prefix_cache.misses").inc(misses)
            self.obs.counter("engine.prefix_cache.evictions").inc(evictions)
            self.obs.gauge("engine.prefix_cache.size").set(cache.size)
        return {candidate: counts[candidate] for candidate in candidates}

    def reset(self) -> None:
        super().reset()
        self.prefix_cache_hits = 0
        self.prefix_cache_misses = 0
        self.prefix_cache_evictions = 0
        self._cache = None
        self._cache_db = None


_ENGINES = {
    "naive": NaiveCounter,
    "hashtree": HashTreeCounter,
    "trie": TrieCounter,
    "bitmap": BitmapCounter,
    "packed": PackedCounter,
    "roaring": RoaringCounter,
    "sharded": ShardedCounter,
    "shm": ShmShardedCounter,
    "partitioned": PartitionedCounter,
}

DEFAULT_ENGINE = "bitmap"

#: ``auto`` resolves to ``packed`` at or above this many transactions
#: (when NumPy is importable).  Below it, batch setup costs rival the
#: counting itself and plain int bitmaps win.
AUTO_PACKED_MIN_ROWS = 512

#: ``auto`` upgrades ``packed`` to ``roaring`` only at or above this many
#: transactions: compression pays through skipped words, and below ~4k
#: rows the flat matrix fits in cache no matter how sparse the columns.
AUTO_ROARING_MIN_ROWS = 4096

#: ...and only when mean column density is at or below this.  Denser
#: data builds mostly bitmap containers, where the flat packed matrix
#: with its vectorized batch kernel is the better representation (the
#: roaring engine itself would pick its packed rung anyway).
AUTO_ROARING_MAX_DENSITY = 0.05


@dataclass
class EngineDecision:
    """An engine choice plus the measured evidence that produced it.

    ``engine`` is what :func:`get_counter` should instantiate; ``evidence``
    is a JSON-ready dict recorded into ``MiningStats.engine_evidence`` so
    traces show *why* a tier was picked, not just which.  For ``auto`` the
    evidence carries the density measurement (rows / items / nnz /
    density) and a human-readable ``reason``; explicit engine names pass
    through with ``reason: "explicit"`` and no measurement cost.
    """

    engine: str
    evidence: Dict[str, Any] = field(default_factory=dict)


def engine_decision(db, name: Optional[str] = None) -> EngineDecision:
    """Resolve an engine name against a concrete db, keeping the evidence.

    The ``auto`` policy, in order:

    1. no NumPy or a small database -> :data:`DEFAULT_ENGINE` (plain int
       bitmaps; batch setup costs would rival the counting);
    2. sparse and large (density <= :data:`AUTO_ROARING_MAX_DENSITY`,
       rows >= :data:`AUTO_ROARING_MIN_ROWS`) -> ``roaring``;
    3. otherwise -> ``packed``.
    """
    if name is not None and name != "auto":
        return EngineDecision(name, {"reason": "explicit"})
    if db is None:
        return EngineDecision(DEFAULT_ENGINE, {"reason": "no database"})
    if not HAVE_NUMPY or len(db) < AUTO_PACKED_MIN_ROWS:
        return EngineDecision(
            DEFAULT_ENGINE,
            {
                "rows": len(db),
                "reason": (
                    "numpy unavailable"
                    if not HAVE_NUMPY
                    else "below packed row threshold (%d)"
                    % AUTO_PACKED_MIN_ROWS
                ),
            },
        )
    evidence = measure_density(db)
    if (
        evidence["rows"] >= AUTO_ROARING_MIN_ROWS
        and evidence["density"] <= AUTO_ROARING_MAX_DENSITY
    ):
        evidence["reason"] = "sparse (density %.4f <= %.2f)" % (
            evidence["density"],
            AUTO_ROARING_MAX_DENSITY,
        )
        return EngineDecision("roaring", evidence)
    evidence["reason"] = (
        "dense (density %.4f > %.2f)"
        % (evidence["density"], AUTO_ROARING_MAX_DENSITY)
        if evidence["rows"] >= AUTO_ROARING_MIN_ROWS
        else "below roaring row threshold (%d)" % AUTO_ROARING_MIN_ROWS
    )
    return EngineDecision("packed", evidence)


def get_counter(name: Optional[str] = None) -> SupportCounter:
    """Instantiate a counting engine by name.

    >>> get_counter("naive").name
    'naive'
    >>> get_counter().name
    'bitmap'
    """
    if name is None or name == "auto":
        name = DEFAULT_ENGINE
    try:
        engine = _ENGINES[name]
    except KeyError:
        raise ValueError(
            "unknown counting engine %r (choose from %s)"
            % (name, ", ".join(sorted(_ENGINES)))
        ) from None
    return engine()


def select_engine(db, name: Optional[str] = None) -> str:
    """Resolve an engine name (possibly ``auto``) against a concrete db.

    The name-only view of :func:`engine_decision` — ``auto`` picks
    ``roaring`` for large sparse databases, ``packed`` for large dense
    ones (NumPy permitting), else :data:`DEFAULT_ENGINE`.  Explicit names
    pass through unchanged (and unvalidated — :func:`get_counter` raises
    on unknown names).  Callers that want the density evidence behind the
    choice should use :func:`engine_decision` directly.
    """
    return engine_decision(db, name).engine


def resolve_counter(db, name, counter):
    """The miners' engine-resolution step: ``(engine, decision)``.

    A caller-supplied ``counter`` wins (decision records its name with
    reason ``caller-supplied``); otherwise the name — usually ``auto`` —
    is resolved against the database via :func:`engine_decision` and the
    evidence travels with the instantiated engine into ``MiningStats``.
    """
    if counter is not None:
        return counter, EngineDecision(
            getattr(counter, "name", ""), {"reason": "caller-supplied"}
        )
    decision = engine_decision(db, name)
    return get_counter(decision.engine), decision


def available_engines() -> List[str]:
    """Names of all registered engines."""
    return sorted(_ENGINES)


# ----------------------------------------------------------------------
# pass-1 / pass-2 array fast paths (paper Section 4.1.1)
# ----------------------------------------------------------------------


def count_singletons(db: TransactionDatabase) -> Dict[Itemset, int]:
    """Pass-1 support counts via a 1-D array over the item universe.

    "The support counting phase runs very fast by using an array, since no
    searching is needed."  Returns counts keyed by 1-itemsets, including
    zero-support universe items.
    """
    return {(item,): count for item, count in db.item_support_counts().items()}


def count_pairs(
    db: TransactionDatabase, frequent_items: Sequence[int]
) -> Dict[Itemset, int]:
    """Pass-2 support counts of all pairs of ``frequent_items``.

    Implements the 2-D array idea: every pair of frequent items in each
    transaction bumps one cell, so "no candidate generation process for
    2-itemsets is needed".  Pairs that never co-occur are reported with
    count 0 so callers can classify all of them.
    """
    keep = frozenset(frequent_items)
    counts: Dict[Itemset, int] = {
        pair: 0 for pair in combinations(sorted(keep), 2)
    }
    for transaction in db:
        present = sorted(transaction & keep)
        for pair in combinations(present, 2):
            counts[pair] += 1
    return counts
