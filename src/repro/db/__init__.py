"""Transaction-database substrate: storage, I/O, and support counting."""

from .counting import (
    BitmapCounter,
    HashTreeCounter,
    NaiveCounter,
    SupportCounter,
    TrieCounter,
    available_engines,
    count_pairs,
    count_singletons,
    get_counter,
)
from .disk import DiskTransactionDatabase
from .hash_tree import HashTree
from .io import load, load_basket, load_csv, load_json, save, save_basket, save_csv, save_json
from .transaction_db import TransactionDatabase
from .trie import CandidateTrie

__all__ = [
    "BitmapCounter",
    "CandidateTrie",
    "DiskTransactionDatabase",
    "HashTree",
    "HashTreeCounter",
    "NaiveCounter",
    "SupportCounter",
    "TransactionDatabase",
    "TrieCounter",
    "available_engines",
    "count_pairs",
    "count_singletons",
    "get_counter",
    "load",
    "load_basket",
    "load_csv",
    "load_json",
    "save",
    "save_basket",
    "save_csv",
    "save_json",
]
