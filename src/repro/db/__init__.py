"""Transaction-database substrate: storage, I/O, and support counting."""

from .counting import (
    BitmapCounter,
    EngineDecision,
    HashTreeCounter,
    NaiveCounter,
    PackedCounter,
    ShardedCounter,
    ShmShardedCounter,
    SupportCounter,
    TrieCounter,
    available_engines,
    count_pairs,
    count_singletons,
    engine_decision,
    get_counter,
    select_engine,
)
from .disk import DiskTransactionDatabase
from .snapshot import (
    Snapshot,
    SnapshotFormatError,
    default_snapshot_path,
    load_snapshot,
    snapshot_database,
    write_snapshot,
)
from .hash_tree import HashTree
from .io import load, load_basket, load_csv, load_json, save, save_basket, save_csv, save_json
from .roaring import ChunkedIntIndex, RoaringCounter, RoaringIndex, measure_density
from .transaction_db import TransactionDatabase
from .trie import CandidateTrie
from .vertical import (
    HAVE_NUMPY,
    IntBitmapIndex,
    PackedBitmapIndex,
    PrefixIntersector,
)

__all__ = [
    "BitmapCounter",
    "CandidateTrie",
    "ChunkedIntIndex",
    "DiskTransactionDatabase",
    "EngineDecision",
    "HAVE_NUMPY",
    "HashTree",
    "HashTreeCounter",
    "IntBitmapIndex",
    "NaiveCounter",
    "PackedBitmapIndex",
    "PackedCounter",
    "PrefixIntersector",
    "RoaringCounter",
    "RoaringIndex",
    "ShardedCounter",
    "ShmShardedCounter",
    "Snapshot",
    "SnapshotFormatError",
    "SupportCounter",
    "TransactionDatabase",
    "TrieCounter",
    "available_engines",
    "default_snapshot_path",
    "load_snapshot",
    "snapshot_database",
    "write_snapshot",
    "count_pairs",
    "count_singletons",
    "engine_decision",
    "get_counter",
    "measure_density",
    "select_engine",
    "load",
    "load_basket",
    "load_csv",
    "load_json",
    "save",
    "save_basket",
    "save_csv",
    "save_json",
]
