"""Transaction-database substrate: storage, I/O, and support counting."""

from .counting import (
    BitmapCounter,
    HashTreeCounter,
    NaiveCounter,
    PackedCounter,
    ShardedCounter,
    ShmShardedCounter,
    SupportCounter,
    TrieCounter,
    available_engines,
    count_pairs,
    count_singletons,
    get_counter,
    select_engine,
)
from .disk import DiskTransactionDatabase
from .snapshot import (
    Snapshot,
    SnapshotFormatError,
    default_snapshot_path,
    load_snapshot,
    snapshot_database,
    write_snapshot,
)
from .hash_tree import HashTree
from .io import load, load_basket, load_csv, load_json, save, save_basket, save_csv, save_json
from .transaction_db import TransactionDatabase
from .trie import CandidateTrie
from .vertical import (
    HAVE_NUMPY,
    IntBitmapIndex,
    PackedBitmapIndex,
    PrefixIntersector,
)

__all__ = [
    "BitmapCounter",
    "CandidateTrie",
    "DiskTransactionDatabase",
    "HAVE_NUMPY",
    "HashTree",
    "HashTreeCounter",
    "IntBitmapIndex",
    "NaiveCounter",
    "PackedBitmapIndex",
    "PackedCounter",
    "PrefixIntersector",
    "ShardedCounter",
    "ShmShardedCounter",
    "Snapshot",
    "SnapshotFormatError",
    "SupportCounter",
    "TransactionDatabase",
    "TrieCounter",
    "available_engines",
    "default_snapshot_path",
    "load_snapshot",
    "snapshot_database",
    "write_snapshot",
    "count_pairs",
    "count_singletons",
    "get_counter",
    "select_engine",
    "load",
    "load_basket",
    "load_csv",
    "load_json",
    "save",
    "save_basket",
    "save_csv",
    "save_json",
]
