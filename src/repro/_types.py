"""Basement type aliases shared across subpackages.

Lives below both :mod:`repro.core` and :mod:`repro.db` so that the
database substrate can name the itemset type without importing the core
package (whose ``__init__`` pulls in the miners, which import the
substrate — a cycle otherwise).
"""

from typing import Tuple

#: Canonical itemset type: items sorted ascending, no duplicates.
Itemset = Tuple[int, ...]

#: The empty itemset.  Frequent by convention (support = 1.0).
EMPTY: Itemset = ()


class CountingDeadline(Exception):
    """A counting or candidate-generation step ran past its deadline.

    Raised mid-pass by deadline-aware primitives (the bitmap/naive
    engines, the Apriori join); miners with a ``time_budget`` translate
    it into :class:`repro.core.result.MiningTimeout`.  Lives in the
    basement module because both the substrate (:mod:`repro.db`) and the
    core raise it.
    """
