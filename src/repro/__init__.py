"""pincer-repro: a reproduction of Pincer-Search (Lin & Kedem, EDBT 1998).

Discovering the maximum frequent set (MFS) — the set of all *maximal*
frequent itemsets — by combining the bottom-up Apriori search with a
restricted top-down search over the maximum frequent candidate set (MFCS).

Quick start::

    from repro import TransactionDatabase, pincer_search

    db = TransactionDatabase([[1, 2, 3], [1, 2], [2, 3], [1, 2, 3]])
    result = pincer_search(db, min_support=0.5)
    result.sorted_mfs()   # -> [(1, 2, 3)]

The public surface:

* :func:`pincer_search` / :class:`PincerSearch` — the paper's algorithm
  (adaptive by default, ``adaptive=False`` for the pure variant);
* :func:`apriori` / :class:`Apriori` — the baseline it is evaluated
  against, on the same substrate;
* :class:`TransactionDatabase` plus :mod:`repro.db.io` loaders;
* :class:`QuestConfig` / :func:`generate` — the IBM Quest synthetic
  benchmark generator;
* :func:`rules_from_mfs` / :func:`generate_rules` — association-rule
  generation (stage 2), including the paper's MFS-first strategy;
* :mod:`repro.bench` — the harness regenerating the paper's Figures 3-4;
* :mod:`repro.obs` — span tracing, metrics, and run logging
  (:func:`capture` builds the ``obs`` handle every miner accepts).
"""

from .algorithms.apriori import Apriori, apriori
from .algorithms.brute_force import brute_force, brute_force_frequents, brute_force_mfs
from .algorithms.partition import PartitionMiner, partition_mine
from .algorithms.randomized import RandomizedMFS, randomized_mfs
from .algorithms.sampling import SamplingMiner, sampling_mine
from .algorithms.topdown import TopDown, top_down
from .core.adaptive import AdaptivePolicy, AlwaysMaintain, NeverMaintain
from .core.itemset import Itemset, itemset
from .core.mfcs import MFCS
from .core.pincer import PincerSearch, pincer_search
from .core.predicate import PredicatePincer, maximal_satisfying_sets
from .core.result import MiningResult, MiningTimeout
from .core.stats import MiningStats, PassStats
from .datagen.configs import parse_name
from .datagen.quest import QuestConfig, QuestGenerator, generate
from .db.counting import available_engines, get_counter
from .db.disk import DiskTransactionDatabase
from .db.io import load, save
from .db.transaction_db import TransactionDatabase
from .obs import Instrumentation, capture, configure_logging, get_logger
from .rules.from_mfs import rules_from_mfs
from .rules.generation import AssociationRule, generate_rules, interesting_rules

__version__ = "1.0.0"

__all__ = [
    "AdaptivePolicy",
    "AlwaysMaintain",
    "Apriori",
    "AssociationRule",
    "DiskTransactionDatabase",
    "Instrumentation",
    "Itemset",
    "MFCS",
    "MiningResult",
    "MiningStats",
    "MiningTimeout",
    "NeverMaintain",
    "PartitionMiner",
    "PassStats",
    "PincerSearch",
    "PredicatePincer",
    "QuestConfig",
    "QuestGenerator",
    "RandomizedMFS",
    "SamplingMiner",
    "TopDown",
    "TransactionDatabase",
    "__version__",
    "apriori",
    "available_engines",
    "brute_force",
    "brute_force_frequents",
    "brute_force_mfs",
    "capture",
    "configure_logging",
    "generate",
    "generate_rules",
    "get_counter",
    "get_logger",
    "interesting_rules",
    "itemset",
    "load",
    "maximal_satisfying_sets",
    "parse_name",
    "partition_mine",
    "pincer_search",
    "randomized_mfs",
    "rules_from_mfs",
    "sampling_mine",
    "save",
    "top_down",
]
