"""``pincer serve``: a resident mining session behind a unix socket.

One :class:`~repro.core.session.MiningSession` holds the hot database —
engine attached, support cache warm — and a small threaded front-end
answers line-delimited JSON queries against it.  The wire protocol is
one JSON object per line, both directions:

    {"op": "mine",  "min_support": 1.5}            -> MFS + query stats
    {"op": "rules", "min_support": 1.5,
     "min_confidence": 80, "depth": 2}             -> association rules
    {"op": "stats"}                                -> session/cache stats
    {"op": "ping"}                                 -> {"ok": true}
    {"op": "shutdown"}                             -> stops the server

``min_support`` is a percentage, matching the CLI flags.  Responses
always carry ``"ok"``; failures carry ``"error"`` and never kill the
connection (malformed JSON gets an error line back).

Admission control: the engine serializes passes, so concurrency is a
queue — what needs bounding is how much *provable work* may pile up
behind the lock.  Each query is priced before it runs using the
session's :meth:`~repro.core.session.MiningSession.estimate_cost`
(Geerts–Goethals–Van den Bussche candidate bound over the frequent
singletons; warm queries price near zero because their passes resolve
from cache).  A query whose price would push the in-flight total over
the budget is rejected with ``{"ok": false, "error": "busy"}`` and a
``retry`` hint — except when nothing is in flight, where rejection
would be a livelock, so the queue always drains.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from typing import Dict, List, Optional

from .core.session import MiningSession
from .obs.instrument import NOOP, Instrumentation
from .obs.logsetup import get_logger

__all__ = ["MiningServer", "request", "DEFAULT_COST_BUDGET"]

logger = get_logger("serve")

#: Default in-flight cost budget, in candidate-bound units.  A cold
#: query on an all-unknown database prices at the full singleton bound;
#: the default admits a couple of cold queries' worth of backlog before
#: shedding load.
DEFAULT_COST_BUDGET = 2_000_000

#: A warm query's passes resolve from cache; its queue price is a token
#: constant so even thousands of them cannot starve admission entirely.
WARM_COST = 1


class MiningServer:
    """Threaded line-JSON server over one resident session.

    Parameters
    ----------
    session:
        The warm :class:`MiningSession` to answer from.  The server
        borrows it — :meth:`close` shuts the server down but leaves the
        session to its owner.
    socket_path:
        Unix socket path; an existing stale socket file is replaced.
    cost_budget:
        Admission budget in candidate-bound units (see module docs).
    obs:
        Per-query telemetry sink (``serve.*`` metrics); defaults to the
        session's instrumentation.
    """

    def __init__(
        self,
        session: MiningSession,
        socket_path: str,
        cost_budget: int = DEFAULT_COST_BUDGET,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.session = session
        self.socket_path = socket_path
        self.cost_budget = cost_budget
        self.obs = obs if obs is not None else session.obs
        self._inflight_cost = 0
        self._inflight_queries = 0
        self._admission = threading.Lock()
        self._shutdown = threading.Event()
        self._close_lock = threading.Lock()
        self._closed = False
        self.queries_answered = 0
        self.queries_rejected = 0
        if os.path.exists(socket_path):
            os.unlink(socket_path)
        server = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                for raw in self.rfile:
                    line = raw.strip()
                    if not line:
                        continue
                    reply = server._handle_line(line)
                    try:
                        self.wfile.write(
                            (json.dumps(reply) + "\n").encode("utf-8")
                        )
                        self.wfile.flush()
                    except (BrokenPipeError, OSError):
                        return
                    if server._shutdown.is_set():
                        # the reply (possibly to the shutdown request
                        # itself) is flushed; now the listener can die.
                        # close() is serialized and idempotent, so every
                        # draining connection may safely kick it.
                        threading.Thread(
                            target=server.close, daemon=True
                        ).start()
                        return

        class _Server(socketserver.ThreadingUnixStreamServer):
            daemon_threads = True
            allow_reuse_address = True
            # a unix-socket connect against a full backlog fails with
            # EAGAIN rather than queueing like TCP, so the default
            # backlog of 5 bounces concurrent clients before admission
            # control ever sees them
            request_queue_size = 128

        self._server = _Server(socket_path, _Handler)
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def serve_forever(self) -> None:
        """Serve until :meth:`close` or a ``shutdown`` request."""
        logger.info("serving %s on %s", self.session.key, self.socket_path)
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> "MiningServer":
        """Serve on a background thread (tests, embedding)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="pincer-serve", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop accepting, close the listener, remove the socket file.

        Serialized on a lock so a concurrent caller (the ``finally`` in
        :func:`main` racing the handler-spawned close after a
        ``shutdown`` request) blocks until cleanup has actually
        finished rather than returning while the socket file is still
        being removed.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            self._shutdown.set()
            self._server.shutdown()
            self._server.server_close()
            thread = self._thread
            if thread is not None and thread is not threading.current_thread():
                thread.join(timeout=5.0)
            self._thread = None
            if os.path.exists(self.socket_path):
                try:
                    os.unlink(self.socket_path)
                except OSError:  # pragma: no cover - races with rm
                    pass

    def __enter__(self) -> "MiningServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------

    def _handle_line(self, line: bytes) -> Dict:
        try:
            message = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return {"ok": False, "error": "malformed json"}
        if not isinstance(message, dict):
            return {"ok": False, "error": "request must be a json object"}
        op = message.get("op")
        try:
            if op == "ping":
                return {"ok": True, "op": "ping"}
            if op == "stats":
                return {
                    "ok": True, "op": "stats",
                    "session": self.session.stats(),
                    "served": self.queries_answered,
                    "rejected": self.queries_rejected,
                }
            if op == "shutdown":
                # only mark it: the handler loop flushes this reply
                # first and *then* kicks close(), so the requester
                # always hears back before the listener dies
                self._shutdown.set()
                return {"ok": True, "op": "shutdown"}
            if op == "mine":
                return self._handle_mine(message)
            if op == "rules":
                return self._handle_rules(message)
            return {"ok": False, "error": "unknown op %r" % (op,)}
        except Exception as exc:
            logger.exception("query failed: %s", message)
            return {"ok": False, "error": "%s: %s" % (type(exc).__name__, exc)}

    def _parse_support(self, message: Dict) -> float:
        min_support = message.get("min_support")
        if not isinstance(min_support, (int, float)) or not (
            0 < min_support <= 100
        ):
            raise ValueError("min_support must be a percentage in (0, 100]")
        return float(min_support) / 100.0

    def _price(self, fraction: float) -> int:
        estimate = self.session.estimate_cost(fraction)
        if estimate["warm"]:
            return WARM_COST
        return max(WARM_COST, int(estimate["candidate_bound"]))

    def _admit(self, cost: int) -> bool:
        """Reserve ``cost`` units, or refuse.  An idle server always
        admits — rejecting with nothing in flight would livelock."""
        with self._admission:
            if (
                self._inflight_queries > 0
                and self._inflight_cost + cost > self.cost_budget
            ):
                return False
            self._inflight_cost += cost
            self._inflight_queries += 1
            return True

    def _release(self, cost: int) -> None:
        with self._admission:
            self._inflight_cost -= cost
            self._inflight_queries -= 1

    def _handle_mine(self, message: Dict) -> Dict:
        fraction = self._parse_support(message)
        warm = bool(message.get("warm", True))
        cost = self._price(fraction)
        if not self._admit(cost):
            self.queries_rejected += 1
            if self.obs.enabled:
                self.obs.counter("serve.rejected").inc()
            return {
                "ok": False, "error": "busy", "cost": cost,
                "budget": self.cost_budget, "retry": True,
            }
        started = time.perf_counter()
        try:
            result = self.session.mine(fraction, warm_start=warm)
        finally:
            self._release(cost)
        seconds = time.perf_counter() - started
        self.queries_answered += 1
        if self.obs.enabled:
            self.obs.counter("serve.queries").inc()
            self.obs.histogram("serve.seconds").observe(seconds)
        mfs = [list(member) for member in result.sorted_mfs()]
        return {
            "ok": True, "op": "mine",
            "min_support": message["min_support"],
            "min_support_count": result.min_support_count,
            "mfs": mfs,
            "supports": [
                result.support_count(tuple(member)) for member in mfs
            ],
            "passes": result.stats.num_passes,
            "seconds": seconds,
            "cost": cost,
            "warm": cost == WARM_COST,
            "cache": self.session.cache.stats(),
        }

    def _handle_rules(self, message: Dict) -> Dict:
        fraction = self._parse_support(message)
        min_confidence = float(message.get("min_confidence", 80.0)) / 100.0
        depth = message.get("depth", 2)
        cost = self._price(fraction)
        if not self._admit(cost):
            self.queries_rejected += 1
            return {"ok": False, "error": "busy", "retry": True}
        started = time.perf_counter()
        try:
            rules = self.session.rules(
                fraction, min_confidence=min_confidence, depth=depth
            )
        finally:
            self._release(cost)
        self.queries_answered += 1
        return {
            "ok": True, "op": "rules",
            "count": len(rules),
            "rules": [
                {
                    "antecedent": list(rule.antecedent),
                    "consequent": list(rule.consequent),
                    "confidence": rule.confidence,
                    "support": rule.support,
                }
                for rule in rules
            ],
            "seconds": time.perf_counter() - started,
        }


# ----------------------------------------------------------------------
# client helper
# ----------------------------------------------------------------------


def _connect(socket_path: str, timeout: float) -> socket.socket:
    """Connect with retry: a momentarily full listen backlog surfaces
    as ``EAGAIN``/``ECONNREFUSED`` on unix sockets, which a client
    stampede (exactly what admission control exists for) provokes."""
    deadline = time.monotonic() + timeout
    delay = 0.01
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(socket_path)
            return sock
        except (BlockingIOError, ConnectionRefusedError):
            sock.close()
            if time.monotonic() >= deadline:
                raise
            time.sleep(delay)
            delay = min(0.2, delay * 2)


def request(
    socket_path: str, message: Dict, timeout: float = 60.0
) -> Dict:
    """Send one request to a running server; returns the reply object."""
    with _connect(socket_path, timeout) as sock:
        sock.sendall((json.dumps(message) + "\n").encode("utf-8"))
        chunks: List[bytes] = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    raw = b"".join(chunks)
    if not raw:
        raise ConnectionError("server closed the connection without a reply")
    return json.loads(raw.decode("utf-8").splitlines()[0])


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``pincer serve`` (see :mod:`repro.cli`)."""
    import argparse

    from .db import io as db_io

    parser = argparse.ArgumentParser(
        prog="pincer serve",
        description="answer mining queries over a unix socket",
    )
    parser.add_argument("input", help="database file (.dat/.basket/.csv/.json)")
    parser.add_argument(
        "--socket", required=True, metavar="PATH",
        help="unix socket path to listen on",
    )
    parser.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="packed-bitmap snapshot of the input (written by "
        "'pincer snapshot')",
    )
    parser.add_argument("--engine", default="auto")
    parser.add_argument("--kernel", default=None)
    parser.add_argument(
        "--cost-budget", type=int, default=DEFAULT_COST_BUDGET,
        help="admission-control budget in candidate-bound units",
    )
    parser.add_argument(
        "--telemetry", nargs="?", const="auto", default=None, metavar="NAME",
        help="publish live shard heartbeats ('pincer obs top NAME')",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the server's metrics registry as JSON on exit",
    )
    args = parser.parse_args(argv)

    from .obs import capture

    obs = capture(
        metrics_path=args.metrics_out,
        producer="pincer-serve",
        telemetry=args.telemetry,
    )
    if args.snapshot:
        from .db.disk import DiskTransactionDatabase

        db = DiskTransactionDatabase(args.input, snapshot=args.snapshot)
        key = args.snapshot
    else:
        db = db_io.load(args.input)
        key = args.input
    kernel = None if args.kernel in (None, "auto") else args.kernel
    try:
        with MiningSession(
            db, engine=args.engine, kernel=kernel, obs=obs, key=key
        ) as session:
            server = MiningServer(
                session, args.socket, cost_budget=args.cost_budget, obs=obs
            )
            print(
                "serving %s on %s (engine %s)"
                % (key, args.socket, session.decision.engine),
                flush=True,
            )
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
            finally:
                server.close()
            print(
                "served %d queries (%d rejected); cache %s"
                % (
                    server.queries_answered,
                    server.queries_rejected,
                    session.cache.stats(),
                ),
                flush=True,
            )
    finally:
        obs.finish()
    return 0
