"""``pincer serve``: a resident mining session behind a unix socket.

One :class:`~repro.core.session.MiningSession` holds the hot database —
engine attached, support cache warm — and a small threaded front-end
answers line-delimited JSON queries against it.  The wire protocol is
one JSON object per line, both directions:

    {"op": "mine",  "min_support": 1.5}            -> MFS + query stats
    {"op": "rules", "min_support": 1.5,
     "min_confidence": 80, "depth": 2}             -> association rules
    {"op": "stats"}                                -> session/daemon stats
    {"op": "metrics"}                              -> Prometheus text
    {"op": "ping"}                                 -> {"ok": true}
    {"op": "shutdown"}                             -> stops the server

``min_support`` is a percentage, matching the CLI flags.  Responses
always carry ``"ok"``; failures carry ``"error"`` and never kill the
connection (malformed JSON gets an error line back).

Admission control: the engine serializes passes, so concurrency is a
queue — what needs bounding is how much *provable work* may pile up
behind the lock.  Each query is priced before it runs using the
session's :meth:`~repro.core.session.MiningSession.estimate_cost`
(Geerts–Goethals–Van den Bussche candidate bound over the frequent
singletons; warm queries price near zero because their passes resolve
from cache).  A query whose price would push the in-flight total over
the budget is rejected with ``{"ok": false, "error": "busy"}`` and a
``retry`` hint — except when nothing is in flight, where rejection
would be a livelock, so the queue always drains.

Query-plane observability: every ``mine``/``rules`` query gets a wire
``request_id`` that is stamped onto all of its spans (one trace file,
many interleaved queries — ``pincer obs report --request ID`` isolates
one), one schema-v4 record in the JSONL access log
(:class:`~repro.obs.requestlog.RequestLog`, ``--access-log``), and an
observation in the rolling SLO window
(:class:`~repro.obs.slo.SloWindow`) that powers the windowed
p50/p95/p99 the ``metrics`` op exports.  Replies — including ``busy``
rejections — carry ``eta_seconds``: the in-flight candidate-bound
backlog divided by the session's EWMA data-plane counting rate, i.e.
the admission price finally talking back to the client (null until the
first counted pass calibrates the rate).
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import socketserver
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .core.session import MiningSession
from .obs.export import metrics_to_prometheus
from .obs.instrument import NOOP, Instrumentation
from .obs.logsetup import get_logger
from .obs.metrics import MetricsRegistry
from .obs.requestlog import RequestLog
from .obs.slo import SloWindow

__all__ = ["MiningServer", "request", "DEFAULT_COST_BUDGET"]

logger = get_logger("serve")

#: Default in-flight cost budget, in candidate-bound units.  A cold
#: query on an all-unknown database prices at the full singleton bound;
#: the default admits a couple of cold queries' worth of backlog before
#: shedding load.
DEFAULT_COST_BUDGET = 2_000_000

#: A warm query's passes resolve from cache; its queue price is a token
#: constant so even thousands of them cannot starve admission entirely.
WARM_COST = 1

#: Prefix for the Prometheus exposition the ``metrics`` op returns.
METRICS_PREFIX = "pincer_"


class MiningServer:
    """Threaded line-JSON server over one resident session.

    Parameters
    ----------
    session:
        The warm :class:`MiningSession` to answer from.  The server
        borrows it — :meth:`close` shuts the server down but leaves the
        session to its owner.
    socket_path:
        Unix socket path; an existing stale socket file is replaced.
    cost_budget:
        Admission budget in candidate-bound units (see module docs).
    obs:
        Per-query telemetry sink (``serve.*`` metrics, request-scoped
        spans); defaults to the session's instrumentation.
    request_log:
        Optional :class:`RequestLog`; the server borrows it (the owner
        closes it) and writes one record per ``mine``/``rules`` query.
    slo:
        Rolling SLO window; None builds a default five-minute
        :class:`SloWindow` unless ``enable_slo`` is False.
    enable_slo:
        Set False to run without windowed metrics (benchmark baselines).
    """

    def __init__(
        self,
        session: MiningSession,
        socket_path: str,
        cost_budget: int = DEFAULT_COST_BUDGET,
        obs: Optional[Instrumentation] = None,
        request_log: Optional[RequestLog] = None,
        slo: Optional[SloWindow] = None,
        enable_slo: bool = True,
    ) -> None:
        self.session = session
        self.socket_path = socket_path
        self.cost_budget = cost_budget
        self.obs = obs if obs is not None else session.obs
        self.request_log = request_log
        self.slo = slo if slo is not None else (SloWindow() if enable_slo else None)
        # the ``metrics`` wire op must work without --metrics-out, so a
        # disabled obs bundle still gets a real registry of its own
        self.metrics = self.obs.metrics if self.obs.enabled else MetricsRegistry()
        self._inflight_cost = 0
        self._inflight_queries = 0
        self._admission = threading.Lock()
        self._shutdown = threading.Event()
        self._close_lock = threading.Lock()
        self._closed = False
        self.queries_answered = 0
        self.queries_rejected = 0
        self.started_ts = time.time()
        self._started_mono = time.monotonic()
        self._request_ids = itertools.count(1)
        if os.path.exists(socket_path):
            os.unlink(socket_path)
        server = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                for raw in self.rfile:
                    line = raw.strip()
                    if not line:
                        continue
                    reply = server._handle_line(line)
                    try:
                        self.wfile.write(
                            (json.dumps(reply) + "\n").encode("utf-8")
                        )
                        self.wfile.flush()
                    except (BrokenPipeError, OSError):
                        return
                    if server._shutdown.is_set():
                        # the reply (possibly to the shutdown request
                        # itself) is flushed; now the listener can die.
                        # close() is serialized and idempotent, so every
                        # draining connection may safely kick it.
                        threading.Thread(
                            target=server.close, daemon=True
                        ).start()
                        return

        class _Server(socketserver.ThreadingUnixStreamServer):
            daemon_threads = True
            allow_reuse_address = True
            # a unix-socket connect against a full backlog fails with
            # EAGAIN rather than queueing like TCP, so the default
            # backlog of 5 bounces concurrent clients before admission
            # control ever sees them
            request_queue_size = 128

        self._server = _Server(socket_path, _Handler)
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def serve_forever(self) -> None:
        """Serve until :meth:`close` or a ``shutdown`` request."""
        logger.info("serving %s on %s", self.session.key, self.socket_path)
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> "MiningServer":
        """Serve on a background thread (tests, embedding)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="pincer-serve", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop accepting, close the listener, remove the socket file.

        Serialized on a lock so a concurrent caller (the ``finally`` in
        :func:`main` racing the handler-spawned close after a
        ``shutdown`` request) blocks until cleanup has actually
        finished rather than returning while the socket file is still
        being removed.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            self._shutdown.set()
            self._server.shutdown()
            self._server.server_close()
            thread = self._thread
            if thread is not None and thread is not threading.current_thread():
                thread.join(timeout=5.0)
            self._thread = None
            if os.path.exists(self.socket_path):
                try:
                    os.unlink(self.socket_path)
                except OSError:  # pragma: no cover - races with rm
                    pass

    def __enter__(self) -> "MiningServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------

    def _handle_line(self, line: bytes) -> Dict:
        try:
            message = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return {"ok": False, "error": "malformed json"}
        if not isinstance(message, dict):
            return {"ok": False, "error": "request must be a json object"}
        op = message.get("op")
        try:
            if op == "ping":
                return {"ok": True, "op": "ping"}
            if op == "stats":
                return self._handle_stats()
            if op == "metrics":
                return self._handle_metrics()
            if op == "shutdown":
                # only mark it: the handler loop flushes this reply
                # first and *then* kicks close(), so the requester
                # always hears back before the listener dies
                self._shutdown.set()
                return {"ok": True, "op": "shutdown"}
            if op == "mine":
                return self._serve_query("mine", message, self._run_mine)
            if op == "rules":
                return self._serve_query("rules", message, self._run_rules)
            return {"ok": False, "error": "unknown op %r" % (op,)}
        except Exception as exc:
            logger.exception("query failed: %s", message)
            return {"ok": False, "error": "%s: %s" % (type(exc).__name__, exc)}

    def _parse_support(self, message: Dict) -> float:
        min_support = message.get("min_support")
        if not isinstance(min_support, (int, float)) or not (
            0 < min_support <= 100
        ):
            raise ValueError("min_support must be a percentage in (0, 100]")
        return float(min_support) / 100.0

    def _price(self, fraction: float) -> Tuple[int, Dict[str, Any]]:
        """The admission price plus the estimate it came from."""
        estimate = self.session.estimate_cost(fraction)
        if estimate["warm"]:
            return WARM_COST, estimate
        return max(WARM_COST, int(estimate["candidate_bound"])), estimate

    def _admit(self, cost: int) -> Tuple[bool, int]:
        """Reserve ``cost`` units, or refuse.  An idle server always
        admits — rejecting with nothing in flight would livelock.
        Returns ``(admitted, in-flight cost after the decision)``; the
        rejection counter moves under the same lock, so ``stats``
        replies are exact under concurrent handler threads."""
        with self._admission:
            if (
                self._inflight_queries > 0
                and self._inflight_cost + cost > self.cost_budget
            ):
                self.queries_rejected += 1
                return False, self._inflight_cost
            self._inflight_cost += cost
            self._inflight_queries += 1
            return True, self._inflight_cost

    def _release(self, cost: int) -> None:
        with self._admission:
            self._inflight_cost -= cost
            self._inflight_queries -= 1

    def _mint_request_id(self) -> str:
        return "req-%d-%06d" % (os.getpid(), next(self._request_ids))

    def _eta_seconds(self, backlog_cost: int) -> Optional[float]:
        """Candidate-bound backlog over the observed counting rate.

        The bound is provable and the rate is the session's data-plane
        EWMA, so this errs long rather than short; it is null until the
        first counted pass calibrates the estimator.
        """
        rate = self.session.rate.rate
        if rate is None or rate <= 0:
            return None
        return round(backlog_cost / rate, 6)

    def _log_request(
        self,
        record: Dict[str, Any],
        spans: Optional[List[Dict[str, Any]]] = None,
        **fields: Any,
    ) -> None:
        # schema v4 admits null only for eta_s; a runner that has no
        # value for an optional field (rules has no pass count) omits
        # the key rather than writing null
        record.update(
            (key, value)
            for key, value in fields.items()
            if value is not None or key == "eta_s"
        )
        if self.request_log is not None:
            self.request_log.log(record, spans=spans)

    # ------------------------------------------------------------------
    # the one instrumented admission/measure wrapper (mine and rules)
    # ------------------------------------------------------------------

    def _serve_query(self, op: str, message: Dict, runner) -> Dict:
        """Price, admit, run, and account one wire query.

        Both query ops flow through here, so the access log, the
        ``serve.*`` instruments, and the SLO window see rules traffic
        exactly as they see mine traffic.
        """
        request_id = self._mint_request_id()
        record: Dict[str, Any] = {"id": request_id, "op": op}
        arrived = time.perf_counter()
        try:
            fraction = self._parse_support(message)
        except ValueError as exc:
            self._log_request(
                record,
                ok=False,
                admitted=False,
                error=str(exc),
                seconds=time.perf_counter() - arrived,
            )
            return {
                "ok": False, "op": op, "request_id": request_id,
                "error": str(exc),
            }
        record["min_support"] = float(message["min_support"])
        cost, estimate = self._price(fraction)
        warm = cost == WARM_COST
        record.update(threshold=int(estimate["threshold"]), cost=cost, warm=warm)
        admitted, inflight_cost = self._admit(cost)
        if not admitted:
            # quote how long the present backlog plus this query would
            # take — the retry hint a client should sleep on
            eta = self._eta_seconds(inflight_cost + cost)
            self.metrics.counter("serve.rejected").inc()
            if self.slo is not None:
                self.slo.observe(rejected=True)
            self._log_request(
                record,
                ok=False,
                admitted=False,
                error="busy",
                eta_s=eta,
                seconds=time.perf_counter() - arrived,
            )
            return {
                "ok": False, "error": "busy", "op": op,
                "request_id": request_id, "cost": cost,
                "budget": self.cost_budget, "retry": True,
                "eta_seconds": eta,
            }
        # admitted: the quoted ETA covers everything now in flight,
        # including this query's own bound
        eta = self._eta_seconds(inflight_cost)
        timings: Dict[str, float] = {}
        spans: List[Dict[str, Any]] = []
        cache_before = self.session.cache.stats()
        started = time.perf_counter()
        try:
            payload, result_size, passes = runner(
                message, fraction, request_id, spans, timings
            )
        except Exception as exc:
            seconds = time.perf_counter() - started
            self.metrics.counter("serve.errors").inc()
            if self.slo is not None:
                self.slo.observe(seconds=seconds, error=True)
            self._log_request(
                record,
                ok=False,
                admitted=True,
                error="%s: %s" % (type(exc).__name__, exc),
                queue_wait_s=round(timings.get("queue_wait_s", 0.0), 6),
                seconds=seconds,
                eta_s=eta,
            )
            raise
        finally:
            self._release(cost)
        seconds = time.perf_counter() - started
        cache_after = self.session.cache.stats()
        # deltas are attributed to this query; under concurrency they
        # are approximate (the session lock serializes the mining, so
        # misattribution needs interleaved bookkeeping windows)
        cache_hits = max(0, cache_after["hits"] - cache_before["hits"])
        cache_misses = max(0, cache_after["misses"] - cache_before["misses"])
        with self._admission:
            self.queries_answered += 1
        self.metrics.counter("serve.queries").inc()
        self.metrics.histogram("serve.seconds").observe(seconds)
        if self.slo is not None:
            self.slo.observe(
                seconds=seconds,
                cache_hits=cache_hits,
                cache_misses=cache_misses,
            )
        self._log_request(
            record,
            spans=spans,
            ok=True,
            admitted=True,
            queue_wait_s=round(timings.get("queue_wait_s", 0.0), 6),
            seconds=seconds,
            passes=passes,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            result_size=result_size,
            eta_s=eta,
        )
        reply = {
            "ok": True, "op": op, "request_id": request_id,
            "seconds": seconds, "cost": cost, "warm": warm,
            "eta_seconds": eta,
        }
        reply.update(payload)
        return reply

    def _run_mine(
        self,
        message: Dict,
        fraction: float,
        request_id: str,
        spans: List[Dict[str, Any]],
        timings: Dict[str, float],
    ) -> Tuple[Dict[str, Any], int, int]:
        warm_start = bool(message.get("warm", True))
        result = self.session.mine(
            fraction,
            warm_start=warm_start,
            request_id=request_id,
            span_sink=spans,
            timings=timings,
        )
        mfs = [list(member) for member in result.sorted_mfs()]
        payload = {
            "min_support": message["min_support"],
            "min_support_count": result.min_support_count,
            "mfs": mfs,
            "supports": [
                result.support_count(tuple(member)) for member in mfs
            ],
            "passes": result.stats.num_passes,
            "cache": self.session.cache.stats(),
        }
        return payload, len(mfs), result.stats.num_passes

    def _run_rules(
        self,
        message: Dict,
        fraction: float,
        request_id: str,
        spans: List[Dict[str, Any]],
        timings: Dict[str, float],
    ) -> Tuple[Dict[str, Any], int, Optional[int]]:
        min_confidence = float(message.get("min_confidence", 80.0)) / 100.0
        depth = message.get("depth", 2)
        rules = self.session.rules(
            fraction,
            min_confidence=min_confidence,
            depth=depth,
            request_id=request_id,
            span_sink=spans,
            timings=timings,
        )
        payload = {
            "count": len(rules),
            "rules": [
                {
                    "antecedent": list(rule.antecedent),
                    "consequent": list(rule.consequent),
                    "confidence": rule.confidence,
                    "support": rule.support,
                }
                for rule in rules
            ],
        }
        return payload, len(rules), None

    # ------------------------------------------------------------------
    # introspection ops
    # ------------------------------------------------------------------

    def _vitals(self) -> Dict[str, Any]:
        with self._admission:
            inflight_cost = self._inflight_cost
            inflight_queries = self._inflight_queries
        return {
            "pid": os.getpid(),
            "uptime_seconds": round(time.monotonic() - self._started_mono, 3),
            "started_ts": self.started_ts,
            "engine": self.session.decision.engine,
            "snapshot": self.session.key,
            "socket": self.socket_path,
            "inflight_cost": inflight_cost,
            "inflight_queries": inflight_queries,
            "cost_budget": self.cost_budget,
            "counting_rate": (
                round(self.session.rate.rate, 3)
                if self.session.rate.rate is not None
                else None
            ),
        }

    def _handle_stats(self) -> Dict:
        with self._admission:
            served = self.queries_answered
            rejected = self.queries_rejected
        reply = {
            "ok": True, "op": "stats",
            "session": self.session.stats(),
            "served": served,
            "rejected": rejected,
            "vitals": self._vitals(),
        }
        if self.slo is not None:
            reply["slo"] = self.slo.snapshot()
        return reply

    def _handle_metrics(self) -> Dict:
        """Prometheus text exposition of the daemon's instruments.

        The cumulative registry (``serve.*`` counters and latency, plus
        whatever the miners recorded into a shared obs bundle) is
        decorated with daemon gauges and the rolling SLO window —
        windowed p50/p95/p99 land as the ``serve.window.latency``
        summary, rates as gauges — then rendered through the existing
        exporter.
        """
        document = self.metrics.to_dict()
        vitals = self._vitals()
        gauges = document.setdefault("gauges", {})
        gauges["serve.uptime_seconds"] = vitals["uptime_seconds"]
        gauges["serve.inflight_cost"] = vitals["inflight_cost"]
        gauges["serve.inflight_queries"] = vitals["inflight_queries"]
        gauges["serve.cost_budget"] = vitals["cost_budget"]
        if vitals["counting_rate"] is not None:
            gauges["serve.counting_rate"] = vitals["counting_rate"]
        if self.slo is not None:
            snapshot = self.slo.snapshot()
            gauges["serve.window.qps"] = snapshot["qps"]
            gauges["serve.window.rejection_rate"] = snapshot["rejection_rate"]
            gauges["serve.window.cache_hit_rate"] = snapshot["cache_hit_rate"]
            gauges["serve.window.covered_seconds"] = snapshot["covered_seconds"]
            document.setdefault("histograms", {})["serve.window.latency"] = (
                snapshot["latency"]
            )
        return {
            "ok": True, "op": "metrics",
            "content_type": "text/plain; version=0.0.4",
            "exposition": metrics_to_prometheus(
                document, prefix=METRICS_PREFIX
            ),
        }


# ----------------------------------------------------------------------
# client helper
# ----------------------------------------------------------------------


def _connect(socket_path: str, timeout: float) -> socket.socket:
    """Connect with retry: a momentarily full listen backlog surfaces
    as ``EAGAIN``/``ECONNREFUSED`` on unix sockets, which a client
    stampede (exactly what admission control exists for) provokes."""
    deadline = time.monotonic() + timeout
    delay = 0.01
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(socket_path)
            return sock
        except (BlockingIOError, ConnectionRefusedError):
            sock.close()
            if time.monotonic() >= deadline:
                raise
            time.sleep(delay)
            delay = min(0.2, delay * 2)


def request(
    socket_path: str, message: Dict, timeout: float = 60.0
) -> Dict:
    """Send one request to a running server; returns the reply object."""
    with _connect(socket_path, timeout) as sock:
        sock.sendall((json.dumps(message) + "\n").encode("utf-8"))
        chunks: List[bytes] = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    raw = b"".join(chunks)
    if not raw:
        raise ConnectionError("server closed the connection without a reply")
    return json.loads(raw.decode("utf-8").splitlines()[0])


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``pincer serve`` (see :mod:`repro.cli`)."""
    import argparse

    from .db import io as db_io

    parser = argparse.ArgumentParser(
        prog="pincer serve",
        description="answer mining queries over a unix socket",
    )
    parser.add_argument("input", help="database file (.dat/.basket/.csv/.json)")
    parser.add_argument(
        "--socket", required=True, metavar="PATH",
        help="unix socket path to listen on",
    )
    parser.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="packed-bitmap snapshot of the input (written by "
        "'pincer snapshot')",
    )
    parser.add_argument("--engine", default="auto")
    parser.add_argument("--kernel", default=None)
    parser.add_argument(
        "--cost-budget", type=int, default=DEFAULT_COST_BUDGET,
        help="admission-control budget in candidate-bound units",
    )
    parser.add_argument(
        "--telemetry", nargs="?", const="auto", default=None, metavar="NAME",
        help="publish live shard heartbeats ('pincer obs top NAME')",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="JSONL span trace of every served query (spans carry the "
        "wire request_id; group with 'pincer obs report --request')",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the server's metrics registry as JSON on exit",
    )
    parser.add_argument(
        "--access-log", default=None, metavar="PATH",
        help="JSONL access log, one schema-v4 record per query",
    )
    parser.add_argument(
        "--slow-dir", default=None, metavar="DIR",
        help="slow-query snapshot ring directory (default: "
        "ACCESS_LOG.slow next to the access log)",
    )
    parser.add_argument(
        "--slow-capacity", type=int, default=32, metavar="N",
        help="slow-query ring size in snapshots (default: 32)",
    )
    parser.add_argument(
        "--slo-window", type=float, default=300.0, metavar="SECONDS",
        help="rolling SLO window for the metrics op (0 disables; "
        "default: 300)",
    )
    args = parser.parse_args(argv)

    from .obs import capture

    obs = capture(
        trace_path=args.trace,
        metrics_path=args.metrics_out,
        producer="pincer-serve",
        telemetry=args.telemetry,
    )
    request_log = None
    if args.access_log:
        slow_dir = args.slow_dir
        if slow_dir is None:
            slow_dir = args.access_log + ".slow"
        request_log = RequestLog(
            args.access_log, slow_dir=slow_dir, slow_capacity=args.slow_capacity
        )
    slo = SloWindow(window_seconds=args.slo_window) if args.slo_window > 0 else None
    if args.snapshot:
        from .db.disk import DiskTransactionDatabase

        db = DiskTransactionDatabase(args.input, snapshot=args.snapshot)
        key = args.snapshot
    else:
        db = db_io.load(args.input)
        key = args.input
    kernel = None if args.kernel in (None, "auto") else args.kernel
    try:
        with MiningSession(
            db, engine=args.engine, kernel=kernel, obs=obs, key=key
        ) as session:
            server = MiningServer(
                session, args.socket, cost_budget=args.cost_budget, obs=obs,
                request_log=request_log, slo=slo, enable_slo=slo is not None,
            )
            sys.stdout.write(
                "serving %s on %s (engine %s)\n"
                % (key, args.socket, session.decision.engine)
            )
            sys.stdout.flush()
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
            finally:
                server.close()
            sys.stdout.write(
                "served %d queries (%d rejected); cache %s\n"
                % (
                    server.queries_answered,
                    server.queries_rejected,
                    session.cache.stats(),
                )
            )
            sys.stdout.flush()
    finally:
        if request_log is not None:
            request_log.close()
        obs.finish()
    return 0
