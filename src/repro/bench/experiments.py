"""The paper's experiment grid (Figures 3 and 4) at configurable scale.

Each :class:`ExperimentSpec` is one figure panel: a Quest database plus a
minimum-support sweep, annotated with the behaviour the paper reports for
it.  ``build_database`` materialises the workload at a laptop-friendly
``|D|`` (default 10 000 transactions; override with the
``REPRO_BENCH_SCALE`` environment variable, up to the paper's 100 000) and
memoises it so a pytest-benchmark session generates each database once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..datagen.configs import parse_name, scaled
from ..datagen.quest import QuestGenerator
from ..db.transaction_db import TransactionDatabase

#: Default |D| for benchmark runs; the paper uses 100K.  2 000 keeps the
#: full two-figure grid under ~10 minutes of pure-Python mining while the
#: support thresholds (fractions) keep the workload shape; export
#: REPRO_BENCH_SCALE=100000 for a paper-scale run.
DEFAULT_SCALE = 2_000

#: Seed for the generator — fixed so every run sees the same databases.
DEFAULT_SEED = 20260706


@dataclass(frozen=True)
class ExperimentSpec:
    """One figure panel of the paper's evaluation."""

    experiment_id: str
    database: str
    num_patterns: int  # the |L| knob: 2000 scattered, 50 concentrated
    supports_percent: Tuple[float, ...]
    paper_expectation: str


FIGURE3: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec(
            "fig3-t5-i2", "T5.I2.D100K", 2000, (0.75, 0.5, 0.33, 0.25),
            "Pincer may count MORE candidates (short maximal itemsets give "
            "MFCS little to prune) yet stays close on time; paper reports "
            "small wins from saved passes.",
        ),
        ExperimentSpec(
            "fig3-t10-i4", "T10.I4.D100K", 2000, (1.5, 1.0, 0.75, 0.5),
            "Best scattered case in the paper: 1.7x at 0.5%; may be "
            "slightly slower at 0.75% (MFCS overhead without payoff).",
        ),
        ExperimentSpec(
            "fig3-t20-i6", "T20.I6.D100K", 2000, (1.0, 0.75, 0.5, 0.33),
            "Scattered; modest improvements from pass/candidate reduction.",
        ),
    )
}

FIGURE4: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec(
            "fig4-t20-i6", "T20.I6.D100K", 50, (18.0, 15.0, 12.0, 11.0),
            "Concentrated; ~2.3x at 18%; non-monotone MFS: at 11% the "
            "maximal itemsets lengthen, Apriori needs MORE passes (8->9) "
            "while Pincer drops to ~4.",
        ),
        ExperimentSpec(
            "fig4-t20-i10", "T20.I10.D100K", 50, (12.0, 9.0, 6.0),
            "~23x at 6%: early top-down discovery of maximal itemsets with "
            "up to 16 items removes their subsets from the search.",
        ),
        ExperimentSpec(
            "fig4-t20-i15", "T20.I15.D100K", 50, (9.0, 8.0, 7.0, 6.0),
            "Flagship: >2 orders of magnitude at 6-7%; Pincer finds "
            "17-item maximal itemsets in as few as 3 passes.",
        ),
    )
}

ALL_EXPERIMENTS: Dict[str, ExperimentSpec] = {**FIGURE3, **FIGURE4}

_DATABASE_CACHE: Dict[Tuple[str, int, int, int], TransactionDatabase] = {}


def bench_scale() -> int:
    """|D| used by the benchmark harness (env ``REPRO_BENCH_SCALE``)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "")
    if not raw:
        return DEFAULT_SCALE
    value = int(raw)
    if value < 1:
        raise ValueError("REPRO_BENCH_SCALE must be positive")
    return value


def build_database(
    spec: ExperimentSpec,
    num_transactions: Optional[int] = None,
    seed: int = DEFAULT_SEED,
) -> TransactionDatabase:
    """Materialise (and memoise) the Quest database of an experiment."""
    scale = num_transactions if num_transactions is not None else bench_scale()
    key = (spec.database, spec.num_patterns, scale, seed)
    if key not in _DATABASE_CACHE:
        config = scaled(
            parse_name(spec.database, num_patterns=spec.num_patterns, seed=seed),
            scale,
        )
        _DATABASE_CACHE[key] = QuestGenerator(config).generate()
    return _DATABASE_CACHE[key]


def clear_database_cache() -> None:
    """Drop memoised databases (tests use this to bound memory)."""
    _DATABASE_CACHE.clear()
