"""Counting-engine micro-benchmark: isolate ``engine.count`` wall-clock.

The figure benchmarks time whole mining runs, where candidate generation
and MFCS maintenance dilute the counting signal.  This module measures
the counting subsystem alone: it replays the exact candidate batches a
Pincer-Search run issues (one batch per pass) against every registered
engine and reports per-engine seconds, verifying along the way that all
engines return identical counts.

Run as a module to (re)generate the machine-readable record the CI
benchmark smoke job tracks across PRs::

    python -m repro.bench.engines --out benchmarks/BENCH_counting.json

The JSON carries the benchmark cell (T10.I4.D100K at 1.5% by default),
the host's core count (the ``sharded`` speedup only materialises with
multiple cores), and the headline ratios ``speedup_packed_vs_bitmap`` and
``speedup_sharded_vs_packed``.

``--density-sweep`` instead runs the compressed-tier cells — a sparse
Zipf long-tail basket set and a dense Quest workload — reporting
``speedup_roaring_vs_packed`` per cell plus the roaring engine's tier,
container mix, and compression ratio::

    python -m repro.bench.engines --density-sweep \
        --out benchmarks/BENCH_density.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from ..core.pincer import PincerSearch
from ..datagen import generate, parse_name, zipf_baskets
from ..db.base import SupportCounter
from ..db.counting import available_engines, engine_decision, get_counter
from ..db.parallel import ShardedCounter
from ..db.roaring import RoaringIndex
from ..db.shm import ShmShardedCounter
from ..db.transaction_db import TransactionDatabase
from ..db.vertical import HAVE_NUMPY
from .experiments import DEFAULT_SCALE, ExperimentSpec, build_database
from .trajectory import record_run

__all__ = [
    "RecordingCounter",
    "measure_worker_startup",
    "record_batches",
    "run_counting_benchmark",
    "run_density_sweep",
    "time_engine",
    "write_counting_benchmark",
]


class RecordingCounter(SupportCounter):
    """Delegating engine that records every candidate batch it serves."""

    def __init__(self, inner: SupportCounter) -> None:
        super().__init__()
        self.name = "recording(%s)" % inner.name
        self._inner = inner
        self.batches: List[List] = []

    def _count(self, db, candidates):
        self.batches.append(list(candidates))
        return self._inner._count(db, candidates)


def record_batches(
    db: TransactionDatabase, min_support_percent: float
) -> List[List]:
    """The candidate batches (one per pass) of a Pincer-Search run.

    The batches are a property of the mining trajectory, not of the
    engine serving it (the engines are proven count-identical), so the
    recording run rides the fastest single-process engine available.
    """
    recorder = RecordingCounter(
        get_counter("packed" if HAVE_NUMPY else "bitmap")
    )
    PincerSearch(adaptive=True).mine(
        db, min_support_percent / 100.0, counter=recorder
    )
    return recorder.batches


def time_engine(
    db: TransactionDatabase,
    batches: Sequence[Sequence],
    counter: SupportCounter,
    repeats: int = 3,
) -> float:
    """Best-of-``repeats`` seconds to serve all ``batches``.

    A warm-up run is not separated out: per-database state an engine
    builds once and reuses (the bitmap cache, the packed matrix, shard
    workers) is part of what a mining run pays, so the first repeat
    carries it and best-of keeps the steady-state figure.
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        counter.reset()
        started = time.perf_counter()
        for batch in batches:
            counter.count(db, batch)
        best = min(best, time.perf_counter() - started)
    return best


def run_counting_benchmark(
    database: str = "T10.I4.D100K",
    min_support_percent: float = 1.5,
    scale: Optional[int] = None,
    engines: Optional[Sequence[str]] = None,
    repeats: int = 3,
) -> Dict:
    """Benchmark every engine on one cell; returns the JSON-ready record."""
    spec = ExperimentSpec("bench-counting", database, 2000, (), "")
    db = build_database(spec, num_transactions=scale)
    batches = record_batches(db, min_support_percent)
    names = list(engines) if engines is not None else available_engines()

    reference: Optional[List[Dict]] = None
    measured: Dict[str, Dict] = {}
    for name in names:
        counter = get_counter(name)
        try:
            per_batch = [dict(counter.count(db, batch)) for batch in batches]
            if reference is None:
                reference = per_batch
            elif per_batch != reference:
                raise AssertionError(
                    "engine %r disagrees with %r" % (name, names[0])
                )
            seconds = time_engine(db, batches, counter, repeats)
            measured[name] = {
                "seconds": round(seconds, 6),
                "passes": len(batches),
                "itemsets_counted": counter.itemsets_counted,
            }
            # prefix-intersection cache accounting (bitmap/packed engines;
            # values cover the last timed repeat — reset() zeroes them)
            hits = getattr(counter, "prefix_cache_hits", None)
            if hits is not None:
                measured[name]["prefix_cache_hits"] = hits
                measured[name]["prefix_cache_misses"] = (
                    counter.prefix_cache_misses
                )
            if isinstance(counter, ShardedCounter):
                measured[name]["num_shards"] = len(counter.shard_rows)
                measured[name]["last_shard_seconds"] = [
                    round(shard_seconds, 6)
                    for shard_seconds in counter.last_shard_seconds
                ]
                measured[name]["worker_startup_seconds"] = [
                    round(startup, 6)
                    for startup in counter.worker_startup_seconds
                ]
            if isinstance(counter, ShmShardedCounter):
                measured[name]["plane"] = counter.plane
                measured[name]["attach_seconds"] = round(
                    counter.last_attach_seconds, 6
                )
                measured[name]["steals"] = counter.steals
                measured[name]["chunks_dispatched"] = counter.chunks_dispatched
                if counter._scheduler is not None:
                    measured[name]["scheduler_decisions"] = dict(
                        counter._scheduler.decisions
                    )
        finally:
            close = getattr(counter, "close", None)
            if close is not None:
                close()

    record: Dict = {
        "benchmark": "counting-engines",
        "database": database,
        "min_support_percent": min_support_percent,
        "num_transactions": len(db),
        "passes": len(batches),
        "candidates_total": sum(len(batch) for batch in batches),
        "cpu_count": os.cpu_count() or 1,
        "numpy": HAVE_NUMPY,
        "repeats": repeats,
        "engines": measured,
    }
    bitmap = measured.get("bitmap", {}).get("seconds")
    packed = measured.get("packed", {}).get("seconds")
    sharded = measured.get("sharded", {}).get("seconds")
    shm = measured.get("shm", {}).get("seconds")
    if bitmap and packed:
        record["speedup_packed_vs_bitmap"] = round(bitmap / packed, 3)
    if packed and sharded:
        record["speedup_sharded_vs_packed"] = round(packed / sharded, 3)
    if sharded and shm:
        record["speedup_shm_vs_sharded"] = round(sharded / shm, 3)
    if "sharded" in measured and "shm" in measured:
        record["worker_startup"] = measure_worker_startup(db)
    return record


#: Transactions in the sparse density-sweep cell.  The compressed tier's
#: per-candidate cost is near-constant while packed's grows with the row
#: dimension, so the sweep sits where the crossover is decisive.
SPARSE_SWEEP_ROWS = 1000000

#: The dense density-sweep cell: a concentrated Quest workload over a
#: 60-item universe (mean column density ~0.17, above the roaring
#: engine's DENSE_CUTOFF), where the ladder must step down to ``packed``.
DENSE_SWEEP_NAME = "T10.I4.D20K"


def _density_cells(scale: Optional[int] = None):
    """Yield ``(database_name, db, min_support_percent)`` sweep cells."""
    sparse = zipf_baskets(
        num_transactions=scale or SPARSE_SWEEP_ROWS,
        num_items=2000,
        skew=1.5,
        avg_basket_size=10,
        seed=17,
    )
    yield "ZIPF.T10.N2000.S1.5", sparse, 0.5
    dense_config = parse_name(
        DENSE_SWEEP_NAME, num_patterns=50, num_items=60, seed=7
    )
    yield DENSE_SWEEP_NAME + ".N60", generate(dense_config), 5.0


def run_density_sweep(
    engines: Sequence[str] = ("packed", "roaring"),
    repeats: int = 3,
    scale: Optional[int] = None,
) -> List[Dict]:
    """Benchmark the compressed tier across the density axis.

    Returns one counting-benchmark-shaped record per cell (so each cell
    keys its own trajectory baseline): a sparse Zipf long-tail cell where
    the roaring containers should win outright, and a dense Quest cell
    where the fallback ladder resolves to ``packed`` and the compressed
    facade must stay within noise of it.  Every engine is verified
    count-identical on every cell before it is timed.
    """
    cells: List[Dict] = []
    for database, db, pct in _density_cells(scale):
        batches = record_batches(db, pct)
        decision = engine_decision(db)
        measured: Dict[str, Dict] = {}
        reference: Optional[List[Dict]] = None
        for name in engines:
            counter = get_counter(name)
            per_batch = [dict(counter.count(db, batch)) for batch in batches]
            if reference is None:
                reference = per_batch
            elif per_batch != reference:
                raise AssertionError(
                    "engine %r disagrees with %r on %s"
                    % (name, engines[0], database)
                )
            seconds = time_engine(db, batches, counter, repeats)
            entry: Dict = {
                "seconds": round(seconds, 6),
                "passes": len(batches),
                "itemsets_counted": counter.itemsets_counted,
            }
            tier = getattr(counter, "tier", None)
            if tier is not None:
                entry["tier"] = tier
                entry["density"] = round(counter.density, 6)
                index = counter._index
                if isinstance(index, RoaringIndex):
                    entry["containers"] = index.container_counts()
                    compressed = index.compressed_bytes()
                    dense_bytes = index.dense_bytes()
                    entry["compressed_bytes"] = compressed
                    entry["dense_bytes"] = dense_bytes
                    if compressed:
                        entry["compression_ratio"] = round(
                            dense_bytes / compressed, 3
                        )
            measured[name] = entry
        record: Dict = {
            "benchmark": "density-sweep",
            "database": database,
            "min_support_percent": pct,
            "num_transactions": len(db),
            "passes": len(batches),
            "candidates_total": sum(len(batch) for batch in batches),
            "cpu_count": os.cpu_count() or 1,
            "numpy": HAVE_NUMPY,
            "repeats": repeats,
            "engine_decision": {
                "engine": decision.engine,
                "evidence": decision.evidence,
            },
            "engines": measured,
        }
        packed = measured.get("packed", {}).get("seconds")
        roaring = measured.get("roaring", {}).get("seconds")
        if packed and roaring:
            record["speedup_roaring_vs_packed"] = round(packed / roaring, 3)
        cells.append(record)
    return cells


def measure_worker_startup(db: TransactionDatabase, workers: int = 2) -> Dict:
    """Per-worker startup cost: pipe-plane index build vs shm attach.

    The default heuristics refuse to shard on single-core hosts, so this
    pins ``workers`` explicitly — the point is the *per-worker* attach
    asymmetry (the pipe plane rebuilds a shard index from pickled
    transactions; the shm plane attaches views over existing pages),
    which is what dominates cold-start on wide machines.
    """
    comparison: Dict = {"workers": workers}
    for name, engine in (
        ("sharded", ShardedCounter(num_shards=workers)),
        ("shm", ShmShardedCounter(num_shards=workers)),
    ):
        try:
            engine.count(db, [(1,)])
            startups = engine.worker_startup_seconds or [0.0]
            comparison[name] = {
                "mean_worker_startup_seconds": round(
                    sum(startups) / len(startups), 6
                ),
                "max_worker_startup_seconds": round(max(startups), 6),
            }
            if isinstance(engine, ShmShardedCounter):
                comparison[name]["plane"] = engine.plane
                comparison[name]["attach_seconds"] = round(
                    engine.last_attach_seconds, 6
                )
        finally:
            engine.close()
    pipe = comparison.get("sharded", {}).get("mean_worker_startup_seconds")
    attach = comparison.get("shm", {}).get("mean_worker_startup_seconds")
    if pipe and attach:
        comparison["startup_speedup_shm_vs_sharded"] = round(pipe / attach, 2)
    return comparison


def write_counting_benchmark(path: str, record: Dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.engines",
        description="benchmark the support-counting engines on one cell",
    )
    parser.add_argument("--database", default="T10.I4.D100K")
    parser.add_argument("--min-support", type=float, default=1.5, metavar="PCT")
    parser.add_argument(
        "--scale", type=int, default=None,
        help="|D| override (default: REPRO_BENCH_SCALE or %d)" % DEFAULT_SCALE,
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--engine", action="append", default=None, metavar="NAME",
        help="engine subset (repeatable; default: all registered)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON record here (default: stdout only)",
    )
    parser.add_argument(
        "--trajectory", default=None, metavar="PATH",
        help="append this run to the bench trajectory JSONL "
        "(gate it with python -m repro.bench.regress)",
    )
    parser.add_argument(
        "--density-sweep", action="store_true",
        help="run the sparse/dense density-sweep cells (roaring vs "
        "packed) instead of the single counting cell",
    )
    args = parser.parse_args(argv)
    if args.density_sweep:
        cells = run_density_sweep(
            engines=tuple(args.engine) if args.engine else ("packed", "roaring"),
            repeats=args.repeats,
            scale=args.scale,
        )
        document = {"benchmark": "density-sweep", "cells": cells}
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        if args.out:
            write_counting_benchmark(args.out, document)
        for cell in cells:
            record_run(cell, args.trajectory)
        return 0
    record = run_counting_benchmark(
        database=args.database,
        min_support_percent=args.min_support,
        scale=args.scale,
        engines=args.engine,
        repeats=args.repeats,
    )
    json.dump(record, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    if args.out:
        write_counting_benchmark(args.out, record)
    record_run(record, args.trajectory)
    return 0


if __name__ == "__main__":
    sys.exit(main())
