"""Analysis and export of benchmark results.

The paper presents its evaluation as figures; a terminal reproduction
renders them as aligned text charts.  This module turns lists of
:class:`~repro.bench.harness.CellResult` rows into:

* ``to_csv`` — machine-readable export for external plotting;
* ``ascii_chart`` — a horizontal-bar chart of any numeric column, the
  closest a test log gets to the paper's bar groups;
* ``figure_report`` — the complete text rendition of one figure panel:
  the three bar groups (relative time, candidates, passes) the paper
  plots, ready for EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import io as io_module
from typing import Dict, Iterable, List, Sequence

from .harness import CellResult, relative_time

CSV_COLUMNS = [
    "database",
    "min_support_percent",
    "algorithm",
    "seconds",
    "dnf",
    "passes",
    "candidates",
    "total_candidates",
    "mfs_size",
    "longest_maximal",
    "maximal_found_in_mfcs",
]


def to_csv(rows: Iterable[CellResult]) -> str:
    """Render rows as CSV text (header + one line per cell)."""
    buffer = io_module.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(CSV_COLUMNS)
    for row in rows:
        writer.writerow([getattr(row, column) for column in CSV_COLUMNS])
    return buffer.getvalue()


def write_csv(rows: Iterable[CellResult], path) -> None:
    """Write :func:`to_csv` output to a file."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(to_csv(rows))


def ascii_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """A horizontal bar chart: one `█`-bar per (label, value).

    >>> print(ascii_chart(["a", "b"], [1.0, 2.0], width=4))
    a ██    1
    b ████  2
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return ""
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "█" * max(1 if value > 0 else 0, round(width * value / peak))
        lines.append(
            "%-*s %-*s %g%s"
            % (label_width, label, width + 1, bar, round(value, 3), unit)
        )
    return "\n".join(lines)


def _group_by_support(
    rows: Iterable[CellResult],
) -> Dict[float, Dict[str, CellResult]]:
    grouped: Dict[float, Dict[str, CellResult]] = {}
    for row in rows:
        grouped.setdefault(row.min_support_percent, {})[row.algorithm] = row
    return grouped


def figure_report(rows: Sequence[CellResult], title: str = "") -> str:
    """The paper-figure rendition: three chart panels per database sweep.

    Panel 1 — relative time (Apriori / Pincer-Search), the quantity the
    paper's prose quotes; panels 2 and 3 — candidates and passes, per
    algorithm, grouped by minimum support.
    """
    grouped = _group_by_support(rows)
    supports = sorted(grouped, reverse=True)
    sections: List[str] = []
    if title:
        sections.append(title)

    ratios = relative_time(rows)
    if ratios:
        labels = ["%g%%" % support for support in supports if support in ratios]
        values = [ratios[support] for support in supports if support in ratios]
        dnf_mark = {
            support
            for support, cells in grouped.items()
            if any(row.dnf for row in cells.values())
        }
        chart = ascii_chart(labels, values, unit="x")
        if dnf_mark:
            chart += "\n(bars at supports %s are lower bounds: Apriori DNF)" % (
                ", ".join("%g%%" % support for support in sorted(dnf_mark))
            )
        sections.append("relative time (Apriori / Pincer-Search):\n" + chart)

    for panel, column in (("candidates", "candidates"), ("passes", "passes")):
        labels, values = [], []
        for support in supports:
            for algorithm in sorted(grouped[support]):
                labels.append("%g%% %s" % (support, algorithm))
                values.append(getattr(grouped[support][algorithm], column))
        sections.append(
            "%s per cell:\n%s" % (panel, ascii_chart(labels, values))
        )
    return "\n\n".join(sections)
