"""Resident-session benchmark: cold single-shot vs warm session queries.

The serving economics this PR introduces: one hot database, many
differently-parameterized queries.  The cell fires ``N`` rounds over
``M`` thresholds (N x M queries) two ways —

* **cold** — every query is a fresh one-shot ``PincerSearch().mine()``:
  engine re-resolved, workers re-attached, every pass re-counted;
* **warm** — every query goes through one resident
  :class:`~repro.core.session.MiningSession`: supports come from the
  cross-threshold cache, repeated thresholds are seeded with their own
  maximal family and resolve in about one all-cached pass.

Every warm result is differentially checked against its cold twin
(byte-identical MFS and identical threshold) before any timing is
reported — the speedup is only meaningful if the answers are exact.

The headline ``speedup_warm_repeat_vs_cold`` compares mean cold seconds
against mean warm seconds over *repeated* thresholds (a threshold's
second and later occurrences), which is the steady state a server
lives in.  Run as a module to (re)generate the machine-readable record
the CI smoke job tracks::

    python -m repro.bench.serve --out benchmarks/BENCH_serve.json \
        --trajectory benchmarks/trajectory.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from ..core.pincer import PincerSearch
from ..core.session import MiningSession
from .experiments import DEFAULT_SCALE, ExperimentSpec, build_database
from .trajectory import record_run

__all__ = ["run_serve_benchmark", "write_serve_benchmark"]

#: The default sweep: three thresholds of the paper's headline cell,
#: each queried several times per round as a mixed arrival order.
DEFAULT_SUPPORTS = (2.0, 1.5, 1.0)


def _query_plan(
    supports: Sequence[float], rounds: int
) -> List[float]:
    """N rounds over M thresholds, interleaved like real arrivals."""
    plan: List[float] = []
    for _ in range(max(1, rounds)):
        plan.extend(supports)
    return plan


def run_serve_benchmark(
    database: str = "T10.I4.D100K",
    supports_percent: Sequence[float] = DEFAULT_SUPPORTS,
    rounds: int = 3,
    scale: Optional[int] = None,
    engine: str = "auto",
) -> Dict:
    """Measure the cell; returns the benchmark record."""
    spec = ExperimentSpec(
        "serve", database, 2000, tuple(supports_percent),
        "warm repeated-threshold queries amortize counting to ~0",
    )
    num_transactions = scale or DEFAULT_SCALE
    db = build_database(spec, num_transactions=num_transactions)
    plan = _query_plan(supports_percent, rounds)

    # ---- cold baseline: one-shot mine() per query --------------------
    cold_seconds: Dict[float, List[float]] = {s: [] for s in supports_percent}
    cold_mfs: Dict[float, List] = {}
    for support in plan:
        started = time.perf_counter()
        result = PincerSearch(engine=engine).mine(db, support / 100.0)
        cold_seconds[support].append(time.perf_counter() - started)
        mfs = sorted(result.mfs)
        if support in cold_mfs:
            assert cold_mfs[support] == mfs, (
                "cold mining is nondeterministic at %g%%" % support
            )
        cold_mfs[support] = mfs

    # ---- warm: the same plan against one resident session ------------
    warm_first: Dict[float, float] = {}
    warm_repeat: Dict[float, List[float]] = {s: [] for s in supports_percent}
    with MiningSession(db, engine=engine, key=database) as session:
        for support in plan:
            started = time.perf_counter()
            result = session.mine(support / 100.0)
            seconds = time.perf_counter() - started
            # the differential ladder: warm must equal cold, byte for byte
            assert sorted(result.mfs) == cold_mfs[support], (
                "warm MFS diverged from cold at %g%%" % support
            )
            if support in warm_first:
                warm_repeat[support].append(seconds)
            else:
                warm_first[support] = seconds
        cache_stats = session.cache.stats()
        session_stats = session.stats()

    def mean(values: Sequence[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    mean_cold = mean([s for sec in cold_seconds.values() for s in sec])
    repeat_seconds = [s for sec in warm_repeat.values() for s in sec]
    mean_warm_repeat = mean(repeat_seconds)
    speedup = mean_cold / mean_warm_repeat if mean_warm_repeat else 0.0

    record: Dict = {
        "benchmark": "serve",
        "database": database,
        "num_transactions": num_transactions,
        "supports_percent": list(supports_percent),
        "rounds": rounds,
        "queries": len(plan),
        "engine": session_stats["engine"],
        "mfs_identical": True,  # asserted above, per query
        "seconds_cold_mean": round(mean_cold, 6),
        "seconds_warm_repeat_mean": round(mean_warm_repeat, 6),
        "speedup_warm_repeat_vs_cold": round(speedup, 3),
        "warm_repeat_queries_per_second": round(
            1.0 / mean_warm_repeat, 3
        ) if mean_warm_repeat else None,
        "per_support": {
            "%g" % support: {
                "cold_mean_seconds": round(mean(cold_seconds[support]), 6),
                "warm_first_seconds": round(warm_first[support], 6),
                "warm_repeat_mean_seconds": round(
                    mean(warm_repeat[support]), 6
                ),
                "mfs_size": len(cold_mfs[support]),
            }
            for support in supports_percent
        },
        "cache": cache_stats,
        "session_passes": session_stats["passes"],
        "host_cpu_count": os.cpu_count() or 1,
    }
    return record


def write_serve_benchmark(
    record: Dict, path: str
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--database", default="T10.I4.D100K")
    parser.add_argument(
        "--min-support", type=float, action="append", metavar="PCT",
        help="threshold sweep (repeatable; default 2.0 1.5 1.0)",
    )
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--scale", type=int, default=None,
        help="|D| override (default %d)" % DEFAULT_SCALE,
    )
    parser.add_argument("--engine", default="auto")
    parser.add_argument("--out", default=None, metavar="PATH")
    parser.add_argument(
        "--trajectory", default=None, metavar="PATH",
        help="also append a keyed entry to this trajectory file",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="exit nonzero unless warm repeats beat cold by X",
    )
    args = parser.parse_args(argv)
    supports = tuple(args.min_support) if args.min_support else DEFAULT_SUPPORTS

    record = run_serve_benchmark(
        database=args.database,
        supports_percent=supports,
        rounds=args.rounds,
        scale=args.scale,
        engine=args.engine,
    )
    print(json.dumps(record, indent=2, sort_keys=True))
    if args.out:
        write_serve_benchmark(record, args.out)
        print("wrote %s" % args.out, file=sys.stderr)
    record_run(record, args.trajectory)
    if (
        args.min_speedup is not None
        and record["speedup_warm_repeat_vs_cold"] < args.min_speedup
    ):
        print(
            "FAIL: warm repeat speedup %.2fx below required %.2fx"
            % (record["speedup_warm_repeat_vs_cold"], args.min_speedup),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
