"""Resident-session benchmark: cold single-shot vs warm session queries.

The serving economics this PR introduces: one hot database, many
differently-parameterized queries.  The cell fires ``N`` rounds over
``M`` thresholds (N x M queries) two ways —

* **cold** — every query is a fresh one-shot ``PincerSearch().mine()``:
  engine re-resolved, workers re-attached, every pass re-counted;
* **warm** — every query goes through one resident
  :class:`~repro.core.session.MiningSession`: supports come from the
  cross-threshold cache, repeated thresholds are seeded with their own
  maximal family and resolve in about one all-cached pass.

Every warm result is differentially checked against its cold twin
(byte-identical MFS and identical threshold) before any timing is
reported — the speedup is only meaningful if the answers are exact.

The headline ``speedup_warm_repeat_vs_cold`` compares mean cold seconds
against mean warm seconds over *repeated* thresholds (a threshold's
second and later occurrences), which is the steady state a server
lives in.

A third phase prices the query-plane observability itself: the same
warm plan is answered through :class:`~repro.serve.MiningServer`'s
request path twice — once with every per-query instrument disabled
(no SLO window, no access log), once with the full plane on (access
log + slow-query ring + rolling SLO window + metrics registry) — and
``overhead_warm_obs_pct`` reports the relative cost on warm queries,
where the fixed per-query overhead is largest relative to the work.
Span *tracing* is deliberately excluded here: its flight-recorder cost
is priced by ``BENCH_obs``'s overhead gate, and a server only pays it
when started with ``--trace``.  Run as a module to (re)generate the
machine-readable record the CI smoke job tracks::

    python -m repro.bench.serve --out benchmarks/BENCH_serve.json \
        --trajectory benchmarks/trajectory.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from ..core.pincer import PincerSearch
from ..core.session import MiningSession
from .experiments import DEFAULT_SCALE, ExperimentSpec, build_database
from .trajectory import record_run

__all__ = ["run_serve_benchmark", "write_serve_benchmark"]

#: The default sweep: three thresholds of the paper's headline cell,
#: each queried several times per round as a mixed arrival order.
DEFAULT_SUPPORTS = (2.0, 1.5, 1.0)


def _query_plan(
    supports: Sequence[float], rounds: int
) -> List[float]:
    """N rounds over M thresholds, interleaved like real arrivals."""
    plan: List[float] = []
    for _ in range(max(1, rounds)):
        plan.extend(supports)
    return plan


def _measure_served_overhead(
    db,
    plan: Sequence[float],
    engine: str,
    key: str,
    tmpdir: str,
    rounds: int = 20,
) -> Dict[str, float]:
    """Warm per-query seconds through the server's request path, twice.

    One warmed server answers the same plan in alternating rounds: the
    per-query instruments (rolling SLO window + access log with its
    slow-query ring) are detached for the *plain* rounds and reattached
    for the *obs* rounds, so the two variants share the session, the
    cache state, and the process — the only difference each round is
    exactly the instrument calls being priced.  Requests go straight
    through ``MiningServer._handle_line`` (no socket round-trip — the
    wire would drown the instrument cost being measured), and each
    rounds are interleaved and each variant reports its best-of —
    :mod:`repro.bench.obs_overhead`'s convention — because host noise
    only ever adds time: the minima converge on each variant's true
    floor, and the floors differ by exactly the instrument cost.
    """
    from ..serve import MiningServer
    from ..obs.requestlog import RequestLog

    lines = [
        json.dumps({"op": "mine", "min_support": support}).encode()
        for support in plan
    ]

    def timed_round(server) -> float:
        started = time.perf_counter()
        for line in lines:
            reply = server._handle_line(line)
            assert reply["ok"], reply
        return (time.perf_counter() - started) / len(lines)

    request_log = RequestLog(
        os.path.join(tmpdir, "access.jsonl"),
        slow_dir=os.path.join(tmpdir, "slow"),
    )
    with MiningSession(db, engine=engine, key=key) as session:
        server = MiningServer(
            session, os.path.join(tmpdir, "bench.sock"),
            request_log=request_log, enable_slo=True,
        )
        slo = server.slo
        # the listener must actually run: close() synchronizes with
        # serve_forever, and a never-started server would hang there
        server.start()
        try:
            timed_round(server)  # warm the cache + MFCS seeds
            plain_rounds: List[float] = []
            obs_rounds: List[float] = []
            for _ in range(max(1, rounds)):
                server.request_log, server.slo = None, None
                plain_rounds.append(timed_round(server))
                server.request_log, server.slo = request_log, slo
                obs_rounds.append(timed_round(server))
        finally:
            server.close()
            request_log.close()

    plain_seconds = min(plain_rounds)
    obs_seconds = min(obs_rounds)
    overhead = (
        100.0 * (obs_seconds - plain_seconds) / plain_seconds
        if plain_seconds else 0.0
    )
    return {
        "plain": plain_seconds,
        "obs": obs_seconds,
        "overhead_pct": overhead,
    }


def run_serve_benchmark(
    database: str = "T10.I4.D100K",
    supports_percent: Sequence[float] = DEFAULT_SUPPORTS,
    rounds: int = 3,
    scale: Optional[int] = None,
    engine: str = "auto",
) -> Dict:
    """Measure the cell; returns the benchmark record."""
    spec = ExperimentSpec(
        "serve", database, 2000, tuple(supports_percent),
        "warm repeated-threshold queries amortize counting to ~0",
    )
    num_transactions = scale or DEFAULT_SCALE
    db = build_database(spec, num_transactions=num_transactions)
    plan = _query_plan(supports_percent, rounds)

    # ---- cold baseline: one-shot mine() per query --------------------
    cold_seconds: Dict[float, List[float]] = {s: [] for s in supports_percent}
    cold_mfs: Dict[float, List] = {}
    for support in plan:
        started = time.perf_counter()
        result = PincerSearch(engine=engine).mine(db, support / 100.0)
        cold_seconds[support].append(time.perf_counter() - started)
        mfs = sorted(result.mfs)
        if support in cold_mfs:
            assert cold_mfs[support] == mfs, (
                "cold mining is nondeterministic at %g%%" % support
            )
        cold_mfs[support] = mfs

    # ---- warm: the same plan against one resident session ------------
    warm_first: Dict[float, float] = {}
    warm_repeat: Dict[float, List[float]] = {s: [] for s in supports_percent}
    with MiningSession(db, engine=engine, key=database) as session:
        for support in plan:
            started = time.perf_counter()
            result = session.mine(support / 100.0)
            seconds = time.perf_counter() - started
            # the differential ladder: warm must equal cold, byte for byte
            assert sorted(result.mfs) == cold_mfs[support], (
                "warm MFS diverged from cold at %g%%" % support
            )
            if support in warm_first:
                warm_repeat[support].append(seconds)
            else:
                warm_first[support] = seconds
        cache_stats = session.cache.stats()
        session_stats = session.stats()

    # ---- served: the warm plan through the request path, obs off/on --
    with tempfile.TemporaryDirectory(prefix="pincer-bench-serve-") as tmpdir:
        served = _measure_served_overhead(db, plan, engine, database, tmpdir)

    def mean(values: Sequence[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    mean_cold = mean([s for sec in cold_seconds.values() for s in sec])
    repeat_seconds = [s for sec in warm_repeat.values() for s in sec]
    mean_warm_repeat = mean(repeat_seconds)
    speedup = mean_cold / mean_warm_repeat if mean_warm_repeat else 0.0

    record: Dict = {
        "benchmark": "serve",
        "database": database,
        "num_transactions": num_transactions,
        "supports_percent": list(supports_percent),
        "rounds": rounds,
        "queries": len(plan),
        "engine": session_stats["engine"],
        "mfs_identical": True,  # asserted above, per query
        "seconds_cold_mean": round(mean_cold, 6),
        "seconds_warm_repeat_mean": round(mean_warm_repeat, 6),
        "seconds_warm_serve_plain_mean": round(served["plain"], 6),
        "seconds_warm_serve_obs_mean": round(served["obs"], 6),
        "overhead_warm_obs_pct": round(served["overhead_pct"], 3),
        "speedup_warm_repeat_vs_cold": round(speedup, 3),
        "warm_repeat_queries_per_second": round(
            1.0 / mean_warm_repeat, 3
        ) if mean_warm_repeat else None,
        "per_support": {
            "%g" % support: {
                "cold_mean_seconds": round(mean(cold_seconds[support]), 6),
                "warm_first_seconds": round(warm_first[support], 6),
                "warm_repeat_mean_seconds": round(
                    mean(warm_repeat[support]), 6
                ),
                "mfs_size": len(cold_mfs[support]),
            }
            for support in supports_percent
        },
        "cache": cache_stats,
        "session_passes": session_stats["passes"],
        "host_cpu_count": os.cpu_count() or 1,
    }
    return record


def write_serve_benchmark(
    record: Dict, path: str
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--database", default="T10.I4.D100K")
    parser.add_argument(
        "--min-support", type=float, action="append", metavar="PCT",
        help="threshold sweep (repeatable; default 2.0 1.5 1.0)",
    )
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--scale", type=int, default=None,
        help="|D| override (default %d)" % DEFAULT_SCALE,
    )
    parser.add_argument("--engine", default="auto")
    parser.add_argument("--out", default=None, metavar="PATH")
    parser.add_argument(
        "--trajectory", default=None, metavar="PATH",
        help="also append a keyed entry to this trajectory file",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="exit nonzero unless warm repeats beat cold by X",
    )
    parser.add_argument(
        "--max-obs-overhead", type=float, default=None, metavar="PCT",
        help="exit nonzero if the query-plane observability overhead "
        "on warm served queries exceeds PCT percent",
    )
    args = parser.parse_args(argv)
    supports = tuple(args.min_support) if args.min_support else DEFAULT_SUPPORTS

    record = run_serve_benchmark(
        database=args.database,
        supports_percent=supports,
        rounds=args.rounds,
        scale=args.scale,
        engine=args.engine,
    )
    sys.stdout.write(json.dumps(record, indent=2, sort_keys=True) + "\n")
    if args.out:
        write_serve_benchmark(record, args.out)
        sys.stderr.write("wrote %s\n" % args.out)
    record_run(record, args.trajectory)
    if (
        args.min_speedup is not None
        and record["speedup_warm_repeat_vs_cold"] < args.min_speedup
    ):
        sys.stderr.write(
            "FAIL: warm repeat speedup %.2fx below required %.2fx\n"
            % (record["speedup_warm_repeat_vs_cold"], args.min_speedup)
        )
        return 1
    if (
        args.max_obs_overhead is not None
        and record["overhead_warm_obs_pct"] > args.max_obs_overhead
    ):
        sys.stderr.write(
            "FAIL: query-plane obs overhead %.2f%% above allowed %.2f%%\n"
            % (record["overhead_warm_obs_pct"], args.max_obs_overhead)
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
