"""Benchmark harness: experiment grid and cell runner for Figures 3-4."""

from .experiments import (
    ALL_EXPERIMENTS,
    DEFAULT_SCALE,
    DEFAULT_SEED,
    FIGURE3,
    FIGURE4,
    ExperimentSpec,
    bench_scale,
    build_database,
    clear_database_cache,
)
from .harness import (
    PAPER_MINERS,
    CellResult,
    format_rows,
    relative_time,
    run_cell,
    run_sweep,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "CellResult",
    "DEFAULT_SCALE",
    "DEFAULT_SEED",
    "ExperimentSpec",
    "FIGURE3",
    "FIGURE4",
    "PAPER_MINERS",
    "bench_scale",
    "build_database",
    "clear_database_cache",
    "format_rows",
    "relative_time",
    "run_cell",
    "run_sweep",
]
