"""The benchmark trajectory: an append-only history of bench runs.

Every ``repro.bench`` CLI can append its JSON record to
``benchmarks/trajectory.jsonl`` (pass ``--trajectory PATH``; CI does),
wrapped in an *entry* that keys the run for later comparison:

* ``git_sha`` — the commit the run measured (``git rev-parse HEAD``,
  overridable via ``REPRO_GIT_SHA`` for detached environments);
* ``key`` — the benchmark cell (benchmark kind + database + support +
  scale), so only like-for-like runs are ever compared;
* ``host`` — cpu count / platform / python, the usual noise suspects;
* ``metrics`` — every *seconds-like* scalar of the record, flattened to
  dotted paths (lists are skipped: per-cell arrays vary in length and
  would make the metric set unstable across runs).

``python -m repro.bench.regress`` (:mod:`repro.bench.regress`) walks this
file and fails the build when the latest entry of a key is slower than
its baseline window — the bench history is enforced, not just archived.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "TRAJECTORY_VERSION",
    "append_entry",
    "default_trajectory_path",
    "extract_seconds_metrics",
    "git_sha",
    "load_trajectory",
    "make_entry",
    "record_run",
]

TRAJECTORY_VERSION = 1

#: default history location (relative to the invoking directory — the
#: bench CLIs are run from the repo root, where ``benchmarks/`` lives)
DEFAULT_TRAJECTORY = os.path.join("benchmarks", "trajectory.jsonl")


def default_trajectory_path() -> str:
    """Resolve the trajectory path (env ``REPRO_BENCH_TRAJECTORY`` wins)."""
    return os.environ.get("REPRO_BENCH_TRAJECTORY", DEFAULT_TRAJECTORY)


def git_sha(cwd: Optional[str] = None) -> str:
    """The HEAD commit, or ``REPRO_GIT_SHA``, or ``"unknown"``."""
    override = os.environ.get("REPRO_GIT_SHA")
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.decode("ascii", "replace").strip() or "unknown"


def extract_seconds_metrics(
    record: Dict[str, Any],
    _prefix: str = "",
    _inherited: bool = False,
) -> Dict[str, float]:
    """Flatten every seconds-like scalar of a bench record.

    A leaf qualifies when its key mentions ``second`` — or any enclosing
    dict's key does (``total_seconds: {tuple: ..., bitmask: ...}``) — and
    its value is a non-negative number.  This covers every record kind
    the bench modules emit (``engines.<name>.seconds``,
    ``replay_seconds.<kernel>``, ``mine_seconds_*``, ...) without
    per-kind schemas.  Lists are skipped deliberately: per-cell/per-shard
    arrays change length between configurations, which would churn the
    metric set.
    """
    metrics: Dict[str, float] = {}
    for key, value in record.items():
        path = _prefix + key if not _prefix else "%s.%s" % (_prefix, key)
        seconds_key = _inherited or "second" in key
        if isinstance(value, dict):
            metrics.update(extract_seconds_metrics(value, path, seconds_key))
        elif (
            seconds_key
            and isinstance(value, (int, float))
            and not isinstance(value, bool)
            and value >= 0
        ):
            metrics[path] = float(value)
    return metrics


def _cell_key(record: Dict[str, Any]) -> str:
    """A stable identity for the benchmark cell a record measured."""
    parts = [str(record.get("benchmark", "unknown"))]
    for field in ("database", "num_transactions"):
        if field in record:
            parts.append(str(record[field]))
    if "min_support_percent" in record:
        parts.append("%g%%" % record["min_support_percent"])
    elif "supports_percent" in record:
        parts.append(
            ",".join("%g" % s for s in record["supports_percent"]) + "%"
        )
    return ":".join(parts)


def make_entry(
    record: Dict[str, Any],
    sha: Optional[str] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, Any]:
    """Wrap a bench record in a keyed trajectory entry."""
    metrics = extract_seconds_metrics(record)
    return {
        "v": TRAJECTORY_VERSION,
        "type": "bench_entry",
        "benchmark": record.get("benchmark", "unknown"),
        "key": _cell_key(record),
        "git_sha": sha if sha is not None else git_sha(),
        "ts": timestamp if timestamp is not None else time.time(),
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
        "metrics": metrics,
        "record": record,
    }


def append_entry(path: str, entry: Dict[str, Any]) -> None:
    """Append one entry line; creates the parent directory if missing."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def load_trajectory(path: str) -> List[Dict[str, Any]]:
    """Read every entry of a trajectory file, in append order."""
    entries: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    "%s line %d is not JSON: %s" % (path, number, exc)
                ) from None
            if not isinstance(entry, dict) or entry.get("type") != "bench_entry":
                raise ValueError(
                    "%s line %d is not a bench_entry" % (path, number)
                )
            entries.append(entry)
    return entries


def record_run(
    record: Dict[str, Any],
    path: Optional[str],
    sha: Optional[str] = None,
) -> Optional[Dict[str, Any]]:
    """Append ``record`` to the trajectory at ``path`` (None: skip).

    The convenience the bench ``main``s call: returns the appended entry,
    or None when recording is off.
    """
    if not path:
        return None
    entry = make_entry(record, sha=sha)
    append_entry(path, entry)
    return entry
