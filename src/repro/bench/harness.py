"""Experiment runner behind the Figure 3 / Figure 4 benchmarks.

One *cell* of the paper's evaluation is (database, minimum support); for
each cell the figures report three panels: execution time, number of
candidates (excluding passes 1–2; including MFCS candidates for
Pincer-Search), and number of passes, for both algorithms.  The harness
runs a cell with any set of miners on the shared substrate and renders
rows shaped like those panels, plus the relative-time column the paper's
prose quotes ("Pincer-Search runs 1.7 times faster ...").

Cells where Apriori is hopeless — the paper's several-orders-of-magnitude
Figure 4 points — are handled with a per-miner time budget: the miner
raises :class:`~repro.core.result.MiningTimeout` and the row reports a
*lower bound* on its time (rendered as ``>N s``), so the relative-time
ratio is itself a lower bound, exactly like the paper's "more than 2
orders of magnitude" phrasing.
"""

from __future__ import annotations

import inspect
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..algorithms.apriori import Apriori
from ..core.pincer import PincerSearch
from ..core.result import MiningResult, MiningTimeout
from ..db.transaction_db import TransactionDatabase
from ..obs.instrument import NOOP, Instrumentation
from ..obs.logsetup import get_logger

logger = get_logger("bench.harness")

#: Default per-miner wall-clock budget (seconds) for one cell; override
#: with the REPRO_BENCH_BUDGET environment variable.  Raising it tightens
#: the DNF rows' lower-bound ratios toward the paper's ">2 orders of
#: magnitude" (Apriori genuinely needs hours on the Figure 4c cells).
DEFAULT_TIME_BUDGET = 45.0


def bench_budget() -> float:
    """Per-cell time budget (env ``REPRO_BENCH_BUDGET``, seconds)."""
    raw = os.environ.get("REPRO_BENCH_BUDGET", "")
    if not raw:
        return DEFAULT_TIME_BUDGET
    value = float(raw)
    if value <= 0:
        raise ValueError("REPRO_BENCH_BUDGET must be positive")
    return value


@dataclass(frozen=True)
class CellResult:
    """Measurements of one miner on one (database, support) cell.

    ``dnf`` marks a run that hit its time budget; its ``seconds`` is then
    a lower bound and the itemset counts are partial.
    """

    database: str
    min_support_percent: float
    algorithm: str
    seconds: float
    passes: int
    candidates: int  # paper convention: counted itemsets after pass 2
    total_candidates: int
    mfs_size: int
    longest_maximal: int
    maximal_found_in_mfcs: int
    dnf: bool = False

    @classmethod
    def from_result(
        cls,
        database: str,
        min_support_percent: float,
        result: MiningResult,
        seconds: float,
    ) -> "CellResult":
        longest = result.longest_maximal()
        return cls(
            database=database,
            min_support_percent=min_support_percent,
            algorithm=result.algorithm,
            seconds=seconds,
            passes=result.stats.num_passes,
            candidates=result.stats.candidates_after_pass2,
            total_candidates=result.stats.total_candidates,
            mfs_size=len(result.mfs),
            longest_maximal=len(longest) if longest else 0,
            maximal_found_in_mfcs=result.stats.total_maximal_found_in_mfcs,
        )

    @classmethod
    def from_timeout(
        cls,
        database: str,
        min_support_percent: float,
        timeout: MiningTimeout,
    ) -> "CellResult":
        return cls(
            database=database,
            min_support_percent=min_support_percent,
            algorithm=timeout.algorithm,
            seconds=timeout.seconds,
            passes=timeout.stats.num_passes,
            candidates=timeout.stats.candidates_after_pass2,
            total_candidates=timeout.stats.total_candidates,
            mfs_size=0,
            longest_maximal=0,
            maximal_found_in_mfcs=0,
            dnf=True,
        )


MinerFactory = Callable[[], object]

#: The two miners of the paper's evaluation.  Factories, because policy
#: objects are stateful per run.
PAPER_MINERS: Dict[str, MinerFactory] = {
    "pincer-search": lambda: PincerSearch(adaptive=True),
    "apriori": lambda: Apriori(),
}


def run_cell(
    db: TransactionDatabase,
    database_name: str,
    min_support_percent: float,
    miners: Optional[Dict[str, MinerFactory]] = None,
    time_budget: Optional[float] = None,
    obs: Optional[Instrumentation] = None,
) -> List[CellResult]:
    """Run every miner on one cell and return their measurements.

    The finishing miners' MFS outputs are cross-checked — a disagreement
    aborts the benchmark, because timing numbers for inconsistent answers
    are meaningless.  ``time_budget`` applies to miners whose ``mine``
    accepts it (Apriori); Pincer-Search is expected to finish.  ``obs``
    wraps each miner run in a ``cell`` span (miners whose ``mine`` takes
    the keyword also trace their own passes underneath it).
    """
    miners = miners if miners is not None else PAPER_MINERS
    obs = obs if obs is not None else NOOP
    results: List[CellResult] = []
    reference_mfs = None
    for name, factory in miners.items():
        miner = factory()
        kwargs = {}
        if time_budget is not None and _accepts_time_budget(miner):
            kwargs["time_budget"] = time_budget
        if obs.enabled and _accepts_obs(miner):
            kwargs["obs"] = obs
        started = time.perf_counter()
        with obs.span(
            "cell",
            database=database_name,
            min_support_percent=min_support_percent,
            miner=name,
        ):
            try:
                result = miner.mine(db, min_support_percent / 100.0, **kwargs)
            except MiningTimeout as timeout:
                logger.info(
                    "%s DNF on %s at %g%% after %.1fs",
                    name, database_name, min_support_percent, timeout.seconds,
                )
                results.append(
                    CellResult.from_timeout(
                        database_name, min_support_percent, timeout
                    )
                )
                continue
        elapsed = time.perf_counter() - started
        if reference_mfs is None:
            reference_mfs = result.mfs
        elif result.mfs != reference_mfs:
            raise AssertionError(
                "%s disagrees with %s on %s at %g%%"
                % (name, next(iter(miners)), database_name, min_support_percent)
            )
        logger.debug(
            "%s on %s at %g%%: %.3fs, %d passes",
            name, database_name, min_support_percent, elapsed,
            result.stats.num_passes,
        )
        results.append(
            CellResult.from_result(
                database_name, min_support_percent, result, elapsed
            )
        )
    return results


def _accepts_time_budget(miner: object) -> bool:
    return isinstance(miner, Apriori)


def _accepts_obs(miner: object) -> bool:
    """Whether ``miner.mine`` takes the ``obs`` keyword.

    Checked by signature rather than by type so the harness keeps working
    with the plain-callable miner factories tests inject.
    """
    try:
        return "obs" in inspect.signature(miner.mine).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False


def run_sweep(
    db: TransactionDatabase,
    database_name: str,
    supports_percent: Sequence[float],
    miners: Optional[Dict[str, MinerFactory]] = None,
    time_budget: Optional[float] = None,
    obs: Optional[Instrumentation] = None,
) -> List[CellResult]:
    """Run a whole support sweep (one figure panel row group)."""
    obs = obs if obs is not None else NOOP
    rows: List[CellResult] = []
    with obs.span("sweep", database=database_name, cells=len(supports_percent)):
        for support in supports_percent:
            rows.extend(
                run_cell(db, database_name, support, miners, time_budget, obs)
            )
    return rows


def relative_time(rows: Iterable[CellResult]) -> Dict[float, float]:
    """time(Apriori) / time(Pincer-Search) per support level.

    This is the headline number of the paper's prose; > 1 means
    Pincer-Search wins.  For DNF Apriori rows the ratio is a lower bound.
    """
    by_support: Dict[float, Dict[str, CellResult]] = {}
    for row in rows:
        by_support.setdefault(row.min_support_percent, {})[row.algorithm] = row
    ratios: Dict[float, float] = {}
    for support, cells in sorted(by_support.items()):
        apriori_row = cells.get("apriori")
        pincer_row = cells.get("pincer-search") or cells.get("pincer-search-pure")
        if apriori_row and pincer_row and pincer_row.seconds > 0:
            ratios[support] = apriori_row.seconds / pincer_row.seconds
    return ratios


def format_rows(rows: Sequence[CellResult], title: str = "") -> str:
    """Render cells as the three-panel table the figures report."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "%-14s %8s  %-20s %10s %7s %11s %6s %5s" % (
        "database", "minsup%", "algorithm", "time(s)", "passes",
        "candidates", "|MFS|", "max",
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        time_text = (">%.1f" % row.seconds) if row.dnf else ("%.3f" % row.seconds)
        mfs_text = "DNF" if row.dnf else "%d" % row.mfs_size
        lines.append(
            "%-14s %8g  %-20s %10s %7d %11d %6s %5d"
            % (
                row.database,
                row.min_support_percent,
                row.algorithm,
                time_text,
                row.passes,
                row.candidates,
                mfs_text,
                row.longest_maximal,
            )
        )
    ratios = relative_time(rows)
    if ratios:
        dnf_supports = {
            row.min_support_percent for row in rows if row.dnf
        }
        rendered = ", ".join(
            "%g%% -> %s%.2fx"
            % (support, ">" if support in dnf_supports else "", ratio)
            for support, ratio in sorted(ratios.items())
        )
        lines.append("relative time (apriori/pincer): %s" % rendered)
    return "\n".join(lines)
