"""Instrumentation-overhead benchmark for the ``repro.obs`` subsystem.

The observability layer promises to be near-zero-cost when disabled and
cheap when enabled.  This module measures both claims on a real mining
cell and records them in the machine-readable file the CI smoke job
tracks across PRs::

    python -m repro.bench.obs_overhead --out benchmarks/BENCH_obs.json

Two comparisons are made:

* **disabled overhead** — the per-pass cost the instrumentation hooks add
  to the counting hot path when observability is off.  The same recorded
  candidate batches are replayed twice: once through the engine's raw
  ``_count`` with hand-rolled pass accounting (the pre-instrumentation
  ``count()`` body), and once through the real ``count()`` with the
  default no-op instrumentation.  The difference is exactly the guard
  (`one attribute read and one truthiness check per pass`) the hooks
  cost, and must stay under a couple of percent.
* **enabled overhead** — a full Pincer-Search run with tracing and
  metrics written to files versus the same run with observability off.
  Enabled runs pay for JSON serialisation of every span, so this number
  is honest rather than tiny; it bounds what ``--trace`` costs a user.
* **telemetry overhead** — a full run on the multi-process sharded
  engine with the live heartbeat plane on (``--telemetry``) versus the
  same engine with it off.  Workers publish seqlock heartbeats into the
  shared segment and the coordinator polls them mid-pass; the budget for
  all of that is +-2%, gated by the CI ``telemetry-smoke`` job.

Both sides use best-of-``repeats`` wall-clock, the same convention as
:mod:`repro.bench.engines`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from ..core.pincer import PincerSearch
from ..db.base import SupportCounter
from ..db.counting import get_counter, select_engine
from ..db.parallel import ShardedCounter
from ..obs.instrument import Instrumentation, capture
from .engines import record_batches
from .experiments import DEFAULT_SCALE, ExperimentSpec, build_database
from .trajectory import record_run

__all__ = [
    "run_overhead_benchmark",
    "write_overhead_benchmark",
]


def _time_mine_disabled(db, fraction: float, repeats: int) -> float:
    """Best-of seconds for a full run with the default no-op obs."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        PincerSearch(adaptive=True).mine(db, fraction)
        best = min(best, time.perf_counter() - started)
    return best


def _time_mine_enabled(db, fraction: float, repeats: int) -> Dict[str, float]:
    """Best-of seconds for a full run tracing + metering to real files.

    ``finish()`` (metrics flush + trace close) is inside the timed
    region: it is part of what ``--trace``/``--metrics-out`` cost.
    """
    best = float("inf")
    events = 0
    for _ in range(max(1, repeats)):
        handle, trace_path = tempfile.mkstemp(suffix=".jsonl")
        os.close(handle)
        handle, metrics_path = tempfile.mkstemp(suffix=".json")
        os.close(handle)
        try:
            started = time.perf_counter()
            obs = capture(
                trace_path=trace_path,
                metrics_path=metrics_path,
                producer="bench-obs",
            )
            PincerSearch(adaptive=True).mine(db, fraction, obs=obs)
            obs.finish()
            best = min(best, time.perf_counter() - started)
            events = obs.tracer.events_emitted
        finally:
            os.remove(trace_path)
            os.remove(metrics_path)
    return {"seconds": best, "trace_events": events}


#: shard count for the telemetry pair — small enough to spawn quickly on
#: two-core CI runners, large enough that heartbeats actually interleave
_TELEMETRY_SHARDS = 2


def _time_mine_sharded_once(db, fraction: float, telemetry: bool):
    """One sharded-engine run; returns (seconds, plane).

    Both sides run with an *enabled* instrumentation bundle (live
    registry, no trace file) so the general metrics/span accounting —
    tracked separately as ``overhead_enabled_pct`` — is not billed to
    the telemetry plane; only the heartbeat config differs.
    """
    counter = ShardedCounter(num_shards=_TELEMETRY_SHARDS, use_processes=True)
    obs = capture(telemetry="auto") if telemetry else Instrumentation()
    with counter:
        started = time.perf_counter()
        PincerSearch(adaptive=True).mine(
            db, fraction, counter=counter, obs=obs
        )
        seconds = time.perf_counter() - started
        plane = "process" if counter.worker_pids else "serial"
    obs.finish()
    return seconds, plane


def _time_mine_sharded(db, fraction: float, repeats: int) -> Dict:
    """Best-of seconds on the sharded engine, heartbeat plane off vs on.

    Telemetry is isolated from tracing here: the capture carries only the
    telemetry config, so the difference against the plane-off run is
    exactly what the segment writes, the seqlock publishes, and the
    coordinator's mid-pass polls cost.  The off/on runs are interleaved
    per repeat: process spawns dominate these timings, so drift on a
    busy host must bias neither side of the best-of.
    """
    off = on = float("inf")
    plane = "serial"
    for _ in range(max(1, repeats)):
        seconds, _ = _time_mine_sharded_once(db, fraction, telemetry=False)
        off = min(off, seconds)
        seconds, plane = _time_mine_sharded_once(db, fraction, telemetry=True)
        on = min(on, seconds)
    return {"off": off, "on": on, "plane": plane}


def _replay_raw(db, batches: Sequence[Sequence], counter: SupportCounter) -> float:
    """Replay batches through the pre-instrumentation ``count()`` body."""
    counter.reset()
    started = time.perf_counter()
    for batch in batches:
        batch = list(batch)
        if not batch:
            continue
        counter.passes += 1
        counter.records_read += len(db)
        counter._check_deadline()
        result = counter._count(db, batch)
        counter.itemsets_counted += len(result)
    return time.perf_counter() - started


def _replay_guarded(
    db, batches: Sequence[Sequence], counter: SupportCounter
) -> float:
    """Replay the same batches through the real (guarded) ``count()``."""
    counter.reset()
    started = time.perf_counter()
    for batch in batches:
        counter.count(db, batch)
    return time.perf_counter() - started


def run_overhead_benchmark(
    database: str = "T10.I4.D100K",
    min_support_percent: float = 1.5,
    scale: Optional[int] = None,
    repeats: int = 5,
) -> Dict:
    """Measure disabled and enabled overhead; returns the JSON record."""
    spec = ExperimentSpec("bench-obs", database, 2000, (), "")
    db = build_database(spec, num_transactions=scale)
    fraction = min_support_percent / 100.0
    engine_name = select_engine(db)
    batches = record_batches(db, min_support_percent)

    counter = get_counter(engine_name)
    # interleave the raw/guarded pairs so clock drift on a busy host
    # biases neither side of the best-of comparison
    raw = guarded = float("inf")
    for _ in range(max(1, repeats)):
        raw = min(raw, _replay_raw(db, batches, counter))
        guarded = min(guarded, _replay_guarded(db, batches, counter))
    disabled = _time_mine_disabled(db, fraction, repeats)
    enabled = _time_mine_enabled(db, fraction, repeats)
    sharded = _time_mine_sharded(db, fraction, repeats)

    record: Dict = {
        "benchmark": "obs-overhead",
        "database": database,
        "min_support_percent": min_support_percent,
        "num_transactions": len(db),
        "engine": engine_name,
        "passes": len(batches),
        "repeats": repeats,
        "cpu_count": os.cpu_count() or 1,
        "count_seconds_raw": round(raw, 6),
        "count_seconds_guarded": round(guarded, 6),
        "overhead_disabled_pct": round(100.0 * (guarded - raw) / raw, 3),
        "mine_seconds_disabled": round(disabled, 6),
        "mine_seconds_enabled": round(enabled["seconds"], 6),
        "overhead_enabled_pct": round(
            100.0 * (enabled["seconds"] - disabled) / disabled, 3
        ),
        "trace_events_per_run": enabled["trace_events"],
        "telemetry_shards": _TELEMETRY_SHARDS,
        "telemetry_plane": sharded["plane"],
        "mine_seconds_sharded": round(sharded["off"], 6),
        "mine_seconds_telemetry": round(sharded["on"], 6),
        "overhead_telemetry_pct": round(
            100.0 * (sharded["on"] - sharded["off"]) / sharded["off"], 3
        ),
    }
    return record


def write_overhead_benchmark(path: str, record: Dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.obs_overhead",
        description="measure the observability layer's overhead on one cell",
    )
    parser.add_argument("--database", default="T10.I4.D100K")
    parser.add_argument("--min-support", type=float, default=1.5, metavar="PCT")
    parser.add_argument(
        "--scale", type=int, default=None,
        help="|D| override (default: REPRO_BENCH_SCALE or %d)" % DEFAULT_SCALE,
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON record here (default: stdout only)",
    )
    parser.add_argument(
        "--trajectory", default=None, metavar="PATH",
        help="append this run to the bench trajectory JSONL "
        "(gate it with python -m repro.bench.regress)",
    )
    args = parser.parse_args(argv)
    record = run_overhead_benchmark(
        database=args.database,
        min_support_percent=args.min_support,
        scale=args.scale,
        repeats=args.repeats,
    )
    json.dump(record, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    if args.out:
        write_overhead_benchmark(args.out, record)
    record_run(record, args.trajectory)
    return 0


if __name__ == "__main__":
    sys.exit(main())
