"""Benchmark-regression sentinel: gate CI on the bench trajectory.

``python -m repro.bench.regress`` compares, for every benchmark cell in
the trajectory (see :mod:`repro.bench.trajectory`), the **latest** entry
against a **baseline window** of the preceding runs of the same cell:

* baseline value = median of the metric over the window (median, not
  min: a single lucky run must not make every later run look slow);
* a metric regresses when ``latest / baseline > threshold`` *and* the
  baseline is above a noise floor (microsecond-scale metrics jitter by
  integer factors without meaning anything);
* exit status 1 when anything regressed, 0 otherwise — a cell seen for
  the first time is a *fresh baseline* and passes by construction.

Cross-host comparisons are refused by default (a laptop's seconds say
nothing about a CI runner's); ``--allow-cross-host`` overrides when the
operator knows better.

Typical gate::

    python -m repro.bench.regress --trajectory benchmarks/trajectory.jsonl \\
        --threshold 1.5 --window 5
"""

from __future__ import annotations

import argparse
import json
import sys
from statistics import median
from typing import Any, Dict, List, Optional

from .trajectory import default_trajectory_path, load_trajectory

__all__ = ["RegressionReport", "check_trajectory", "main"]

#: metrics with a baseline below this many seconds are ignored — pure
#: scheduler noise at that scale
DEFAULT_NOISE_FLOOR = 0.01

DEFAULT_THRESHOLD = 1.5
DEFAULT_WINDOW = 5


class RegressionReport:
    """Outcome of one trajectory check: comparisons + regressions."""

    def __init__(self) -> None:
        self.comparisons: List[Dict[str, Any]] = []
        self.regressions: List[Dict[str, Any]] = []
        self.fresh_keys: List[str] = []
        self.skipped_keys: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "comparisons": self.comparisons,
            "regressions": self.regressions,
            "fresh_keys": self.fresh_keys,
            "skipped_keys": self.skipped_keys,
        }

    def summary(self) -> str:
        lines: List[str] = []
        for row in self.comparisons:
            marker = "REGRESSION" if row["regressed"] else "ok"
            lines.append(
                "%-10s %-46s %-34s %8.4fs vs %8.4fs (x%.2f, n=%d)"
                % (
                    marker, row["key"][:46], row["metric"][:34],
                    row["latest"], row["baseline"], row["ratio"],
                    row["baseline_runs"],
                )
            )
        for key in self.fresh_keys:
            lines.append("fresh      %-46s (no baseline yet; pass)" % key[:46])
        for key in self.skipped_keys:
            lines.append("skipped    %-46s (different host)" % key[:46])
        if not lines:
            lines.append("trajectory is empty; nothing to compare")
        lines.append(
            "regressions: %d of %d comparisons"
            % (len(self.regressions), len(self.comparisons))
        )
        return "\n".join(lines)


def _same_host(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    ha, hb = a.get("host", {}), b.get("host", {})
    return ha.get("platform") == hb.get("platform") and ha.get(
        "cpu_count"
    ) == hb.get("cpu_count")


def check_trajectory(
    entries: List[Dict[str, Any]],
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
    benchmark: Optional[str] = None,
    allow_cross_host: bool = False,
) -> RegressionReport:
    """Compare the latest entry of every cell against its baseline window."""
    if threshold <= 1.0:
        raise ValueError("threshold must be > 1.0 (it is a slowdown ratio)")
    if window < 1:
        raise ValueError("window must be at least 1")
    report = RegressionReport()
    by_key: Dict[str, List[Dict[str, Any]]] = {}
    for entry in entries:
        if benchmark is not None and entry.get("benchmark") != benchmark:
            continue
        by_key.setdefault(entry["key"], []).append(entry)
    for key, runs in sorted(by_key.items()):
        latest = runs[-1]
        baseline_pool = [
            run
            for run in runs[:-1]
            if allow_cross_host or _same_host(run, latest)
        ]
        if not baseline_pool:
            if len(runs) > 1:
                report.skipped_keys.append(key)
            else:
                report.fresh_keys.append(key)
            continue
        baseline_runs = baseline_pool[-window:]
        for metric, latest_value in sorted(latest.get("metrics", {}).items()):
            history = [
                run["metrics"][metric]
                for run in baseline_runs
                if metric in run.get("metrics", {})
            ]
            if not history:
                continue
            baseline_value = median(history)
            if baseline_value < noise_floor:
                continue
            ratio = (
                latest_value / baseline_value
                if baseline_value > 0
                else float("inf")
            )
            row = {
                "key": key,
                "metric": metric,
                "latest": latest_value,
                "baseline": baseline_value,
                "ratio": round(ratio, 4),
                "baseline_runs": len(history),
                "threshold": threshold,
                "regressed": ratio > threshold,
                "latest_git_sha": latest.get("git_sha", "unknown"),
            }
            report.comparisons.append(row)
            if row["regressed"]:
                report.regressions.append(row)
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regress",
        description="fail when the latest bench run regressed vs its history",
    )
    parser.add_argument(
        "--trajectory", default=None, metavar="PATH",
        help="trajectory JSONL (default: REPRO_BENCH_TRAJECTORY or %s)"
        % default_trajectory_path(),
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="slowdown ratio that fails the check (default %g)"
        % DEFAULT_THRESHOLD,
    )
    parser.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW,
        help="how many prior runs form the baseline median (default %d)"
        % DEFAULT_WINDOW,
    )
    parser.add_argument(
        "--noise-floor", type=float, default=DEFAULT_NOISE_FLOOR,
        metavar="SECONDS",
        help="ignore metrics whose baseline is below this (default %g)"
        % DEFAULT_NOISE_FLOOR,
    )
    parser.add_argument(
        "--benchmark", default=None,
        help="only check entries of this benchmark kind",
    )
    parser.add_argument(
        "--allow-cross-host", action="store_true",
        help="compare runs recorded on different hosts",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the full report as JSON",
    )
    args = parser.parse_args(argv)
    path = args.trajectory if args.trajectory else default_trajectory_path()
    try:
        entries = load_trajectory(path)
    except OSError as exc:
        sys.stderr.write("cannot read trajectory: %s\n" % exc)
        return 2
    except ValueError as exc:
        sys.stderr.write("malformed trajectory: %s\n" % exc)
        return 2
    try:
        report = check_trajectory(
            entries,
            threshold=args.threshold,
            window=args.window,
            noise_floor=args.noise_floor,
            benchmark=args.benchmark,
            allow_cross_host=args.allow_cross_host,
        )
    except ValueError as exc:
        parser.error(str(exc))
    sys.stdout.write(report.summary() + "\n")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
