"""Out-of-core partitioned-mining benchmark: phase-I I/O structure.

The cell is a beyond-budget row-scale database: ~10M Zipf-skewed retail
baskets over a 128-item universe with two planted 8–9-item patterns in
the popularity tail, snapshotted in the partitioned v2 layout.  The
dense packed matrix is ~160 MB; the memory budget is a quarter of that,
so the matrix never fits and every configuration mines out of core.
The support threshold keeps the frequent-item universe compact (the
Zipf head plus the planted tail), which is both the regime the paper's
MFCS descent targets and what makes phase I I/O-bound rather than
dominated by symmetric candidate arithmetic — see
:func:`planted_patterns`.

Two configurations mine the identical row stream under the identical
byte budget:

``p1``
    A single-partition snapshot.  The one partition exceeds the budget,
    so **every** counting pass of every phase re-streams the matrix
    through budget-sized word-column windows (attach window, count,
    detach + ``posix_fadvise(DONTNEED)``) — per-pass I/O proportional to
    the matrix size, and no index state survives between passes.

``p4``
    A four-partition snapshot whose partitions each fit the budget
    exactly.  Phase I attaches a partition once, mines its local MFS
    entirely resident (prefix-intersection caches and all), and
    detaches — the matrix is faulted once per phase, not once per pass.

The headline ``speedup_phase1_partitioned_vs_single`` isolates that
structural difference.  On a single-core host no parallelism is
involved (and the benchmark records ``cpu_count`` so readers can tell):
the win measured here is purely the Partition-scheme I/O shape the
miner's docstring promises.  Every timed mine starts with the
snapshot's page cache dropped and the best of ``--repeats`` cold runs
is recorded, so the number does not depend on run order or residual
warmth.  Both configurations must produce the byte-identical MFS, and
every planted pattern must be covered by it — the run aborts otherwise.

Regenerate the committed record (takes a few minutes at full scale)::

    python -m repro.bench.partition --out benchmarks/BENCH_partition.json \\
        --trajectory benchmarks/trajectory.jsonl

CI smoke-scales the same cell down (``--rows 20000 --items 64``), which
keys a separate trajectory cell, so full-scale and smoke entries are
never compared against each other.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import time
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Tuple

from ..algorithms.partitioned import PartitionedPincerMiner
from ..db.snapshot import Snapshot, load_snapshot, write_partitioned_snapshot
from ..db.vertical import HAVE_NUMPY
from .trajectory import record_run

__all__ = [
    "SnapshotOnlyDatabase",
    "build_snapshot",
    "pattern_zipf_stream",
    "planted_patterns",
    "run_partition_benchmark",
]

#: Default row count: the smallest multiple of ``64 * 4`` above ten
#: million, so a four-way split lands on exact 64-row boundaries and the
#: per-partition matrix is exactly a quarter of the dense matrix — which
#: lets ``budget = matrix_bytes // 4`` hold one partition resident while
#: staying at (not above) the advertised quarter-budget.
DEFAULT_ROWS = 10_000_384

DEFAULT_ITEMS = 128
DEFAULT_SEED = 29

#: Probability that a basket carries one planted pattern overlay.  High
#: enough that both patterns sit comfortably above the default support
#: threshold (0.35 * 0.4 = 14% for the weaker one vs the 8% default).
DEFAULT_PATTERN_PROB = 0.35

#: Default minimum support, percent.  Chosen so only the Zipf head (a
#: dozen or so noise items) plus the 17 planted-pattern items clear the
#: bar: a compact frequent set keeps candidate counting cheap relative
#: to the per-pass matrix I/O that the two configurations differ in.
DEFAULT_MIN_SUPPORT = 8.0


def planted_patterns(
    num_items: int,
) -> Tuple[Tuple[Tuple[int, ...], float], ...]:
    """Two 8–9-item patterns in the Zipf tail, with draw weights.

    Tail items' noise support is negligible under the default skew, so
    each pattern's global support is essentially ``pattern_prob`` times
    its weight — planted ground truth the benchmark can assert on.  Long
    patterns over a small frequent-item universe are Pincer-Search's
    motivating regime (the MFS is deep, so the MFCS descent does the
    work), and they keep the cell I/O-bound: candidate volume grows with
    the *square* of the frequent-item count while per-pass matrix I/O
    grows linearly, so a compact frequent set is what lets the benchmark
    measure the phase-I I/O structure instead of symmetric AND/popcount
    arithmetic.
    """
    if num_items < 64:
        raise ValueError("planted patterns need a universe of >= 64 items")
    return (
        (tuple(range(num_items - 56, num_items - 47)), 0.6),  # 9 items
        (tuple(range(num_items - 40, num_items - 32)), 0.4),  # 8 items
    )


def pattern_zipf_stream(
    num_rows: int,
    num_items: int = DEFAULT_ITEMS,
    seed: int = DEFAULT_SEED,
    pattern_prob: float = DEFAULT_PATTERN_PROB,
    skew: float = 1.3,
    avg_basket_size: int = 8,
) -> Iterator[List[int]]:
    """Stream Zipf baskets with planted tail patterns, one row at a time.

    Deterministic in ``seed`` and O(1) memory — the generator is what
    lets the benchmark build beyond-RAM snapshots without ever holding
    the database: :func:`repro.db.snapshot.write_partitioned_snapshot`
    consumes it directly.  Re-invoking with the same arguments replays
    the identical stream, which is how the ``p1`` and ``p4`` snapshots
    are guaranteed to serialise the same database.

    Each basket draws a geometric number (mean ``avg_basket_size``) of
    Zipf(``skew``) noise items; with ``pattern_prob`` one planted
    pattern (weighted per :func:`planted_patterns`) is overlaid.
    """
    rng = random.Random(seed)
    weights = [1.0 / (rank ** skew) for rank in range(1, num_items + 1)]
    cumulative: List[float] = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)
    stop_prob = 1.0 / max(1, avg_basket_size)
    patterns = planted_patterns(num_items)
    pattern_cum: List[float] = []
    pattern_total = 0.0
    for _, weight in patterns:
        pattern_total += weight
        pattern_cum.append(pattern_total)
    for _ in range(num_rows):
        basket = set()
        while True:
            basket.add(bisect_left(cumulative, rng.random() * total))
            if rng.random() < stop_prob:
                break
        if rng.random() < pattern_prob:
            point = rng.random() * pattern_total
            basket.update(patterns[bisect_left(pattern_cum, point)][0])
        yield sorted(basket)


class SnapshotOnlyDatabase:
    """Header-only database surface over a partitioned snapshot.

    The partitioned miner reads transactions exclusively through
    partition handles, so a beyond-RAM benchmark needs only the row
    count, the universe, and the snapshot path — never the rows
    themselves.  This is deliberately *not* iterable: anything trying to
    stream rows out of it at this scale is a bug, and fails loudly.
    """

    def __init__(self, snapshot) -> None:
        self._snapshot = (
            snapshot
            if isinstance(snapshot, Snapshot)
            else load_snapshot(snapshot)
        )
        self.snapshot_path = self._snapshot.path

    def __len__(self) -> int:
        return self._snapshot.num_rows

    @property
    def universe(self) -> Tuple[int, ...]:
        return self._snapshot.universe

    @property
    def num_items(self) -> int:
        return len(self._snapshot.universe)


def build_snapshot(
    path,
    num_rows: int,
    num_items: int,
    num_partitions: int,
    seed: int = DEFAULT_SEED,
) -> float:
    """Stream the benchmark cell into a v2 snapshot; returns seconds."""
    started = time.perf_counter()
    write_partitioned_snapshot(
        path,
        range(num_items),
        num_rows,
        pattern_zipf_stream(num_rows, num_items, seed),
        num_partitions=num_partitions,
    )
    return time.perf_counter() - started


def _drop_page_cache(path) -> None:
    """Evict a snapshot's pages so every timed mine starts cold.

    Residual page-cache warmth from a previous run (or from writing the
    snapshot) favours whichever configuration re-faults most, so the
    measured I/O asymmetry would depend on run order.  ``sync`` first so
    freshly written pages are clean enough for the kernel to drop.
    Best-effort: platforms without ``posix_fadvise`` simply run warm.
    """
    if not hasattr(os, "posix_fadvise"):  # pragma: no cover - non-POSIX
        return
    os.sync()
    fd = os.open(path, os.O_RDONLY)
    try:
        os.posix_fadvise(fd, 0, 0, os.POSIX_FADV_DONTNEED)
    finally:
        os.close(fd)


def _mine_config(
    snapshot_path, budget: Optional[int], min_count: int
) -> Tuple[object, Dict]:
    """One full cold-start partitioned mine; returns (result, summary)."""
    _drop_page_cache(snapshot_path)
    db = SnapshotOnlyDatabase(snapshot_path)
    miner = PartitionedPincerMiner(memory_budget=budget)
    started = time.perf_counter()
    result = miner.mine(db, min_count=min_count)
    mine_seconds = time.perf_counter() - started
    evidence = result.stats.engine_evidence
    summary = {
        "partitions": evidence.get("partitions"),
        "phase1_seconds": round(result.stats.passes[0].seconds, 6),
        "phase2_seconds": round(result.stats.passes[1].seconds, 6),
        "mine_seconds": round(mine_seconds, 6),
        "passes": result.stats.num_passes,
        "records_read": result.stats.records_read,
        "local_mfs_total": evidence.get("local_mfs_total"),
        "attaches": evidence.get("attaches"),
        "max_mapped_bytes": evidence.get("max_mapped_bytes"),
        "max_mapped_partitions": evidence.get("max_mapped_partitions"),
    }
    return result, summary


def run_partition_benchmark(
    num_rows: int = DEFAULT_ROWS,
    num_items: int = DEFAULT_ITEMS,
    num_partitions: int = 4,
    budget_fraction: float = 0.25,
    min_support_percent: float = DEFAULT_MIN_SUPPORT,
    seed: int = DEFAULT_SEED,
    workdir: str = os.path.join("scratch", "partition-bench"),
    keep: bool = False,
    repeats: int = 2,
) -> Dict:
    """Build both snapshots, mine both configurations, return the record.

    Each configuration is mined ``repeats`` times, cold-started each
    time (see :func:`_drop_page_cache`), and the best wall-clock run is
    recorded — the same best-of convention as ``repro.bench.engines``.
    Raises ``AssertionError`` if any two runs disagree on the MFS or if
    any planted pattern is not covered by it — a wrong answer must
    never become a committed benchmark number.
    """
    num_words = max(1, (num_rows + 63) // 64)
    matrix_bytes = 8 * num_items * num_words
    budget = max(1, int(matrix_bytes * budget_fraction))
    min_count = max(1, int(num_rows * min_support_percent / 100.0))
    os.makedirs(workdir, exist_ok=True)
    configs: Dict[str, Dict] = {}
    results = {}
    try:
        for partitions in (1, num_partitions):
            label = "p%d" % partitions
            snap_path = os.path.join(
                workdir, "zipfpat_%s_%d.snap" % (label, num_rows)
            )
            build_seconds = build_snapshot(
                snap_path, num_rows, num_items, partitions, seed
            )
            result = summary = None
            for _ in range(max(1, repeats)):
                rep_result, rep_summary = _mine_config(
                    snap_path, budget, min_count
                )
                if result is not None and rep_result.mfs != result.mfs:
                    raise AssertionError(
                        "repeated %s mines disagree on the MFS" % label
                    )
                if (
                    summary is None
                    or rep_summary["mine_seconds"] < summary["mine_seconds"]
                ):
                    result, summary = rep_result, rep_summary
            summary["snapshot_build_seconds"] = round(build_seconds, 6)
            summary["repeats"] = max(1, repeats)
            configs[label] = summary
            results[label] = result
    finally:
        if not keep:
            shutil.rmtree(workdir, ignore_errors=True)

    baseline = results["p1"]
    partitioned = results["p%d" % num_partitions]
    if baseline.mfs != partitioned.mfs:
        raise AssertionError(
            "p1 and p%d configurations disagree on the MFS (%d vs %d "
            "members); refusing to record a benchmark over a wrong answer"
            % (num_partitions, len(baseline.mfs), len(partitioned.mfs))
        )
    patterns = [pattern for pattern, _ in planted_patterns(num_items)]
    uncovered = [
        pattern for pattern in patterns
        if not any(set(pattern) <= set(member) for member in partitioned.mfs)
    ]
    if uncovered:
        raise AssertionError(
            "planted patterns %r are not covered by the mined MFS; the "
            "benchmark cell no longer measures what it claims" % uncovered
        )

    record: Dict = {
        "benchmark": "partition-outofcore",
        "database": "ZIPFPAT.N%d.S29" % num_items,
        "num_transactions": num_rows,
        "num_items": num_items,
        "min_support_percent": min_support_percent,
        "min_support_count": min_count,
        "matrix_bytes": matrix_bytes,
        "memory_budget": budget,
        "budget_fraction": budget_fraction,
        "num_partitions": num_partitions,
        "cpu_count": os.cpu_count() or 1,
        "numpy": HAVE_NUMPY,
        "seed": seed,
        "mfs_identical": True,
        "mfs_size": len(partitioned.mfs),
        "planted_patterns": [list(pattern) for pattern in patterns],
        "patterns_covered": True,
        "configs": configs,
    }
    p1 = configs["p1"]["phase1_seconds"]
    pn = configs["p%d" % num_partitions]["phase1_seconds"]
    if p1 and pn:
        record["speedup_phase1_partitioned_vs_single"] = round(p1 / pn, 3)
    total1 = configs["p1"]["mine_seconds"]
    totaln = configs["p%d" % num_partitions]["mine_seconds"]
    if total1 and totaln:
        record["speedup_total_partitioned_vs_single"] = round(
            total1 / totaln, 3
        )
    return record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.partition",
        description="out-of-core partitioned mining benchmark "
        "(phase-I I/O structure, quarter-matrix budget)",
    )
    parser.add_argument("--rows", type=int, default=DEFAULT_ROWS)
    parser.add_argument("--items", type=int, default=DEFAULT_ITEMS)
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument(
        "--budget-fraction", type=float, default=0.25,
        help="memory budget as a fraction of the dense matrix "
        "(default 0.25)",
    )
    parser.add_argument(
        "--min-support", type=float, default=DEFAULT_MIN_SUPPORT,
        metavar="PCT",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--workdir", default=os.path.join("scratch", "partition-bench"),
        help="scratch directory for the generated snapshots "
        "(removed afterwards unless --keep)",
    )
    parser.add_argument("--keep", action="store_true")
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="cold-start mines per configuration; best run is recorded",
    )
    parser.add_argument("--out", default=None, metavar="PATH")
    parser.add_argument(
        "--trajectory", default=None, metavar="PATH",
        help="append this run to the bench trajectory JSONL "
        "(gate it with python -m repro.bench.regress)",
    )
    args = parser.parse_args(argv)
    record = run_partition_benchmark(
        num_rows=args.rows,
        num_items=args.items,
        num_partitions=args.partitions,
        budget_fraction=args.budget_fraction,
        min_support_percent=args.min_support,
        seed=args.seed,
        workdir=args.workdir,
        keep=args.keep,
        repeats=args.repeats,
    )
    json.dump(record, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
    record_run(record, args.trajectory)
    return 0


if __name__ == "__main__":
    sys.exit(main())
