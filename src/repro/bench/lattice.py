"""Lattice-kernel micro-benchmark: isolate the pure-Python lattice side.

PR 1's counting engines left candidate generation and MFS/MFCS
maintenance as the per-pass bottleneck; the bitmask kernel
(:mod:`repro.core.kernel`) attacks exactly that.  This module measures it
in isolation: a real Pincer-Search run executes once behind a *recording*
kernel that journals every lattice operation — joins, prunes, full
candidate generations, MFS-cover adds and queries, MFCS updates (with
their ``size_cap``/``work_cap``), removals, and cover probes — and the
journal is then replayed, in order, against each kernel under test with
per-operation-group wall-clock accumulated.

Because the journal is replayed *in order* against live cover/MFCS
structures, every kernel sees exactly the states the original run
produced, and the replays double as a differential test: every operation's
output is compared across kernels and a mismatch aborts the benchmark.

Run as a module to (re)generate the machine-readable records the CI
benchmark smoke job tracks across PRs::

    python -m repro.bench.lattice --out benchmarks/BENCH_lattice.json \\
        --pass-out benchmarks/BENCH_pass.json

``BENCH_lattice.json`` carries per-kernel seconds for the two headline
groups (``candidate_generation``, ``mfcs_maintenance``) plus the MFS-cover
group, and the ratios ``speedup_candidate_generation`` /
``speedup_mfcs_maintenance``.  ``BENCH_pass.json`` times two *end-to-end*
mining runs (one per kernel) on the same cells and records per-pass
wall-clock, verifying the kernels return identical maximum frequent sets.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.itemset import Itemset
from ..core.kernel import KERNEL_NAMES, LatticeKernel, TupleKernel, make_kernel
from ..core.pincer import PincerSearch
from ..db.counting import get_counter
from ..db.transaction_db import TransactionDatabase
from ..db.vertical import HAVE_NUMPY
from .experiments import DEFAULT_SCALE, ExperimentSpec, build_database
from .trajectory import record_run

__all__ = [
    "RecordingKernel",
    "record_events",
    "replay_events",
    "run_lattice_benchmark",
    "run_pass_benchmark",
    "write_benchmark",
]

#: operation -> timing group; the first two are the headline groups
GROUP_OF = {
    "generate": "candidate_generation",
    "join": "candidate_generation",
    "prune": "candidate_generation",
    "mfcs_update": "mfcs_maintenance",
    "mfcs_remove": "mfcs_maintenance",
    "mfcs_covers": "mfcs_maintenance",
    "cover_add": "mfs_cover",
    "cover_covers": "mfs_cover",
}

GROUPS = ("candidate_generation", "mfcs_maintenance", "mfs_cover")


class _RecordingCover:
    """MFS-cover proxy journaling mutations and queries.

    Only the operations the miners issue directly are journaled; probes a
    kernel makes *internally* (recovery, pincer-prune, MFCS-gen's
    ``protected`` checks) go straight to the wrapped cover, because the
    replay re-executes those parent operations whole.
    """

    def __init__(self, inner, events: List) -> None:
        self._inner = inner
        self._events = events

    def add(self, member: Itemset):
        self._events.append(("cover_add", (member,)))
        return self._inner.add(member)

    def covers(self, probe: Itemset) -> bool:
        self._events.append(("cover_covers", (probe,)))
        return self._inner.covers(probe)

    def supersets_of(self, probe: Itemset):
        return self._inner.supersets_of(probe)

    @property
    def members(self):
        return self._inner.members

    def __len__(self) -> int:
        return len(self._inner)

    def __iter__(self):
        return iter(self._inner)

    def __contains__(self, member: Itemset) -> bool:
        return member in self._inner

    def __bool__(self) -> bool:
        return bool(self._inner)


class _RecordingMFCS:
    """MFCS proxy journaling updates (with caps), removals, and probes."""

    def __init__(self, inner, events: List) -> None:
        self._inner = inner
        self._events = events

    def update(
        self,
        infrequent_sets: Iterable[Itemset],
        protected=None,
        size_cap: Optional[int] = None,
        work_cap: Optional[int] = None,
    ) -> bool:
        infrequents = list(infrequent_sets)
        self._events.append(("mfcs_update", (infrequents, size_cap, work_cap)))
        # unwrap a recording cover so its internal probes are not journaled
        inner_protected = getattr(protected, "_inner", protected)
        return self._inner.update(
            infrequents,
            protected=inner_protected,
            size_cap=size_cap,
            work_cap=work_cap,
        )

    def remove(self, element: Itemset) -> None:
        self._events.append(("mfcs_remove", (element,)))
        self._inner.remove(element)

    def covers(self, probe: Itemset) -> bool:
        self._events.append(("mfcs_covers", (probe,)))
        return self._inner.covers(probe)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def __len__(self) -> int:
        return len(self._inner)

    def __iter__(self):
        return iter(self._inner)

    def __contains__(self, element: Itemset) -> bool:
        return element in self._inner

    def __bool__(self) -> bool:
        return bool(self._inner)


class RecordingKernel(LatticeKernel):
    """Tuple kernel that journals every lattice operation it serves.

    Inject into a miner via its ``kernel`` parameter (a kernel *instance*
    passes straight through :func:`~repro.core.kernel.make_kernel`); the
    journal lands in ``self.events`` ready for :func:`replay_events`.
    """

    name = "recording"

    def __init__(self) -> None:
        self._inner = TupleKernel()
        self.events: List[Tuple[str, tuple]] = []

    def make_cover(self, members: Iterable[Itemset] = ()):
        cover = _RecordingCover(self._inner.make_cover(), self.events)
        for member in members:
            cover.add(member)
        return cover

    def make_mfcs(self, universe: Iterable[int]):
        items = tuple(sorted(set(universe)))
        self.events.append(("mfcs_init", (items,)))
        return _RecordingMFCS(self._inner.make_mfcs(items), self.events)

    def apriori_join(self, level_frequents, deadline=None):
        frequents = sorted(level_frequents)
        self.events.append(("join", (frequents,)))
        return self._inner.apriori_join(frequents, deadline=deadline)

    def apriori_prune(self, candidates, level_frequents):
        pending = sorted(candidates)
        frequents = sorted(level_frequents)
        self.events.append(("prune", (pending, frequents)))
        return self._inner.apriori_prune(pending, frequents)

    def recovery(self, level_frequents, mfs, k):
        frequents = sorted(level_frequents)
        mfs = getattr(mfs, "_inner", mfs)
        self.events.append(("recovery", (frequents, sorted(mfs.members), k)))
        return self._inner.recovery(frequents, mfs, k)

    def pincer_prune(self, candidates, level_frequents, mfs):
        pending = sorted(candidates)
        frequents = sorted(level_frequents)
        mfs = getattr(mfs, "_inner", mfs)
        self.events.append(
            ("pincer_prune", (pending, frequents, sorted(mfs.members)))
        )
        return self._inner.pincer_prune(pending, frequents, mfs)

    def generate_candidates(self, level_frequents, mfs, k):
        frequents = sorted(level_frequents)
        self.events.append(("generate", (frequents, k)))
        # the live (unwrapped) cover: internal probes belong to this event
        return self._inner.generate_candidates(
            frequents, getattr(mfs, "_inner", mfs), k
        )


def record_events(
    db: TransactionDatabase, min_support_percent: float
) -> List[Tuple[str, tuple]]:
    """Journal the lattice operations of one pure Pincer-Search run.

    Recording runs with ``adaptive=False``: the adaptive policy abandons
    the MFCS on exactly the workloads where its maintenance is expensive,
    which would leave the journal's ``mfcs_maintenance`` group measuring
    setup noise instead of MFCS-gen.  The pure run keeps the full
    top-down workload in the journal; the end-to-end pass benchmark
    (:func:`run_pass_benchmark`) covers the adaptive configuration.
    """
    recorder = RecordingKernel()
    PincerSearch(adaptive=False, kernel=recorder).mine(
        db, min_support_percent / 100.0, counter=get_counter("bitmap")
    )
    return recorder.events


def replay_events(
    events: Sequence[Tuple[str, tuple]],
    kernel: LatticeKernel,
    timings: Optional[Dict[str, float]] = None,
) -> List:
    """Re-execute a journal against ``kernel``; returns per-event outputs.

    The live cover/MFCS state threads through the replay exactly as it did
    through the recorded run, so outputs are directly comparable across
    kernels.  When ``timings`` is given, wall-clock per
    :data:`GROUP_OF` group is accumulated into it.
    """
    cover = kernel.make_cover()
    mfcs = None
    outputs: List = []
    clock = time.perf_counter
    for op, payload in events:
        if op == "mfcs_init":
            mfcs = kernel.make_mfcs(payload[0])
            outputs.append(None)
            continue
        started = clock()
        if op == "generate":
            frequents, k = payload
            result = sorted(kernel.generate_candidates(frequents, cover, k))
        elif op == "join":
            result = sorted(kernel.apriori_join(payload[0]))
        elif op == "prune":
            result = sorted(kernel.apriori_prune(*payload))
        elif op == "recovery":
            frequents, mfs_members, k = payload
            result = sorted(
                kernel.recovery(frequents, kernel.make_cover(mfs_members), k)
            )
        elif op == "pincer_prune":
            pending, frequents, mfs_members = payload
            result = sorted(
                kernel.pincer_prune(
                    pending, frequents, kernel.make_cover(mfs_members)
                )
            )
        elif op == "mfcs_update":
            infrequents, size_cap, work_cap = payload
            completed = mfcs.update(
                infrequents,
                protected=cover,
                size_cap=size_cap,
                work_cap=work_cap,
            )
            # a capped (abandoned) update leaves formally meaningless
            # contents whose exact shape depends on kernel-internal
            # element order — only the abandon signal must agree
            result = (completed, sorted(mfcs) if completed else None)
        elif op == "mfcs_remove":
            mfcs.remove(payload[0])
            result = None
        elif op == "mfcs_covers":
            result = mfcs.covers(payload[0])
        elif op == "cover_add":
            cover.add(payload[0])
            result = None
        elif op == "cover_covers":
            result = cover.covers(payload[0])
        else:  # pragma: no cover - journal and replay ship together
            raise ValueError("unknown journal operation %r" % op)
        if timings is not None:
            timings[GROUP_OF[op]] += clock() - started
        outputs.append(result)
    return outputs


def _time_replay(
    events: Sequence[Tuple[str, tuple]],
    kernel_name: str,
    universe: Sequence[int],
    repeats: int,
) -> Dict[str, float]:
    """Best-of-``repeats`` per-group seconds for one kernel.

    The kernel instance is shared across repeats — per-universe state it
    builds once and reuses (the bitmask kernel's intern caches) is part of
    what a mining run pays once and amortises over its passes, so the
    first repeat carries the warm-up and best-of keeps the steady-state
    figure — the same convention as
    :func:`repro.bench.engines.time_engine`.  Replay *state* (cover,
    MFCS) is rebuilt fresh inside every repeat.
    """
    kernel = make_kernel(kernel_name, universe)
    best = {group: float("inf") for group in GROUPS}
    for _ in range(max(1, repeats)):
        timings = {group: 0.0 for group in GROUPS}
        replay_events(events, kernel, timings)
        for group in GROUPS:
            best[group] = min(best[group], timings[group])
    return best


def run_lattice_benchmark(
    database: str = "T10.I4.D100K",
    supports_percent: Sequence[float] = (1.5, 1.0, 0.5),
    scale: Optional[int] = None,
    repeats: int = 3,
    kernels: Sequence[str] = KERNEL_NAMES,
) -> Dict:
    """Replay-benchmark the kernels over a support sweep; JSON-ready record.

    Every cell's journal is replayed against every kernel; outputs are
    cross-checked (an output mismatch raises) and per-group seconds are
    summed across cells into the headline speedups.
    """
    spec = ExperimentSpec("bench-lattice", database, 2000, (), "")
    db = build_database(spec, num_transactions=scale)
    universe = sorted(db.universe)

    cells: List[Dict] = []
    totals: Dict[str, Dict[str, float]] = {
        name: {group: 0.0 for group in GROUPS} for name in kernels
    }
    events_total = 0
    for support in supports_percent:
        events = record_events(db, support)
        events_total += len(events)
        reference = None
        cell: Dict = {
            "min_support_percent": support,
            "events": len(events),
            "operations": {
                op: sum(1 for kind, _ in events if kind == op)
                for op in sorted({kind for kind, _ in events})
            },
            "kernels": {},
        }
        for name in kernels:
            outputs = replay_events(events, make_kernel(name, universe))
            if reference is None:
                reference = outputs
            elif outputs != reference:
                raise AssertionError(
                    "kernel %r disagrees with %r at %.2f%% support"
                    % (name, kernels[0], support)
                )
            seconds = _time_replay(events, name, universe, repeats)
            cell["kernels"][name] = {
                group: round(seconds[group], 6) for group in GROUPS
            }
            for group in GROUPS:
                totals[name][group] += seconds[group]
        cells.append(cell)

    record: Dict = {
        "benchmark": "lattice-kernels",
        "database": database,
        "num_transactions": len(db),
        "num_items": len(universe),
        "supports_percent": list(supports_percent),
        "events_total": events_total,
        "repeats": repeats,
        "cpu_count": os.cpu_count() or 1,
        "numpy": HAVE_NUMPY,
        "cells": cells,
        "totals": {
            name: {group: round(value, 6) for group, value in groups.items()}
            for name, groups in totals.items()
        },
        # seconds-named so the bench trajectory picks the per-kernel
        # totals up as regression-gated metrics
        "replay_seconds": {
            name: round(sum(groups.values()), 6)
            for name, groups in totals.items()
        },
    }
    if "tuple" in totals and "bitmask" in totals:
        for group, key in (
            ("candidate_generation", "speedup_candidate_generation"),
            ("mfcs_maintenance", "speedup_mfcs_maintenance"),
            ("mfs_cover", "speedup_mfs_cover"),
        ):
            fast = totals["bitmask"][group]
            if fast > 0:
                record[key] = round(totals["tuple"][group] / fast, 3)
        # the CI smoke gate: total replayed lattice seconds, all groups
        fast_total = sum(totals["bitmask"].values())
        if fast_total > 0:
            record["speedup_lattice_total"] = round(
                sum(totals["tuple"].values()) / fast_total, 3
            )
    return record


def run_pass_benchmark(
    database: str = "T10.I4.D100K",
    supports_percent: Sequence[float] = (1.5, 1.0, 0.5),
    scale: Optional[int] = None,
    kernels: Sequence[str] = KERNEL_NAMES,
) -> Dict:
    """End-to-end per-pass wall-clock of full runs, one per kernel.

    The complement of :func:`run_lattice_benchmark`: instead of replaying
    the lattice side in isolation, each kernel drives a complete mining
    run (counting included), and the per-pass seconds the miner already
    tracks are recorded.  The runs must return identical maximum frequent
    sets — the end-to-end differential check.
    """
    spec = ExperimentSpec("bench-pass", database, 2000, (), "")
    db = build_database(spec, num_transactions=scale)
    cells: List[Dict] = []
    for support in supports_percent:
        cell: Dict = {"min_support_percent": support, "kernels": {}}
        reference = None
        for name in kernels:
            result = PincerSearch(adaptive=True, kernel=name).mine(
                db, support / 100.0
            )
            if reference is None:
                reference = result
            else:
                if result.mfs != reference.mfs:
                    raise AssertionError(
                        "kernel %r MFS differs from %r at %.2f%% support"
                        % (name, kernels[0], support)
                    )
                if result.supports != reference.supports:
                    raise AssertionError(
                        "kernel %r supports differ from %r at %.2f%% support"
                        % (name, kernels[0], support)
                    )
            cell["kernels"][name] = {
                "total_seconds": round(result.stats.seconds, 6),
                "passes": [
                    {
                        "pass": stats.pass_number,
                        "seconds": round(stats.seconds, 6),
                        "candidates": stats.total_candidates,
                        "mfcs_size_after": stats.mfcs_size_after,
                    }
                    for stats in result.stats.passes
                ],
            }
        cell["mfs_size"] = len(reference.mfs)
        cell["identical_mfs"] = True
        cells.append(cell)
    record: Dict = {
        "benchmark": "pass-wallclock",
        "database": database,
        "num_transactions": len(db),
        "supports_percent": list(supports_percent),
        "cpu_count": os.cpu_count() or 1,
        "numpy": HAVE_NUMPY,
        "cells": cells,
    }
    totals = {
        name: sum(
            cell["kernels"][name]["total_seconds"] for cell in cells
        )
        for name in kernels
    }
    record["total_seconds"] = {
        name: round(value, 6) for name, value in totals.items()
    }
    if totals.get("bitmask"):
        record["speedup_end_to_end"] = round(
            totals["tuple"] / totals["bitmask"], 3
        )
    return record


def write_benchmark(path: str, record: Dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.lattice",
        description="benchmark the lattice kernels by journal replay",
    )
    parser.add_argument("--database", default="T10.I4.D100K")
    parser.add_argument(
        "--min-support", type=float, action="append", default=None,
        metavar="PCT", help="support sweep (repeatable; default 1.5 1.0 0.5)",
    )
    parser.add_argument(
        "--scale", type=int, default=None,
        help="|D| override (default: REPRO_BENCH_SCALE or %d)" % DEFAULT_SCALE,
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the lattice-replay JSON record here",
    )
    parser.add_argument(
        "--pass-out", default=None, metavar="PATH",
        help="also run the end-to-end per-pass benchmark and write it here",
    )
    parser.add_argument(
        "--skip-replay", action="store_true",
        help="only run the end-to-end per-pass benchmark",
    )
    parser.add_argument(
        "--trajectory", default=None, metavar="PATH",
        help="append the records to the bench trajectory JSONL "
        "(gate it with python -m repro.bench.regress)",
    )
    args = parser.parse_args(argv)
    supports = tuple(args.min_support) if args.min_support else (1.5, 1.0, 0.5)
    if not args.skip_replay:
        record = run_lattice_benchmark(
            database=args.database,
            supports_percent=supports,
            scale=args.scale,
            repeats=args.repeats,
        )
        json.dump(record, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        if args.out:
            write_benchmark(args.out, record)
        record_run(record, args.trajectory)
    if args.pass_out or args.skip_replay:
        pass_record = run_pass_benchmark(
            database=args.database,
            supports_percent=supports,
            scale=args.scale,
        )
        json.dump(pass_record, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        if args.pass_out:
            write_benchmark(args.pass_out, pass_record)
        record_run(pass_record, args.trajectory)
    return 0


if __name__ == "__main__":
    sys.exit(main())
