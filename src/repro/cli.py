"""Command-line interface: ``pincer <subcommand>``.

Subcommands cover the end-to-end workflow:

* ``generate`` — synthesise a Quest benchmark database to a file;
* ``snapshot`` — serialise a database's packed vertical index to a
  memory-mappable ``.snap`` file (see :mod:`repro.db.snapshot`); later
  ``mine --snapshot`` runs skip the basket re-parse and the shared-memory
  engine maps the file directly;
* ``mine``     — discover the maximum frequent set of a database file;
* ``rules``    — mine and then emit association rules (MFS-first);
* ``serve``    — hold one database resident (engine attached, support
  cache warm) and answer line-delimited JSON mining queries on a unix
  socket with admission control, request-scoped tracing (``--trace``),
  a schema-v4 JSONL access log with a slow-query snapshot ring
  (``--access-log``), rolling SLO metrics behind the ``metrics`` wire
  op, and per-query ``eta_seconds`` on every reply;
* ``bench``    — run one of the paper's experiments and print its rows
  (``bench regress`` gates the recorded bench trajectory instead);
* ``obs``      — work with recorded traces and live runs: ``obs export``
  converts a trace or metrics file for Perfetto/Prometheus, ``obs
  report`` prints a span-tree profile with wall/CPU/memory columns
  (``--request ID`` isolates one serve query, ``--requests`` lists the
  ids), and ``obs top`` attaches a live per-shard console to a mine
  started with ``--telemetry NAME`` and/or a serve daemon's query plane
  with ``--serve SOCKET``.

Run ``pincer <subcommand> --help`` for the full flag list.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .algorithms.apriori import Apriori
from .algorithms.partition import PartitionMiner
from .algorithms.partitioned import PartitionedPincerMiner
from .algorithms.sampling import SamplingMiner
from .algorithms.topdown import TopDown
from .bench.experiments import ALL_EXPERIMENTS, build_database
from .bench.harness import bench_budget, format_rows, run_sweep
from .core.itemset import format_itemset
from .core.kernel import KERNEL_NAMES
from .core.pincer import PincerSearch
from .datagen.configs import parse_name
from .datagen.quest import QuestGenerator, generate
from .db import io
from .db.counting import available_engines
from .obs import capture, configure_logging
from .rules.from_mfs import rules_from_mfs
from .rules.generation import interesting_rules


def _parse_bytes(text: str) -> int:
    """``"80M"``/``"2G"``/plain integers → bytes (for --memory-budget)."""
    value = text.strip().upper()
    multiplier = 1
    for suffix, scale in (("K", 1024), ("M", 1024 ** 2), ("G", 1024 ** 3)):
        if value.endswith(suffix):
            multiplier = scale
            value = value[: -1]
            break
    try:
        return int(float(value) * multiplier)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "%r is not a byte size (use e.g. 104857600, 100M, 2G)" % text
        ) from None


def _make_miner(
    name: str,
    engine: str,
    kernel: "str | None" = None,
    args: "argparse.Namespace | None" = None,
):
    def flag(key, default=None):
        return getattr(args, key, default) if args is not None else default

    if name == "pincer":
        return PincerSearch(engine=engine, adaptive=True, kernel=kernel)
    if name == "pincer-pure":
        return PincerSearch(engine=engine, adaptive=False, kernel=kernel)
    if name == "apriori":
        return Apriori(engine=engine, kernel=kernel)
    if name == "topdown":
        return TopDown(engine=engine, kernel=kernel)
    if name == "sampling":
        return SamplingMiner(
            sample_fraction=flag("sample_fraction") or 0.2,
            seed=flag("sample_seed") or 0,
            engine=engine,
        )
    if name == "partition":
        return PartitionMiner(
            num_partitions=flag("partitions") or 4, engine=engine
        )
    if name == "partitioned":
        return PartitionedPincerMiner(
            num_partitions=flag("partitions"),
            memory_budget=flag("memory_budget"),
            parallelism=flag("partition_parallelism") or 1,
            engine=engine,
            kernel=kernel,
            sample_fraction=flag("sample_fraction") or 0.0,
            sample_seed=flag("sample_seed") or 0,
        )
    raise ValueError("unknown algorithm %r" % name)


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSONL span trace of the run "
        "(schema: python -m repro.obs.schema PATH)",
    )
    group.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metrics registry as a JSON document",
    )
    group.add_argument(
        "--log-level", default=None,
        choices=("debug", "info", "warning", "error"),
        help="enable stderr logging for the 'repro' logger hierarchy",
    )
    group.add_argument(
        "--profile", action="store_true",
        help="attach per-span CPU seconds and tracemalloc peak-memory "
        "deltas to the trace (requires --trace)",
    )
    group.add_argument(
        "--profile-stacks", default=None, metavar="PATH",
        help="also run a sampling profiler and write folded stacks "
        "(flamegraph.pl input) to PATH",
    )
    group.add_argument(
        "--progress", action="store_true",
        help="print a live per-pass progress/ETA line to stderr (also "
        "mirrored into the trace when --trace is given)",
    )
    group.add_argument(
        "--trace-max-events", type=int, default=None, metavar="N",
        help="cap the trace at N events; excess events are dropped and "
        "a single 'truncated' marker records how many",
    )
    group.add_argument(
        "--telemetry", nargs="?", const="auto", default=None, metavar="NAME",
        help="publish live shared-memory shard heartbeats; pass NAME to "
        "pin the segment name so 'pincer obs top NAME' can attach from "
        "another terminal (bare flag generates a name)",
    )


def _add_mine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("input", help="database file (.dat/.basket/.csv/.json)")
    parser.add_argument(
        "--min-support", type=float, required=True, metavar="PCT",
        help="minimum support as a percentage, e.g. 1.5",
    )
    parser.add_argument(
        "--algorithm", default="pincer",
        choices=(
            "pincer", "pincer-pure", "apriori", "topdown",
            "sampling", "partition", "partitioned",
        ),
    )
    parser.add_argument(
        "--engine", default="auto",
        choices=("auto",) + tuple(available_engines()),
        help="support-counting engine (auto resolves from measured "
        "density: roaring for large sparse databases, packed for large "
        "dense ones when NumPy is available, else bitmap)",
    )
    parser.add_argument(
        "--kernel", default="auto",
        choices=("auto",) + KERNEL_NAMES,
        help="lattice kernel for candidate generation and MFS/MFCS "
        "pruning (auto: REPRO_LATTICE_KERNEL or bitmask)",
    )
    parser.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="packed-bitmap snapshot of the input (written by 'pincer "
        "snapshot'): skips the basket parse, and the shm engine "
        "memory-maps it directly",
    )
    outofcore = parser.add_argument_group(
        "out-of-core (--algorithm/--engine partitioned)"
    )
    outofcore.add_argument(
        "--memory-budget", type=_parse_bytes, default=None, metavar="BYTES",
        help="cap on concurrently mapped partition-matrix bytes, e.g. "
        "80M (partitions beyond it are counted in windows)",
    )
    outofcore.add_argument(
        "--partitions", type=int, default=None, metavar="K",
        help="partition count for self-partitioned inputs (snapshot-"
        "backed inputs use the snapshot's own directory); also the "
        "partition count for --algorithm partition",
    )
    outofcore.add_argument(
        "--partition-parallelism", type=int, default=1, metavar="N",
        help="phase-I worker processes (needs a --snapshot input; the "
        "memory budget is split between workers)",
    )
    outofcore.add_argument(
        "--sample-fraction", type=float, default=None, metavar="F",
        help="Toivonen sample fraction in [0,1]: seeds the local MFCS "
        "descents for --algorithm partitioned, or the sample draw for "
        "--algorithm sampling",
    )
    outofcore.add_argument(
        "--sample-seed", type=int, default=0, metavar="SEED",
        help="RNG seed of the sample draw (recorded in the run's stats "
        "for reproducibility)",
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    config = parse_name(
        args.name, num_patterns=args.patterns, num_items=args.items,
        seed=args.seed,
    )
    if args.transactions is not None:
        from dataclasses import replace

        config = replace(config, num_transactions=args.transactions)
    db = QuestGenerator(config).generate()
    io.save(db, args.out)
    print(
        "wrote %s: %d transactions, %d items, avg size %.2f"
        % (args.out, len(db), db.num_items, db.average_transaction_size())
    )
    return 0


def _load_db(args: argparse.Namespace):
    if getattr(args, "snapshot", None):
        from .db.disk import DiskTransactionDatabase

        return DiskTransactionDatabase(args.input, snapshot=args.snapshot)
    return io.load(args.input)


def _cmd_snapshot(args: argparse.Namespace) -> int:
    import os
    from pathlib import Path

    from .db.disk import DiskTransactionDatabase
    from .db.snapshot import (
        default_snapshot_path,
        load_snapshot,
        snapshot_database,
    )

    partition_kwargs = dict(
        num_partitions=args.partitions, partition_rows=args.partition_rows
    )
    suffix = Path(args.input).suffix.lower()
    if suffix in ("", ".dat", ".basket", ".txt"):
        # FIMI baskets stream straight from disk: one read, no residency
        written = DiskTransactionDatabase(args.input).snapshot(
            args.out, **partition_kwargs
        )
    else:
        db = io.load(args.input)
        written = snapshot_database(
            db, args.out or default_snapshot_path(args.input),
            **partition_kwargs
        )
    snap = load_snapshot(written)
    print(
        "wrote %s (format v%d): %d transactions, %d items, "
        "%d partition(s), %d bytes"
        % (
            written, snap.version, snap.num_rows, snap.num_items,
            snap.num_partitions, os.path.getsize(written),
        )
    )
    return 0


def _make_cli_counter(args: argparse.Namespace):
    """An explicit PartitionedCounter when the flags configure one.

    ``--engine partitioned`` with ``--memory-budget``/``--partitions``
    needs the configuration passed into the counter instance; the plain
    engine registry can only build it with defaults.  The partitioned
    *algorithm* configures its own engine, so this only applies to the
    other miners.
    """
    if args.algorithm == "partitioned" or args.engine != "partitioned":
        return None
    if args.memory_budget is None and args.partitions is None:
        return None
    from .db.outofcore import PartitionedCounter

    return PartitionedCounter(
        memory_budget=args.memory_budget, num_partitions=args.partitions
    )


def _cmd_mine(args: argparse.Namespace) -> int:
    db = _load_db(args)
    miner = _make_miner(args.algorithm, args.engine, args.kernel, args)
    result = miner.mine(
        db, args.min_support / 100.0, obs=args.obs,
        counter=_make_cli_counter(args),
    )
    print(result.stats.summary())
    print("maximum frequent set (%d itemsets):" % len(result.mfs))
    for member in result.sorted_mfs():
        support = result.support(member)
        print(
            "  %s  support=%.4f" % (format_itemset(member), support or 0.0)
        )
    if args.show_passes:
        for stats in result.stats.passes:
            print(
                "  pass %d: %d candidates (%d MFCS), %d maximal found"
                % (
                    stats.pass_number,
                    stats.total_candidates,
                    stats.mfcs_candidates,
                    stats.maximal_found,
                )
            )
    return 0


def _cmd_rules(args: argparse.Namespace) -> int:
    db = _load_db(args)
    miner = _make_miner(args.algorithm, args.engine, args.kernel, args)
    result = miner.mine(db, args.min_support / 100.0, obs=args.obs)
    rules = rules_from_mfs(
        db, result, min_confidence=args.min_confidence / 100.0,
        depth=args.depth, engine=args.engine,
    )
    rules = interesting_rules(rules, min_lift=args.min_lift, top=args.top)
    print("%d rules (minconf %g%%):" % (len(rules), args.min_confidence))
    for rule in rules:
        print("  %s" % rule)
    return 0


def _cmd_keys(args: argparse.Namespace) -> int:
    import csv as csv_module

    from .apps.keys import Relation, candidate_key_report

    with open(args.input, "r", encoding="utf-8", newline="") as handle:
        reader = csv_module.reader(handle)
        rows = [tuple(row) for row in reader if row]
    if not rows:
        print("%s: empty relation" % args.input, file=sys.stderr)
        return 2
    if args.no_header:
        header: list = []
    else:
        header, rows = list(rows[0]), rows[1:]
    relation = Relation(rows, column_names=header)
    print(candidate_key_report(relation))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    spec = ALL_EXPERIMENTS.get(args.experiment)
    if spec is None:
        print(
            "unknown experiment %r; choose from: %s"
            % (args.experiment, ", ".join(sorted(ALL_EXPERIMENTS))),
            file=sys.stderr,
        )
        return 2
    db = build_database(spec, num_transactions=args.scale)
    supports = (
        tuple(args.min_support) if args.min_support else spec.supports_percent
    )
    budget = args.budget if args.budget is not None else bench_budget()
    rows = run_sweep(
        db, spec.database, supports, time_budget=budget, obs=args.obs
    )
    title = "%s (|L|=%d, |D|=%d)\npaper: %s" % (
        spec.database, spec.num_patterns, len(db), spec.paper_expectation,
    )
    print(format_rows(rows, title))
    if args.chart:
        from .bench.analysis import figure_report

        print()
        print(figure_report(rows))
    if args.csv:
        from .bench.analysis import write_csv

        write_csv(rows, args.csv)
        print("wrote %s" % args.csv)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pincer",
        description="Pincer-Search (Lin & Kedem, EDBT 1998) reproduction",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser("generate", help="synthesise a Quest database")
    gen.add_argument("name", help="database name, e.g. T10.I4.D100K")
    gen.add_argument("--out", required=True, help="output file")
    gen.add_argument("--patterns", type=int, default=2000, help="|L|")
    gen.add_argument("--items", type=int, default=1000, help="N")
    gen.add_argument(
        "--transactions", type=int, default=None,
        help="override |D| from the name",
    )
    gen.add_argument("--seed", type=int, default=0)
    _add_obs_flags(gen)
    gen.set_defaults(handler=_cmd_generate)

    snap = commands.add_parser(
        "snapshot",
        help="serialise a database's packed vertical index to a "
        "memory-mappable .snap file",
    )
    snap.add_argument("input", help="database file (.dat/.basket/.csv/.json)")
    snap.add_argument(
        "--out", default=None, metavar="PATH",
        help="snapshot path (default: the input file plus .snap)",
    )
    snap.add_argument(
        "--partitions", type=int, default=None, metavar="K",
        help="write a v2 partitioned snapshot with K row partitions "
        "(each independently memory-mappable for out-of-core mining)",
    )
    snap.add_argument(
        "--partition-rows", type=int, default=None, metavar="N",
        help="write a v2 partitioned snapshot with ~N rows per "
        "partition (rounded up to a multiple of 64)",
    )
    _add_obs_flags(snap)
    snap.set_defaults(handler=_cmd_snapshot)

    mine = commands.add_parser("mine", help="discover the maximum frequent set")
    _add_mine_flags(mine)
    mine.add_argument(
        "--show-passes", action="store_true", help="print per-pass stats"
    )
    _add_obs_flags(mine)
    mine.set_defaults(handler=_cmd_mine)

    rules = commands.add_parser("rules", help="mine and emit association rules")
    _add_mine_flags(rules)
    rules.add_argument(
        "--min-confidence", type=float, default=80.0, metavar="PCT"
    )
    rules.add_argument(
        "--depth", type=int, default=2,
        help="how far below the maximal itemsets to expand",
    )
    rules.add_argument("--min-lift", type=float, default=0.0)
    rules.add_argument("--top", type=int, default=None)
    _add_obs_flags(rules)
    rules.set_defaults(handler=_cmd_rules)

    keys = commands.add_parser(
        "keys", help="discover the minimal keys of a CSV relation"
    )
    keys.add_argument("input", help="CSV file; first row is the header")
    keys.add_argument(
        "--no-header", action="store_true",
        help="treat the first row as data (columns get default names)",
    )
    _add_obs_flags(keys)
    keys.set_defaults(handler=_cmd_keys)

    bench = commands.add_parser("bench", help="run a paper experiment")
    bench.add_argument(
        "experiment",
        help="experiment id, e.g. fig4-t20-i15 (see DESIGN.md)",
    )
    bench.add_argument(
        "--scale", type=int, default=None, help="|D| override (default 10000)"
    )
    bench.add_argument(
        "--min-support", type=float, action="append", metavar="PCT",
        help="override the support sweep (repeatable)",
    )
    bench.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="per-miner time budget for a cell (Apriori may DNF)",
    )
    bench.add_argument(
        "--chart", action="store_true",
        help="also render the figure's panels as text bar charts",
    )
    bench.add_argument(
        "--csv", default=None, metavar="PATH",
        help="export the cells as CSV",
    )
    _add_obs_flags(bench)
    bench.set_defaults(handler=_cmd_bench)

    serve = commands.add_parser(
        "serve",
        help="answer mining queries over a unix socket from one "
        "resident session (line-delimited JSON protocol)",
        add_help=False,
    )
    serve.add_argument("rest", nargs=argparse.REMAINDER)
    serve.set_defaults(handler=_cmd_serve)

    obs_cmd = commands.add_parser(
        "obs", help="export or report a recorded trace/metrics file"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    obs_export = obs_sub.add_parser(
        "export",
        help="convert a trace to Perfetto JSON or metrics to Prometheus text",
        add_help=False,
    )
    obs_export.add_argument("rest", nargs=argparse.REMAINDER)
    obs_export.set_defaults(handler=_cmd_obs_export)
    obs_report = obs_sub.add_parser(
        "report",
        help="print a span-tree profile of a recorded trace",
        add_help=False,
    )
    obs_report.add_argument("rest", nargs=argparse.REMAINDER)
    obs_report.set_defaults(handler=_cmd_obs_report)
    obs_top = obs_sub.add_parser(
        "top",
        help="live per-shard console over a running mine's telemetry "
        "segment (started with --telemetry NAME) and/or a serve "
        "daemon's query plane (--serve SOCKET)",
        add_help=False,
    )
    obs_top.add_argument("rest", nargs=argparse.REMAINDER)
    obs_top.set_defaults(handler=_cmd_obs_top)
    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import main as serve_main

    return serve_main(args.rest)


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from .obs.export import main as export_main

    return export_main(args.rest)


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from .obs.report import main as report_main

    return report_main(args.rest)


def _cmd_obs_top(args: argparse.Namespace) -> int:
    from .obs.top import main as top_main

    return top_main(args.rest)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # delegated subcommands keep their own argparse flag surface; hand
    # everything past the two-word prefix to the module's main()
    if argv[:1] == ["serve"]:
        from .serve import main as serve_main

        return serve_main(argv[1:])
    if argv[:2] == ["bench", "regress"]:
        from .bench.regress import main as regress_main

        return regress_main(argv[2:])
    if argv[:2] == ["obs", "export"]:
        from .obs.export import main as export_main

        return export_main(argv[2:])
    if argv[:2] == ["obs", "report"]:
        from .obs.report import main as report_main

        return report_main(argv[2:])
    if argv[:2] == ["obs", "top"]:
        from .obs.top import main as top_main

        return top_main(argv[2:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level:
        configure_logging(args.log_level)
    if args.profile and not args.trace:
        parser.error("--profile requires --trace (profiles land on spans)")
    obs = capture(
        trace_path=args.trace,
        metrics_path=args.metrics_out,
        producer="pincer-cli",
        profile=args.profile,
        progress=args.progress,
        trace_max_events=args.trace_max_events,
        telemetry=args.telemetry,
    )
    args.obs = obs
    sampler = None
    if args.profile_stacks:
        from .obs.resources import SamplingProfiler

        sampler = SamplingProfiler()
        sampler.start()
    try:
        with obs.span("command", command=args.command):
            return args.handler(args)
    finally:
        obs.finish()
        if sampler is not None:
            sampler.stop()
            sampler.write(args.profile_stacks)


if __name__ == "__main__":
    sys.exit(main())
