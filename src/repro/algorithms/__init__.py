"""Baseline miners: Apriori, brute force, top-down, sampling, randomized."""

from .apriori import Apriori, apriori
from .brute_force import (
    MAX_UNIVERSE,
    brute_force,
    brute_force_frequents,
    brute_force_mfs,
)
from .partition import PartitionMiner, partition_mine
from .partitioned import PartitionedPincerMiner, partitioned_mine
from .randomized import RandomizedMFS, randomized_mfs
from .sampling import SamplingMiner, sampling_mine
from .topdown import TopDown, top_down

__all__ = [
    "MAX_UNIVERSE",
    "Apriori",
    "PartitionMiner",
    "PartitionedPincerMiner",
    "RandomizedMFS",
    "SamplingMiner",
    "TopDown",
    "apriori",
    "brute_force",
    "brute_force_frequents",
    "brute_force_mfs",
    "partition_mine",
    "partitioned_mine",
    "randomized_mfs",
    "sampling_mine",
    "top_down",
]
