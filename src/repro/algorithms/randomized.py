"""Randomized maximal-frequent-itemset discovery (paper reference [5]).

Related-work baseline: "A randomized algorithm for discovering the
maximum frequent set was presented by Gunopulos et al. [5].  We present a
deterministic algorithm for solving this problem" (paper, Section 5).

The core primitive of that line of work is a **random maximal
extension**: start from a frequent seed, add random items while the set
stays frequent; the result is one maximal frequent itemset.  Repeating
from random seeds discovers maximal itemsets with probability
proportional to how "reachable" they are; the algorithm is Las-Vegas
style — everything it outputs is a genuine maximal frequent itemset, but
without exhaustive restarts it may miss some (no completeness guarantee,
unlike Pincer-Search).  ``mine`` runs restarts until ``max_restarts`` or
until ``stall_limit`` consecutive restarts rediscover known itemsets.
"""

from __future__ import annotations

import random
import time
from typing import List, Optional, Set

from ..core.itemset import Itemset
from ..core.pincer import resolve_threshold
from ..core.result import MiningResult
from ..core.stats import MiningStats
from ..db.counting import SupportCounter, resolve_counter
from ..db.transaction_db import TransactionDatabase
from ..obs.instrument import NOOP, Instrumentation


class RandomizedMFS:
    """Randomized maximal-itemset miner (random maximal extensions)."""

    name = "randomized-mfs"

    def __init__(
        self,
        max_restarts: int = 200,
        stall_limit: int = 50,
        seed: int = 0,
        engine: str = "auto",
    ) -> None:
        if max_restarts < 1 or stall_limit < 1:
            raise ValueError("restart limits must be positive")
        self._max_restarts = max_restarts
        self._stall_limit = stall_limit
        self._seed = seed
        self._engine = engine

    def mine(
        self,
        db: TransactionDatabase,
        min_support: Optional[float] = None,
        *,
        min_count: Optional[int] = None,
        counter: Optional[SupportCounter] = None,
        obs: Optional[Instrumentation] = None,
    ) -> MiningResult:
        """Discover (a subset of) the maximum frequent set by restarts.

        The returned MFS is always *sound* (every member maximal
        frequent); completeness holds only in the limit of restarts.
        """
        threshold, fraction = resolve_threshold(db, min_support, min_count)
        engine, decision = resolve_counter(db, self._engine, counter)
        obs = obs if obs is not None else NOOP
        engine.obs = obs
        rng = random.Random(self._seed)
        started = time.perf_counter()
        stats = MiningStats(
            algorithm=self.name,
            engine=decision.engine,
            engine_evidence=decision.evidence,
        )

        run_span = obs.span(
            "run",
            algorithm=self.name,
            engine=engine.name,
            num_transactions=len(db),
            min_support_count=threshold,
        )
        with run_span:
            with obs.span("pass", k=1):
                supports = dict(
                    engine.count(db, [(item,) for item in db.universe])
                )
            frequent_items = [
                item for item in db.universe if supports[(item,)] >= threshold
            ]
            discovered: Set[Itemset] = set()
            stall = 0
            restarts = 0
            while (
                frequent_items
                and restarts < self._max_restarts
                and stall < self._stall_limit
            ):
                restarts += 1
                maximal = self._random_maximal_extension(
                    db, engine, supports, threshold, frequent_items, rng
                )
                if maximal in discovered:
                    stall += 1
                else:
                    discovered.add(maximal)
                    stall = 0

            stats.seconds = time.perf_counter() - started
            stats.records_read = engine.records_read
            pass_stats = stats.new_pass(1)
            pass_stats.bottom_up_candidates = len(supports)
            if obs.enabled:
                run_span.set(
                    passes=stats.num_passes,
                    total_candidates=stats.total_candidates,
                    mfs_size=len(discovered),
                    records_read=stats.records_read,
                    restarts=restarts,
                )
                obs.counter("miner.runs").inc()
                obs.counter("miner.restarts").inc(restarts)
        return MiningResult(
            mfs=frozenset(discovered),
            supports=supports,
            num_transactions=len(db),
            min_support_count=threshold,
            min_support=fraction,
            algorithm=self.name,
            stats=stats,
        )

    def _random_maximal_extension(
        self,
        db: TransactionDatabase,
        engine: SupportCounter,
        supports: dict,
        threshold: int,
        frequent_items: List[int],
        rng: random.Random,
    ) -> Itemset:
        """Grow one maximal frequent itemset from a random frequent item."""
        current: List[int] = [rng.choice(frequent_items)]
        remaining = [item for item in frequent_items if item not in current]
        rng.shuffle(remaining)
        for item in remaining:
            candidate = tuple(sorted(current + [item]))
            if candidate not in supports:
                supports.update(engine.count(db, [candidate]))
            if supports[candidate] >= threshold:
                current.append(item)
        return tuple(sorted(current))


def randomized_mfs(
    db: TransactionDatabase,
    min_support: Optional[float] = None,
    *,
    min_count: Optional[int] = None,
    max_restarts: int = 200,
    seed: int = 0,
) -> MiningResult:
    """Functional one-shot entry point; see :class:`RandomizedMFS`.

    >>> from repro.db.transaction_db import TransactionDatabase
    >>> db = TransactionDatabase([[1, 2, 3]] * 5)
    >>> sorted(randomized_mfs(db, 0.5).mfs)
    [(1, 2, 3)]
    """
    miner = RandomizedMFS(max_restarts=max_restarts, seed=seed)
    return miner.mine(db, min_support, min_count=min_count)
