"""Exhaustive reference miner — the test oracle.

Enumerates the entire itemset lattice (or, when feasible, only the
subsets occurring in transactions) and classifies every itemset by direct
counting.  Exponential; intended for the property-based tests that check
Pincer-Search and Apriori against ground truth on small universes.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Optional, Set

from ..core.itemset import Itemset
from ..core.lattice import maximal_elements
from ..core.pincer import resolve_threshold
from ..core.result import MiningResult
from ..core.stats import MiningStats
from ..db.transaction_db import TransactionDatabase

#: refuse to enumerate lattices beyond this many items
MAX_UNIVERSE = 20


def brute_force_frequents(
    db: TransactionDatabase,
    min_support: Optional[float] = None,
    *,
    min_count: Optional[int] = None,
) -> Dict[Itemset, int]:
    """All frequent itemsets with supports, by transaction-subset counting.

    Counts only itemsets that occur in at least one transaction (anything
    else has support 0), so it scales with the data rather than the
    universe — but each transaction still contributes ``2**|t|`` subsets,
    so keep transactions short.
    """
    threshold, _ = resolve_threshold(db, min_support, min_count)
    counts: Dict[Itemset, int] = {}
    for transaction in db:
        items = tuple(sorted(transaction))
        for size in range(1, len(items) + 1):
            for subset in combinations(items, size):
                counts[subset] = counts.get(subset, 0) + 1
    return {
        itemset_: count for itemset_, count in counts.items() if count >= threshold
    }


def brute_force_mfs(
    db: TransactionDatabase,
    min_support: Optional[float] = None,
    *,
    min_count: Optional[int] = None,
) -> Set[Itemset]:
    """Ground-truth maximum frequent set."""
    return maximal_elements(
        brute_force_frequents(db, min_support, min_count=min_count)
    )


def brute_force(
    db: TransactionDatabase,
    min_support: Optional[float] = None,
    *,
    min_count: Optional[int] = None,
) -> MiningResult:
    """Full :class:`MiningResult` for drop-in comparisons with the miners."""
    if db.num_items > MAX_UNIVERSE and any(len(t) > MAX_UNIVERSE for t in db):
        raise ValueError(
            "brute force refuses transactions longer than %d items" % MAX_UNIVERSE
        )
    threshold, fraction = resolve_threshold(db, min_support, min_count)
    frequents = brute_force_frequents(db, min_count=threshold)
    return MiningResult(
        mfs=frozenset(maximal_elements(frequents)),
        supports=frequents,
        num_transactions=len(db),
        min_support_count=threshold,
        min_support=fraction,
        algorithm="brute-force",
        stats=MiningStats(algorithm="brute-force"),
    )
