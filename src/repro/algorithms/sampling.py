"""Toivonen's sampling algorithm (the paper's reference [18]).

Related-work baseline: "Others, like Partition [16] and Sampling [18],
proposed effective ways to reduce the I/O time.  However, they are still
inefficient when the maximal frequent itemsets are long" (paper,
Section 5).  This module implements the Sampling algorithm so that claim
can be measured:

1. draw a random sample of the database and mine it *in memory* at a
   lowered threshold (the lowering makes missing a truly frequent itemset
   unlikely);
2. in one pass over the full database, count the sample's frequent
   itemsets **and their negative border**;
3. if nothing in the negative border turns out frequent, the counts are
   exact and complete — one full-database pass total.  Otherwise there
   was a *miss*; the guarantee is restored by falling back to a full
   mining run seeded with what is already known (the textbook remedy;
   Toivonen's paper offers fancier recovery, with the same worst case).

Step 2 is exactly where long maximal itemsets hurt: the sample's frequent
collection is the full downward closure, which is exponential in the
maximal length — the inefficiency Pincer-Search sidesteps.
"""

from __future__ import annotations

import random
import time
from typing import Optional, Set

from ..borders.borders import negative_border
from ..core.itemset import Itemset
from ..core.lattice import maximal_elements
from ..core.pincer import resolve_threshold
from ..core.result import MiningResult
from ..core.stats import MiningStats
from ..db.counting import SupportCounter, get_counter, resolve_counter, select_engine
from ..db.transaction_db import TransactionDatabase
from ..obs.instrument import NOOP, Instrumentation
from ..obs.logsetup import get_logger
from .apriori import Apriori

logger = get_logger("algorithms.sampling")


class SamplingMiner:
    """Toivonen-style sampling miner.

    Parameters
    ----------
    sample_fraction:
        Fraction of transactions drawn (without replacement).
    lowering:
        Multiplier < 1 applied to the minimum support when mining the
        sample; smaller values make misses rarer but inflate the sample's
        frequent collection.
    seed:
        RNG seed for the sample draw.  Every :meth:`mine` call draws
        with a fresh ``random.Random(seed)``, so repeated runs of the
        same miner see the same sample; the seed is recorded in
        ``MiningStats.sample_seed``, making any run reproducible from
        its stats document alone.
    rng:
        Explicit ``random.Random`` instance overriding ``seed`` (for
        callers sequencing draws from one generator).  With an external
        rng the draw is the caller's to reproduce, so
        ``sample_seed`` is recorded as None.
    """

    name = "sampling"

    def __init__(
        self,
        sample_fraction: float = 0.2,
        lowering: float = 0.8,
        seed: int = 0,
        engine: str = "auto",
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        if not 0.0 < lowering <= 1.0:
            raise ValueError("lowering must be in (0, 1]")
        self._sample_fraction = sample_fraction
        self._lowering = lowering
        self._seed = seed
        self._rng = rng
        self._engine = engine

    def mine(
        self,
        db: TransactionDatabase,
        min_support: Optional[float] = None,
        *,
        min_count: Optional[int] = None,
        counter: Optional[SupportCounter] = None,
        obs: Optional[Instrumentation] = None,
    ) -> MiningResult:
        """Mine the maximum frequent set via a sample plus verification."""
        threshold, fraction = resolve_threshold(db, min_support, min_count)
        engine, decision = resolve_counter(db, self._engine, counter)
        obs = obs if obs is not None else NOOP
        engine.obs = obs
        started = time.perf_counter()
        stats = MiningStats(
            algorithm=self.name,
            engine=decision.engine,
            engine_evidence=decision.evidence,
            sample_seed=None if self._rng is not None else self._seed,
        )

        run_span = obs.span(
            "run",
            algorithm=self.name,
            engine=engine.name,
            num_transactions=len(db),
            min_support_count=threshold,
        )
        with run_span:
            sample = self._draw_sample(db)
            # the in-memory sample phase is free in the paper's I/O model;
            # mine it with Apriori at the lowered threshold
            sample_counter = get_counter(select_engine(sample, self._engine))
            sample_threshold = max(
                1, int(self._lowering * fraction * max(1, len(sample)))
            )
            with obs.span("generate", sample_size=len(sample)):
                sample_result = Apriori(engine=self._engine).mine(
                    sample, min_count=sample_threshold, counter=sample_counter
                )
                sample_frequents: Set[Itemset] = {
                    itemset_
                    for itemset_, count in sample_result.supports.items()
                    if count >= sample_threshold
                }

            # one full-database pass: sample frequents + negative border
            border = negative_border(
                maximal_elements(sample_frequents) if sample_frequents else [],
                db.universe,
            )
            to_verify = sorted(sample_frequents | border)
            pass_stats = stats.new_pass(1)
            pass_started = time.perf_counter()
            with obs.span("pass", k=1) as pass_span:
                supports = dict(engine.count(db, to_verify))
                pass_stats.bottom_up_candidates = len(to_verify)
                pass_stats.seconds = time.perf_counter() - pass_started
                if obs.enabled:
                    pass_span.set(**pass_stats.to_dict())

            frequents = {
                itemset_
                for itemset_, count in supports.items()
                if count >= threshold
            }
            missed_border = frequents & border
            if missed_border:
                # a border itemset is frequent: the sample missed part of
                # the lattice; fall back to an exact run (counts already
                # known are reused through the shared engine)
                logger.info(
                    "sample missed %d border itemsets; falling back to a "
                    "full Apriori run", len(missed_border),
                )
                with obs.span("recover", missed=len(missed_border)):
                    fallback = Apriori(engine=self._engine).mine(
                        db, min_count=threshold, counter=engine
                    )
                fallback.stats.algorithm = self.name
                for pass_done in fallback.stats.passes:
                    stats.passes.append(pass_done)
                supports.update(fallback.supports)
                frequents = {
                    itemset_
                    for itemset_, count in supports.items()
                    if count >= threshold
                }

            stats.seconds = time.perf_counter() - started
            stats.records_read = engine.records_read
            if obs.enabled:
                run_span.set(
                    passes=stats.num_passes,
                    total_candidates=stats.total_candidates,
                    mfs_size=len(maximal_elements(frequents)),
                    records_read=stats.records_read,
                    missed_border=len(missed_border),
                )
                obs.counter("miner.runs").inc()
        return MiningResult(
            mfs=frozenset(maximal_elements(frequents)),
            supports=supports,
            num_transactions=len(db),
            min_support_count=threshold,
            min_support=fraction,
            algorithm=self.name,
            stats=stats,
        )

    def _draw_sample(self, db: TransactionDatabase) -> TransactionDatabase:
        rng = (
            self._rng
            if self._rng is not None
            else random.Random(self._seed)
        )
        size = max(1, round(self._sample_fraction * len(db)))
        if size >= len(db):
            return db
        indices = rng.sample(range(len(db)), size)
        return db.sample(sorted(indices))


def sampling_mine(
    db: TransactionDatabase,
    min_support: Optional[float] = None,
    *,
    min_count: Optional[int] = None,
    sample_fraction: float = 0.2,
    lowering: float = 0.8,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> MiningResult:
    """Functional one-shot entry point; see :class:`SamplingMiner`.

    >>> from repro.db.transaction_db import TransactionDatabase
    >>> db = TransactionDatabase([[1, 2, 3]] * 8 + [[4]] * 2)
    >>> sorted(sampling_mine(db, 0.5, sample_fraction=0.5).mfs)
    [(1, 2, 3)]
    """
    miner = SamplingMiner(
        sample_fraction=sample_fraction, lowering=lowering, seed=seed, rng=rng
    )
    return miner.mine(db, min_support, min_count=min_count)
