"""Out-of-core partitioned Pincer-Search over ``.snap`` v2 snapshots.

The paper dismisses Partition [16] and Sampling [18] because both
materialise full downward-closed frequent collections — but their *I/O
structure* (two scans; support additive over row partitions) composes
cleanly with Pincer's maximal-first search, which is the segmentation
idea of Rajalakshmi et al. (PAPERS.md).  This module is that
composition:

**Phase I — local maximal mining.**  Each row partition of the snapshot
is attached (within the byte budget of
:class:`~repro.db.outofcore.BudgetScheduler`), mined to its complete
*local* MFS by the ordinary :class:`~repro.core.pincer.PincerSearch`
stack through a :class:`~repro.db.outofcore.HandleCounter`, and
detached — so at most ``memory_budget`` bytes of matrix are resident no
matter how large the database.  The local threshold is the proportional
ceiling ``ceil(threshold * |p| / |D|)``, which preserves the Partition
lemma: *every globally frequent itemset is locally frequent in at least
one partition* (if it missed the scaled threshold everywhere, summing
the local counts would leave it below the global threshold).

**Phase II — one-pass global verification.**  Let ``U`` be the union of
the local MFS families and ``seed = maximal(U)``.  ``seed`` is a valid
global MFCS: (a) every globally frequent itemset is locally frequent
somewhere, hence a subset of some member of ``U``, hence covered by
``seed``; (b) any strict superset of a ``seed`` member is globally
infrequent — were it frequent it would be covered by ``seed`` (by (a)),
contradicting that member's maximality in ``U``.  One partition-sweeping
pass of the ``partitioned`` engine batch-counts
``U ∪ negative_border(seed)`` — the additive-support identity makes the
per-partition sums exact global counts — and the same lemma proves every
border member globally *infrequent*, so the border counts double as a
free end-to-end verification of the counting machinery.  The counts
pre-warm a :class:`~repro.core.supportcache.SupportCache`, and the
final classification runs :class:`PincerSearch` in its top-down-only
mode (``bottom_up=False``) seeded with ``seed``: the first
classification is served entirely from cache, and further database
passes happen only where a local maximal itemset turns out globally
infrequent and the MFCS must descend.

**Optional sample seeding.**  With ``sample_fraction > 0`` a Toivonen
sample (drawn with ``sample_seed``, recorded in the stats) is mined in
memory at a lowered threshold, yielding a candidate maximal family
``F = maximal(sample frequents)``.  Before a partition's mine, the
members of ``negative_border(F)`` are counted locally; if *all* are
locally infrequent, ``F`` is a valid local MFCS seed — any locally
frequent itemset outside F's closure would contain a border member
(take a minimal uncovered subset: its immediate subsets are all
covered, so it *is* a border member), all infrequent; and a frequent
strict superset of a member would be covered, contradicting
maximality — so the partition is mined top-down-only from the sample
seed.  Any border hit voids the guarantee for that partition and it
falls back to the cold full-universe MFCS.  Exactness is therefore
unconditional; the sample only buys speed.

Phase I partitions are dispatched through a process pool when
``parallelism > 1`` (each worker re-opens the snapshot and receives an
equal slice of the memory budget); on single-core hosts the win of
partitioning is I/O-structural rather than parallel — each partition is
faulted once and mined resident, instead of the whole matrix being
re-streamed every pass.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..borders.borders import negative_border
from ..core.bitset import ItemUniverse
from ..core.itemset import Itemset
from ..core.lattice import maximal_elements
from ..core.pincer import PincerSearch, resolve_threshold
from ..core.result import MiningResult
from ..core.stats import MiningStats
from ..core.supportcache import CachedSupportCounter, SupportCache
from ..db.counting import SupportCounter
from ..db.outofcore import (
    BudgetScheduler,
    HandleCounter,
    PartitionedCounter,
    SnapshotPartitionHandle,
)
from ..db.parallel import MAX_WORKERS_ENV
from ..db.snapshot import load_snapshot
from ..db.transaction_db import TransactionDatabase
from ..obs.instrument import NOOP, Instrumentation
from ..obs.logsetup import get_logger
from .apriori import Apriori

logger = get_logger("algorithms.partitioned")

__all__ = ["PartitionedPincerMiner", "partitioned_mine"]


class _PartitionView:
    """The database surface a partition-local mine needs.

    The :class:`~repro.db.outofcore.HandleCounter` never reads rows from
    the db argument — it counts through its handle — so the miner only
    needs the partition's length and the shared universe (for candidate
    generation, thresholds, and the termination guard).
    """

    def __init__(self, num_rows: int, universe: Tuple[int, ...]) -> None:
        self._num_rows = num_rows
        self._universe = universe

    def __len__(self) -> int:
        return self._num_rows

    @property
    def universe(self) -> Tuple[int, ...]:
        return self._universe

    @property
    def num_items(self) -> int:
        return len(self._universe)


def _local_threshold(threshold: int, partition_rows: int, total_rows: int) -> int:
    """Proportional ceiling scaling — the Partition lemma's threshold."""
    return max(1, -(-threshold * partition_rows // max(1, total_rows)))


def _mine_one_partition(
    handle,
    universe: Tuple[int, ...],
    local_threshold: int,
    engine: str,
    kernel: Optional[str],
    adaptive: bool,
    seed_family: Optional[List[Itemset]],
    seed_border: Optional[List[Itemset]],
) -> Dict[str, object]:
    """Attach, mine the local MFS, detach.  Returns a plain-data summary.

    Plain dicts (not result objects) so the exact same function serves
    the in-process path and the process-pool worker, whose return value
    must pickle cheaply.
    """
    started = time.perf_counter()
    counter = HandleCounter(handle)
    view = _PartitionView(handle.num_rows, universe)
    seeded = False
    if seed_family:
        # Toivonen validity gate: the sample family seeds this partition
        # only if its whole negative border is locally infrequent (the
        # proof obligation in the module docstring)
        border_counts = counter.count(view, seed_border or [])
        seeded = all(
            count < local_threshold for count in border_counts.values()
        )
    miner = PincerSearch(engine=engine, adaptive=adaptive, kernel=kernel)
    if seeded:
        result = miner.mine(
            view, min_count=local_threshold, counter=counter,
            initial_mfcs=seed_family, bottom_up=False,
        )
    else:
        result = miner.mine(view, min_count=local_threshold, counter=counter)
    counter.close()  # detaches the handle (and evicts its pages)
    return {
        "mfs": sorted(result.mfs),
        "rows": handle.num_rows,
        "row_start": handle.row_start,
        "local_threshold": local_threshold,
        "passes": counter.passes,
        "records_read": counter.records_read,
        "candidates": result.stats.total_candidates,
        "seeded": seeded,
        "seconds": time.perf_counter() - started,
    }


def _mine_partition_task(spec: Dict[str, object]) -> Dict[str, object]:
    """Process-pool worker: one partition, from a pickled spec.

    Re-opens the snapshot in the worker (mmap attach, no matrix data
    shipped between processes) and runs the same
    :func:`_mine_one_partition` the serial path uses, under a private
    scheduler holding this worker's slice of the memory budget.
    """
    snap = load_snapshot(spec["snapshot_path"])
    partition = snap.partitions[spec["ordinal"]]
    scheduler = BudgetScheduler(spec["budget"])
    handle = SnapshotPartitionHandle(partition, scheduler)
    summary = _mine_one_partition(
        handle,
        snap.universe,
        spec["local_threshold"],
        spec["engine"],
        spec["kernel"],
        spec["adaptive"],
        spec["seed_family"],
        spec["seed_border"],
    )
    summary["accounting"] = scheduler.accounting()
    return summary


class PartitionedPincerMiner:
    """Two-scan out-of-core Pincer miner over a partitioned snapshot.

    Parameters
    ----------
    num_partitions:
        Self-partitioning width for databases *without* a partitioned
        snapshot (snapshot-backed databases use the snapshot's own
        partition directory).
    memory_budget:
        Upper bound, in bytes, on concurrently mapped partition-matrix
        data (None = unlimited).  Enforced by the shared
        :class:`~repro.db.outofcore.BudgetScheduler`; snapshot
        partitions larger than the budget are counted through
        word-column windows.
    parallelism:
        Phase I partition dispatch width.  Defaults to 1 (serial) —
        honest on single-core hosts, where the partitioned win is I/O
        structure, not cores.  Values > 1 need a snapshot-backed
        database (workers re-open the snapshot) and split the budget
        evenly between workers.  Capped by ``REPRO_MAX_WORKERS``.
    sample_fraction:
        > 0 enables Toivonen sample seeding of the local mines (drawn
        with ``sample_seed``, threshold lowered by ``lowering``).
    adaptive / engine / kernel:
        Forwarded to the per-partition :class:`PincerSearch` miners.
    """

    name = "partitioned-pincer"

    def __init__(
        self,
        num_partitions: Optional[int] = None,
        memory_budget: Optional[int] = None,
        parallelism: int = 1,
        engine: str = "auto",
        kernel: Optional[str] = None,
        sample_fraction: float = 0.0,
        lowering: float = 0.8,
        sample_seed: int = 0,
        adaptive: bool = True,
    ) -> None:
        if num_partitions is not None and num_partitions < 1:
            raise ValueError("need at least one partition")
        if parallelism < 1:
            raise ValueError("parallelism must be at least 1")
        if not 0.0 <= sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in [0, 1]")
        if not 0.0 < lowering <= 1.0:
            raise ValueError("lowering must be in (0, 1]")
        self._num_partitions = num_partitions
        self._memory_budget = memory_budget
        self._parallelism = parallelism
        self._engine = engine
        self._kernel = kernel
        self._sample_fraction = sample_fraction
        self._lowering = lowering
        self._sample_seed = sample_seed
        self._adaptive = adaptive

    # ------------------------------------------------------------------

    def mine(
        self,
        db,
        min_support: Optional[float] = None,
        *,
        min_count: Optional[int] = None,
        counter: Optional[SupportCounter] = None,
        obs: Optional[Instrumentation] = None,
    ) -> MiningResult:
        """Discover the maximum frequent set with two logical scans.

        ``counter``, if given, must be a
        :class:`~repro.db.outofcore.PartitionedCounter` (the engine this
        miner is built around); otherwise one is created from the
        miner's budget/partition configuration and closed on exit.
        """
        threshold, fraction = resolve_threshold(db, min_support, min_count)
        obs = obs if obs is not None else NOOP
        if counter is None:
            engine = PartitionedCounter(
                memory_budget=self._memory_budget,
                num_partitions=self._num_partitions,
            )
            owned = True
        else:
            if not isinstance(counter, PartitionedCounter):
                raise ValueError(
                    "PartitionedPincerMiner counts through a "
                    "PartitionedCounter; got %r"
                    % getattr(counter, "name", counter)
                )
            engine = counter
            owned = False
        engine.obs = obs
        engine.begin_query()
        started = time.perf_counter()
        stats = MiningStats(
            algorithm=self.name,
            engine=engine.name,
            sample_seed=(
                self._sample_seed if self._sample_fraction > 0 else None
            ),
        )
        universe = tuple(db.universe)

        run_span = obs.span(
            "run",
            algorithm=self.name,
            engine=engine.name,
            num_transactions=len(db),
            min_support_count=threshold,
        )
        try:
            with run_span:
                handles = engine.handles_for(db)
                seed_family, seed_border = self._sample_seed_family(
                    db, threshold, fraction, obs
                )

                # ---- phase I: local MFS per partition, within budget
                phase1 = stats.new_pass(1)
                phase1_started = time.perf_counter()
                with obs.span(
                    "pass", k=1, phase="local-mfs", partitions=len(handles)
                ) as phase1_span:
                    summaries = self._mine_partitions(
                        db, engine, handles, universe, threshold,
                        seed_family, seed_border, obs,
                    )
                    local_union: Set[Itemset] = set()
                    for summary in summaries:
                        local_union.update(summary["mfs"])
                    phase1.bottom_up_candidates = sum(
                        summary["candidates"] for summary in summaries
                    )
                    phase1.seconds = time.perf_counter() - phase1_started
                    # the Partition convention: phase I is one logical
                    # read of the database, whatever the partition count
                    stats.records_read += len(db)
                    engine.records_read += len(db)
                    if obs.enabled:
                        phase1_span.set(
                            local_mfs_union=len(local_union),
                            **phase1.to_dict()
                        )

                # ---- phase II: one global pass over U + its border,
                # then cache-served top-down classification
                result = self._global_verify(
                    db, engine, universe, threshold, fraction,
                    local_union, stats, obs,
                )

                stats.seconds = time.perf_counter() - started
                evidence = engine.evidence()
                evidence.update(
                    parallelism=self._effective_parallelism(
                        db, len(handles)
                    ),
                    seeded_partitions=sum(
                        1 for s in summaries if s["seeded"]
                    ),
                    sample_fraction=self._sample_fraction,
                    local_mfs_total=sum(len(s["mfs"]) for s in summaries),
                )
                worker_accounting = [
                    s["accounting"] for s in summaries if "accounting" in s
                ]
                if worker_accounting:
                    evidence["worker_accounting"] = worker_accounting
                stats.engine_evidence = evidence
                if obs.enabled:
                    run_span.set(
                        passes=stats.num_passes,
                        total_candidates=stats.total_candidates,
                        mfs_size=len(result.mfs),
                        records_read=stats.records_read,
                    )
                    obs.gauge("miner.mfs_size").set(len(result.mfs))
                    obs.counter("miner.runs").inc()
        finally:
            if owned:
                engine.close()
        logger.debug("%s", stats.summary())
        return MiningResult(
            mfs=result.mfs,
            supports=result.supports,
            num_transactions=len(db),
            min_support_count=threshold,
            min_support=fraction,
            algorithm=self.name,
            stats=stats,
        )

    # ------------------------------------------------------------------

    def _sample_seed_family(
        self, db, threshold: int, fraction: float, obs: Instrumentation
    ) -> Tuple[Optional[List[Itemset]], Optional[List[Itemset]]]:
        """Toivonen candidate family + its negative border, or (None, None).

        The sample is drawn in one streaming pass over the database
        (index membership against a seeded draw), so disk-backed
        databases are never materialised in full.
        """
        if self._sample_fraction <= 0 or len(db) == 0:
            return None, None
        with obs.span("generate", phase="sample-seed") as span:
            size = max(1, int(self._sample_fraction * len(db)))
            rng = random.Random(self._sample_seed)
            wanted = frozenset(rng.sample(range(len(db)), size))
            sample = TransactionDatabase(
                row for position, row in enumerate(db) if position in wanted
            )
            sample_threshold = max(
                1, int(self._lowering * fraction * len(sample))
            )
            sample_result = Apriori(
                engine=self._engine, kernel=self._kernel
            ).mine(sample, min_count=sample_threshold)
            family = sorted(
                maximal_elements(
                    itemset
                    for itemset, count in sample_result.supports.items()
                    if count >= sample_threshold
                )
            )
            if not family:
                return None, None
            border = sorted(negative_border(family, db.universe))
            if obs.enabled:
                span.set(family=len(family), border=len(border))
        return family, border

    def _mine_partitions(
        self,
        db,
        engine: PartitionedCounter,
        handles: Sequence,
        universe: Tuple[int, ...],
        threshold: int,
        seed_family: Optional[List[Itemset]],
        seed_border: Optional[List[Itemset]],
        obs: Instrumentation,
    ) -> List[Dict[str, object]]:
        """Phase I dispatch: serial in-process, or a worker pool."""
        parallelism = self._effective_parallelism(db, len(handles))
        if parallelism > 1:
            summaries = self._mine_partitions_pooled(
                db, handles, threshold, parallelism,
                seed_family, seed_border,
            )
            for summary in summaries:
                self._emit_partition_obs(obs, summary)
            return summaries
        summaries = []
        for handle in handles:
            engine._make_room(handle, handles)
            summaries.append(
                _mine_one_partition(
                    handle, universe,
                    _local_threshold(threshold, handle.num_rows, len(db)),
                    self._engine, self._kernel, self._adaptive,
                    seed_family, seed_border,
                )
            )
            self._emit_partition_obs(obs, summaries[-1])
        return summaries

    def _mine_partitions_pooled(
        self, db, handles, threshold: int, parallelism: int,
        seed_family, seed_border,
    ) -> List[Dict[str, object]]:
        """Snapshot-backed partitions through a fork pool, budget split."""
        budget = self._memory_budget
        specs = [
            {
                "snapshot_path": str(db.snapshot_path),
                "ordinal": handle.ordinal,
                "local_threshold": _local_threshold(
                    threshold, handle.num_rows, len(db)
                ),
                "engine": self._engine,
                "kernel": self._kernel,
                "adaptive": self._adaptive,
                "seed_family": seed_family,
                "seed_border": seed_border,
                "budget": budget // parallelism if budget else None,
            }
            for handle in handles
        ]
        try:
            with ProcessPoolExecutor(max_workers=parallelism) as pool:
                return list(pool.map(_mine_partition_task, specs))
        except (OSError, RuntimeError) as exc:  # pragma: no cover - platform
            logger.warning(
                "partition worker pool failed (%s); mining serially", exc
            )
            return [_mine_partition_task(spec) for spec in specs]

    def _effective_parallelism(self, db, num_partitions: int) -> int:
        """Requested width, capped by partitions, env, and snapshot-ness."""
        wanted = min(self._parallelism, max(1, num_partitions))
        env_cap = os.environ.get(MAX_WORKERS_ENV)
        if env_cap:
            try:
                wanted = min(wanted, max(1, int(env_cap)))
            except ValueError:
                pass
        if wanted > 1 and getattr(db, "snapshot_path", None) is None:
            logger.info(
                "parallel phase I needs a snapshot-backed database; "
                "mining partitions serially"
            )
            return 1
        return wanted

    @staticmethod
    def _emit_partition_obs(
        obs: Instrumentation, summary: Dict[str, object]
    ) -> None:
        """One ``partition`` span (+ metrics) per completed local mine."""
        if not obs.enabled:
            return
        with obs.span(
            "partition",
            row_start=summary["row_start"],
            rows=summary["rows"],
            local_threshold=summary["local_threshold"],
            mfs_size=len(summary["mfs"]),
            passes=summary["passes"],
            records_read=summary["records_read"],
            seeded=summary["seeded"],
            seconds=round(summary["seconds"], 6),
        ):
            pass
        obs.counter("partition.mined").inc()
        obs.counter("partition.local_passes").inc(summary["passes"])
        obs.counter("partition.local_mfs").inc(len(summary["mfs"]))
        if summary["seeded"]:
            obs.counter("partition.sample_seeded").inc()

    # ------------------------------------------------------------------

    def _global_verify(
        self,
        db,
        engine: PartitionedCounter,
        universe: Tuple[int, ...],
        threshold: int,
        fraction: float,
        local_union: Set[Itemset],
        stats: MiningStats,
        obs: Instrumentation,
    ) -> MiningResult:
        """Phase II: batch-count U + border, then top-down classify."""
        seed = sorted(maximal_elements(local_union))
        border = negative_border(seed, universe)
        to_count = sorted(set(local_union) | border)
        phase2 = stats.new_pass(2)
        phase2_started = time.perf_counter()
        with obs.span(
            "pass", k=2, phase="global-verify", candidates=len(to_count)
        ) as phase2_span:
            supports = dict(engine.count(db, to_count)) if to_count else {}
            phase2.bottom_up_candidates = len(to_count)
            phase2.infrequent_found = sum(
                1 for value in supports.values() if value < threshold
            )
            phase2.frequent_found = len(supports) - phase2.infrequent_found
            phase2.seconds = time.perf_counter() - phase2_started
            if obs.enabled:
                phase2_span.set(**phase2.to_dict())
        frequent_border = [
            member for member in border
            if supports.get(member, 0) >= threshold
        ]
        if frequent_border:
            # the Partition lemma proves these infrequent; a hit means a
            # broken invariant (bad snapshot, non-additive counts), not
            # a data property — refuse to return a silently wrong MFS
            raise AssertionError(
                "%d negative-border itemsets counted globally frequent "
                "(e.g. %r); partitioned counting violated the "
                "additive-support invariant"
                % (len(frequent_border), frequent_border[0])
            )
        if not seed:
            # nothing locally frequent anywhere ⇒ (by the lemma) nothing
            # globally frequent; the border pass above verified exactly
            # that for every singleton
            return MiningResult(
                mfs=frozenset(),
                supports=supports,
                num_transactions=len(db),
                min_support_count=threshold,
                min_support=fraction,
                algorithm=self.name,
                stats=stats,
            )

        # pre-warm the cache with the verified counts: the final miner's
        # first classification is then served entirely from cache, and
        # real partition sweeps happen only where the MFCS descends
        cache = SupportCache(ItemUniverse(universe))
        cache.store_batch(supports)
        cached = CachedSupportCounter(engine, cache)
        passes_before = engine.passes
        final = PincerSearch(
            engine=self._engine, adaptive=False, kernel=self._kernel
        ).mine(
            db, min_count=threshold, counter=cached,
            initial_mfcs=seed, bottom_up=False,
        )
        descent_passes = engine.passes - passes_before
        if descent_passes:
            # only descents that really swept the partitions are logical
            # reads (cache-served classifications are free); the billed
            # passes are the later ones — renumber them after phase II
            for pass_stats in final.stats.passes[-descent_passes:]:
                pass_stats.pass_number = stats.num_passes + 1
                stats.passes.append(pass_stats)
        stats.records_read = engine.records_read
        if obs.enabled:
            obs.counter("partition.descent_passes").inc(descent_passes)
        supports.update(final.supports)
        return MiningResult(
            mfs=final.mfs,
            supports=supports,
            num_transactions=len(db),
            min_support_count=threshold,
            min_support=fraction,
            algorithm=self.name,
            stats=stats,
        )


def partitioned_mine(
    db,
    min_support: Optional[float] = None,
    *,
    min_count: Optional[int] = None,
    num_partitions: Optional[int] = None,
    memory_budget: Optional[int] = None,
    parallelism: int = 1,
    sample_fraction: float = 0.0,
    sample_seed: int = 0,
) -> MiningResult:
    """Functional one-shot entry point; see :class:`PartitionedPincerMiner`.

    >>> from repro.db.transaction_db import TransactionDatabase
    >>> db = TransactionDatabase([[1, 2, 3]] * 6 + [[4]] * 2)
    >>> sorted(partitioned_mine(db, 0.5, num_partitions=2).mfs)
    [(1, 2, 3)]
    """
    miner = PartitionedPincerMiner(
        num_partitions=num_partitions,
        memory_budget=memory_budget,
        parallelism=parallelism,
        sample_fraction=sample_fraction,
        sample_seed=sample_seed,
    )
    return miner.mine(db, min_support, min_count=min_count)
