"""The Partition algorithm (Savasere/Omiecinski/Navathe — paper ref [16]).

Related-work baseline, cited alongside Sampling: "Others, like Partition
[16] and Sampling [18], proposed effective ways to reduce the I/O time.
However, they are still inefficient when the maximal frequent itemsets
are long" (paper, Section 5).

Partition reads the database exactly twice:

1. **Phase I** — split the database into partitions small enough to mine
   in memory; mine each partition at the proportionally scaled threshold.
   Any globally frequent itemset is *locally* frequent in at least one
   partition (if it fell below the scaled threshold everywhere, summing
   gives a global count below the threshold), so the union of the local
   frequent collections is a superset of the global frequent collection.
2. **Phase II** — one pass over the full database counts that union and
   keeps the truly frequent itemsets.

Both phases materialise entire frequent collections — the downward-closed
blow-up that makes the approach collapse when maximal itemsets are long,
which is precisely the comparison the paper draws.
"""

from __future__ import annotations

import time
from typing import List, Optional, Set

from ..core.itemset import Itemset
from ..core.lattice import maximal_elements
from ..core.pincer import resolve_threshold
from ..core.result import MiningResult
from ..core.stats import MiningStats
from ..db.counting import SupportCounter, resolve_counter
from ..db.transaction_db import TransactionDatabase
from ..obs.instrument import NOOP, Instrumentation
from .apriori import Apriori


class PartitionMiner:
    """Two-pass Partition miner."""

    name = "partition"

    def __init__(self, num_partitions: int = 4, engine: str = "auto") -> None:
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        self._num_partitions = num_partitions
        self._engine = engine

    def mine(
        self,
        db: TransactionDatabase,
        min_support: Optional[float] = None,
        *,
        min_count: Optional[int] = None,
        counter: Optional[SupportCounter] = None,
        obs: Optional[Instrumentation] = None,
    ) -> MiningResult:
        """Discover the maximum frequent set with two database reads."""
        threshold, fraction = resolve_threshold(db, min_support, min_count)
        engine, decision = resolve_counter(db, self._engine, counter)
        obs = obs if obs is not None else NOOP
        engine.obs = obs
        started = time.perf_counter()
        stats = MiningStats(
            algorithm=self.name,
            engine=decision.engine,
            engine_evidence=decision.evidence,
        )

        run_span = obs.span(
            "run",
            algorithm=self.name,
            engine=engine.name,
            num_transactions=len(db),
            min_support_count=threshold,
        )
        with run_span:
            # ----- phase I: local mining (counted as one read of the data)
            phase1 = stats.new_pass(1)
            phase1_started = time.perf_counter()
            global_candidates: Set[Itemset] = set()
            with obs.span("pass", k=1, phase="local-mining") as phase1_span:
                for partition in self._partitions(db):
                    if len(partition) == 0:
                        continue
                    local_threshold = max(
                        1,
                        -(-threshold * len(partition) // len(db)),  # ceil div
                    )
                    local = Apriori(engine=self._engine).mine(
                        partition, min_count=local_threshold
                    )
                    global_candidates.update(
                        itemset_
                        for itemset_, count in local.supports.items()
                        if count >= local_threshold
                    )
                phase1.bottom_up_candidates = len(global_candidates)
                phase1.seconds = time.perf_counter() - phase1_started
                stats.records_read += len(db)
                if obs.enabled:
                    phase1_span.set(**phase1.to_dict())

            # ----- phase II: one global counting pass over the union,
            # batched through the engine one itemset-length level at a
            # time — supports are independent across batches, so the
            # split only bounds the engine's per-call batch size (the
            # union can be the full downward closure) and keeps the
            # counting level-ordered for the engines' prefix reuse
            phase2 = stats.new_pass(2)
            phase2_started = time.perf_counter()
            with obs.span("pass", k=2, phase="global-count") as phase2_span:
                by_level: dict = {}
                for itemset_ in global_candidates:
                    by_level.setdefault(len(itemset_), []).append(itemset_)
                supports = {}
                for level in sorted(by_level):
                    supports.update(
                        engine.count(db, sorted(by_level[level]))
                    )
                phase2.bottom_up_candidates = len(global_candidates)
                phase2.seconds = time.perf_counter() - phase2_started
                if obs.enabled:
                    phase2_span.set(levels=len(by_level), **phase2.to_dict())

            frequents = {
                itemset_
                for itemset_, count in supports.items()
                if count >= threshold
            }
            stats.seconds = time.perf_counter() - started
            # the level batches of phase II together read the database
            # once in the paper's logical-pass convention (vertical
            # engines serve them all from one resident index)
            stats.records_read += len(db)
            if obs.enabled:
                run_span.set(
                    passes=stats.num_passes,
                    total_candidates=stats.total_candidates,
                    mfs_size=len(maximal_elements(frequents)),
                    records_read=stats.records_read,
                )
                obs.counter("miner.runs").inc()
        return MiningResult(
            mfs=frozenset(maximal_elements(frequents)),
            supports=supports,
            num_transactions=len(db),
            min_support_count=threshold,
            min_support=fraction,
            algorithm=self.name,
            stats=stats,
        )

    def _partitions(self, db: TransactionDatabase) -> List[TransactionDatabase]:
        count = min(self._num_partitions, max(1, len(db)))
        size = -(-len(db) // count)  # ceil division
        return [
            db.sample(range(start, min(start + size, len(db))))
            for start in range(0, len(db), size)
        ]


def partition_mine(
    db: TransactionDatabase,
    min_support: Optional[float] = None,
    *,
    min_count: Optional[int] = None,
    num_partitions: int = 4,
) -> MiningResult:
    """Functional one-shot entry point; see :class:`PartitionMiner`.

    >>> from repro.db.transaction_db import TransactionDatabase
    >>> db = TransactionDatabase([[1, 2, 3]] * 6 + [[4]] * 2)
    >>> sorted(partition_mine(db, 0.5).mfs)
    [(1, 2, 3)]
    """
    return PartitionMiner(num_partitions=num_partitions).mine(
        db, min_support, min_count=min_count
    )
