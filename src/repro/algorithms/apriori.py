"""The Apriori algorithm (Agrawal & Srikant, VLDB 1994).

This is the baseline the paper compares against: a pure bottom-up
breadth-first search that explicitly counts *every* frequent itemset.
Pass ``k+1`` candidates come from joining frequent ``k``-itemsets sharing a
``(k-1)``-prefix and pruning those with an infrequent ``k``-subset
(Observation 1 — the only observation Apriori can use).

The miner runs on the same substrate as Pincer-Search (same database
class, counting engines, stats, and result type), which is the paper's own
fairness argument for its evaluation: "since both Apriori and
Pincer-Search algorithms are using the same data structure, the comparison
is fair" (Section 4.1.1).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set

from ..core.candidates import first_level_candidates
from ..core.itemset import Itemset
from ..core.kernel import make_kernel
from ..core.lattice import maximal_elements
from ..core.pincer import resolve_threshold
from ..core.result import MiningResult, MiningTimeout
from ..core.stats import MiningStats
from ..db.counting import (
    CountingDeadline,
    SupportCounter,
    resolve_counter,
)
from ..db.transaction_db import TransactionDatabase
from ..obs.instrument import NOOP, Instrumentation


class Apriori:
    """Classic levelwise frequent-itemset miner.

    ``kernel`` selects the lattice kernel for candidate generation (see
    :mod:`repro.core.kernel`); the default resolves to the bitmask kernel.
    """

    name = "apriori"

    def __init__(self, engine: str = "auto", kernel: Optional[str] = None) -> None:
        self._engine = engine
        self._kernel = kernel

    def mine(
        self,
        db: TransactionDatabase,
        min_support: Optional[float] = None,
        *,
        min_count: Optional[int] = None,
        counter: Optional[SupportCounter] = None,
        time_budget: Optional[float] = None,
        obs: Optional[Instrumentation] = None,
    ) -> MiningResult:
        """Mine the maximum frequent set (by first mining *all* frequents).

        The returned :class:`MiningResult` carries the MFS like
        Pincer-Search's, but ``supports`` contains every frequent itemset —
        Apriori cannot avoid discovering them all.  With long maximal
        itemsets that blow-up makes the run effectively unbounded (the
        phenomenon the paper's Figure 4 measures), so ``time_budget``
        (seconds, checked at pass boundaries) raises
        :class:`~repro.core.result.MiningTimeout` instead of thrashing.
        """
        threshold, fraction = resolve_threshold(db, min_support, min_count)
        engine, decision = resolve_counter(db, self._engine, counter)
        obs = obs if obs is not None else NOOP
        engine.obs = obs
        lattice = make_kernel(self._kernel, db.universe)
        started = time.perf_counter()

        stats = MiningStats(
            algorithm=self.name,
            engine=decision.engine,
            engine_evidence=decision.evidence,
        )
        supports: Dict[Itemset, int] = {}
        all_frequents: Set[Itemset] = set()
        candidates: List[Itemset] = first_level_candidates(db.universe)
        k = 0

        if time_budget is not None:
            engine.deadline = started + time_budget

        run_span = obs.span(
            "run",
            algorithm=self.name,
            engine=engine.name,
            num_transactions=len(db),
            min_support_count=threshold,
        )
        with run_span:
            while candidates:
                k += 1
                elapsed = time.perf_counter() - started
                if time_budget is not None and elapsed > time_budget:
                    stats.seconds = elapsed
                    raise MiningTimeout(self.name, elapsed, stats)
                pass_stats = stats.new_pass(k)
                pass_started = time.perf_counter()

                with obs.span("pass", k=k) as pass_span:
                    try:
                        counts = engine.count(db, candidates)
                    except CountingDeadline:
                        stats.passes.pop()  # the aborted pass never finished
                        elapsed = time.perf_counter() - started
                        stats.seconds = elapsed
                        raise MiningTimeout(self.name, elapsed, stats) from None
                    supports.update(counts)
                    pass_stats.bottom_up_candidates = len(candidates)

                    level_frequents = sorted(
                        candidate
                        for candidate in candidates
                        if counts[candidate] >= threshold
                    )
                    pass_stats.frequent_found = len(level_frequents)
                    pass_stats.infrequent_found = len(candidates) - len(
                        level_frequents
                    )
                    all_frequents.update(level_frequents)

                    elapsed = time.perf_counter() - started
                    if time_budget is not None and elapsed > time_budget:
                        pass_stats.seconds = time.perf_counter() - pass_started
                        stats.seconds = elapsed
                        raise MiningTimeout(self.name, elapsed, stats)
                    with obs.span("generate"):
                        try:
                            joined = lattice.apriori_join(
                                level_frequents, deadline=engine.deadline
                            )
                        except CountingDeadline:
                            elapsed = time.perf_counter() - started
                            stats.seconds = elapsed
                            raise MiningTimeout(
                                self.name, elapsed, stats
                            ) from None
                        candidates = sorted(
                            lattice.apriori_prune(joined, level_frequents)
                        )
                    pass_stats.seconds = time.perf_counter() - pass_started
                    if obs.enabled:
                        pass_span.set(**pass_stats.to_dict())
                        obs.counter("miner.candidates.bottom_up").inc(
                            pass_stats.bottom_up_candidates
                        )
                        obs.counter("miner.frequent_found").inc(
                            pass_stats.frequent_found
                        )

            engine.deadline = None
            stats.seconds = time.perf_counter() - started
            stats.records_read = engine.records_read
            if obs.enabled:
                run_span.set(
                    passes=stats.num_passes,
                    total_candidates=stats.total_candidates,
                    mfs_size=len(maximal_elements(all_frequents)),
                    records_read=stats.records_read,
                )
                obs.counter("miner.runs").inc()
        return MiningResult(
            mfs=frozenset(maximal_elements(all_frequents)),
            supports=supports,
            num_transactions=len(db),
            min_support_count=threshold,
            min_support=fraction,
            algorithm=self.name,
            stats=stats,
        )

    def frequent_itemsets(
        self,
        db: TransactionDatabase,
        min_support: Optional[float] = None,
        *,
        min_count: Optional[int] = None,
    ) -> Dict[Itemset, int]:
        """All frequent itemsets with their absolute supports.

        Convenience wrapper for rule generation and tests.
        """
        result = self.mine(db, min_support, min_count=min_count)
        return {
            itemset_: count
            for itemset_, count in result.supports.items()
            if count >= result.min_support_count
        }


def apriori(
    db: TransactionDatabase,
    min_support: Optional[float] = None,
    *,
    min_count: Optional[int] = None,
    engine: str = "auto",
    kernel: Optional[str] = None,
) -> MiningResult:
    """Functional one-shot entry point; see :class:`Apriori`.

    >>> from repro.db.transaction_db import TransactionDatabase
    >>> db = TransactionDatabase([[1, 2, 3], [1, 2, 3], [1, 2], [3]])
    >>> sorted(apriori(db, 0.5).mfs)
    [(1, 2, 3)]
    """
    return Apriori(engine=engine, kernel=kernel).mine(
        db, min_support, min_count=min_count
    )
