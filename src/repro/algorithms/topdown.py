"""A "pure" top-down maximal-itemset miner (paper Section 3.1).

Searches from the ``n``-itemset downward using only Observation 2 ("if an
itemset is frequent, all its subsets must be frequent, and they do not
need to be examined").  The frontier is maintained with the very same MFCS
structure Pincer-Search uses: each pass counts the unclassified frontier
elements; frequent ones are maximal (everything above them is already
known infrequent) and move to the MFS; infrequent ones are split into
their immediate subsets via MFCS-gen.

This is the degenerate case of Pincer-Search with an empty bottom-up
stream, provided here both as an instructive baseline and because the
paper's Section 3.1 frames the design space as bottom-up vs top-down vs
the combined pincer.  It is efficient only when the maximal frequent
itemsets sit near the top of the lattice; with long transactions and low
supports the frontier explodes — which is exactly why the paper *combines*
the directions instead.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..core.itemset import Itemset
from ..core.kernel import make_kernel
from ..core.pincer import resolve_threshold
from ..core.result import MiningResult
from ..core.stats import MiningStats
from ..db.counting import SupportCounter, resolve_counter
from ..db.transaction_db import TransactionDatabase
from ..obs.instrument import NOOP, Instrumentation


class TopDown:
    """Pure top-down miner over the MFCS frontier.

    ``max_frontier`` guards against the combinatorial explosion this
    direction suffers on real data; exceeding it raises RuntimeError
    rather than thrashing for hours.
    """

    name = "top-down"

    def __init__(
        self,
        engine: str = "auto",
        max_frontier: int = 200_000,
        kernel: Optional[str] = None,
    ) -> None:
        self._engine = engine
        self._max_frontier = max_frontier
        self._kernel = kernel

    def mine(
        self,
        db: TransactionDatabase,
        min_support: Optional[float] = None,
        *,
        min_count: Optional[int] = None,
        counter: Optional[SupportCounter] = None,
        obs: Optional[Instrumentation] = None,
    ) -> MiningResult:
        """Discover the maximum frequent set top-down."""
        threshold, fraction = resolve_threshold(db, min_support, min_count)
        engine, decision = resolve_counter(db, self._engine, counter)
        obs = obs if obs is not None else NOOP
        engine.obs = obs
        started = time.perf_counter()

        stats = MiningStats(
            algorithm=self.name,
            engine=decision.engine,
            engine_evidence=decision.evidence,
        )
        supports: Dict[Itemset, int] = {}
        mfs: set = set()
        lattice = make_kernel(self._kernel, db.universe)
        frontier = lattice.make_mfcs(db.universe)
        pass_number = 0

        run_span = obs.span(
            "run",
            algorithm=self.name,
            engine=engine.name,
            num_transactions=len(db),
            min_support_count=threshold,
        )
        with run_span:
            while len(frontier) > 0:
                pass_number += 1
                if len(frontier) > self._max_frontier:
                    raise RuntimeError(
                        "top-down frontier exploded to %d elements; this "
                        "search direction is infeasible for this database"
                        % len(frontier)
                    )
                pass_stats = stats.new_pass(pass_number)
                pass_started = time.perf_counter()

                with obs.span("pass", k=pass_number) as pass_span:
                    elements: List[Itemset] = sorted(frontier)
                    uncounted = [
                        element
                        for element in elements
                        if element not in supports
                    ]
                    supports.update(engine.count(db, uncounted))
                    pass_stats.mfcs_candidates = len(uncounted)

                    with obs.span("prune"):
                        infrequent: List[Itemset] = []
                        for element in elements:
                            if supports[element] >= threshold:
                                mfs.add(element)
                                frontier.remove(element)
                                pass_stats.maximal_found += 1
                            else:
                                infrequent.append(element)
                    with obs.span("mfcs_gen"):
                        frontier.update(infrequent, protected=mfs)
                    pass_stats.mfcs_size_after = len(frontier)
                    pass_stats.seconds = time.perf_counter() - pass_started
                    if pass_stats.total_candidates == 0:
                        # cache-only iteration: no database read
                        stats.passes.pop()
                    if obs.enabled:
                        pass_span.set(**pass_stats.to_dict())
                        obs.counter("miner.candidates.mfcs").inc(
                            pass_stats.mfcs_candidates
                        )
                        obs.counter("miner.maximal_found").inc(
                            pass_stats.maximal_found
                        )
                        obs.gauge("mfcs.size").set(pass_stats.mfcs_size_after)

            stats.seconds = time.perf_counter() - started
            stats.records_read = engine.records_read
            if obs.enabled:
                run_span.set(
                    passes=stats.num_passes,
                    total_candidates=stats.total_candidates,
                    mfs_size=len(mfs),
                    records_read=stats.records_read,
                )
                obs.counter("miner.runs").inc()
        return MiningResult(
            mfs=frozenset(mfs),
            supports=supports,
            num_transactions=len(db),
            min_support_count=threshold,
            min_support=fraction,
            algorithm=self.name,
            stats=stats,
        )


def top_down(
    db: TransactionDatabase,
    min_support: Optional[float] = None,
    *,
    min_count: Optional[int] = None,
    engine: str = "auto",
) -> MiningResult:
    """Functional one-shot entry point; see :class:`TopDown`.

    >>> from repro.db.transaction_db import TransactionDatabase
    >>> db = TransactionDatabase([[1, 2, 3], [1, 2, 3], [1, 2], [3]])
    >>> sorted(top_down(db, 0.5).mfs)
    [(1, 2, 3)]
    """
    return TopDown(engine=engine).mine(db, min_support, min_count=min_count)
