"""Reimplementation of the IBM Quest synthetic market-basket generator.

The Pincer paper evaluates on "the synthetic databases used in [3]"
(Agrawal & Srikant, VLDB 1994) and thanks the authors for the original C
program, which was never published as source.  This module is a faithful
reimplementation of the published generation procedure (VLDB'94,
Section 3.1 "Synthetic data"):

1.  A pool of ``|L|`` *maximal potentially large itemsets* (here: patterns)
    is drawn.  Pattern sizes are Poisson with mean ``|I|``.  The first
    pattern picks its items uniformly; each later pattern copies an
    exponentially-distributed fraction (mean = the correlation level, 0.5)
    of the previous pattern's items and picks the rest uniformly — this is
    what makes frequent itemsets cluster.
2.  Each pattern gets a weight, exponential with unit mean, normalised to
    sum to 1, and a *corruption level* drawn from a normal distribution
    with mean 0.5 and variance 0.1 (clamped to ``[0, 1]``).
3.  Transaction sizes are Poisson with mean ``|T|``.  A transaction is
    filled by repeatedly picking a pattern from the weighted pool,
    *corrupting* it (items are dropped while a uniform draw stays below
    the pattern's corruption level), and inserting the remainder.  When a
    pattern does not fit in what is left of the transaction, it is added
    anyway in half the cases and deferred to the next transaction in the
    other half.

The paper's databases are then fully described by the standard name
``T<T>.I<I>.D<D>K``, plus ``N`` (number of items, 1000) and ``|L|``
(2000 for the scattered-distribution experiments of Figure 3, 50 for the
concentrated ones of Figure 4).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from ..core.itemset import Itemset
from ..db.transaction_db import TransactionDatabase


@dataclass(frozen=True)
class QuestConfig:
    """Parameters of the Quest generator, named as in the paper.

    ``num_transactions`` is ``|D|``, ``avg_transaction_size`` is ``|T|``,
    ``avg_pattern_size`` is ``|I|``, ``num_patterns`` is ``|L|`` and
    ``num_items`` is ``N``.
    """

    num_transactions: int
    avg_transaction_size: float
    avg_pattern_size: float
    num_patterns: int = 2000
    num_items: int = 1000
    correlation: float = 0.5
    corruption_mean: float = 0.5
    corruption_variance: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_transactions < 0:
            raise ValueError("|D| must be non-negative")
        if self.avg_transaction_size <= 0:
            raise ValueError("|T| must be positive")
        if self.avg_pattern_size <= 0:
            raise ValueError("|I| must be positive")
        if self.num_patterns < 1:
            raise ValueError("|L| must be at least 1")
        if self.num_items < 1:
            raise ValueError("N must be at least 1")
        if not 0.0 <= self.correlation <= 1.0:
            raise ValueError("correlation must lie in [0, 1]")

    @property
    def name(self) -> str:
        """The conventional database name, e.g. ``T10.I4.D100K``.

        >>> QuestConfig(100000, 10, 4).name
        'T10.I4.D100K'
        """
        thousands = self.num_transactions / 1000.0
        if thousands == int(thousands):
            d_part = "D%dK" % int(thousands)
        else:
            d_part = "D%d" % self.num_transactions
        return "T%s.I%s.%s" % (
            _trim(self.avg_transaction_size),
            _trim(self.avg_pattern_size),
            d_part,
        )


def _trim(value: float) -> str:
    """Render 10.0 as '10' but keep 7.5 as '7.5'."""
    return str(int(value)) if value == int(value) else str(value)


@dataclass(frozen=True)
class Pattern:
    """One maximal potentially large itemset of the pool."""

    items: Itemset
    weight: float
    corruption: float


@dataclass
class QuestGenerator:
    """Stateful generator: build the pattern pool once, emit transactions.

    The pool is exposed (:attr:`patterns`) so tests and the benchmark
    harness can inspect what the "planted" itemsets were.
    """

    config: QuestConfig
    patterns: List[Pattern] = field(init=False)
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.config.seed)
        self.patterns = self._build_pattern_pool()
        weights = [pattern.weight for pattern in self.patterns]
        self._cumulative = _cumulative_sums(weights)

    # ------------------------------------------------------------------
    # pattern pool
    # ------------------------------------------------------------------

    def _build_pattern_pool(self) -> List[Pattern]:
        config = self.config
        rng = self._rng
        sizes = [
            _clamp(_poisson(rng, config.avg_pattern_size), 1, config.num_items)
            for _ in range(config.num_patterns)
        ]
        raw_weights = [rng.expovariate(1.0) for _ in range(config.num_patterns)]
        total_weight = sum(raw_weights)
        corruption_std = math.sqrt(config.corruption_variance)

        patterns: List[Pattern] = []
        previous: Tuple[int, ...] = ()
        for size, raw_weight in zip(sizes, raw_weights):
            items = self._draw_pattern_items(size, previous)
            previous = items
            corruption = _clamp_float(
                rng.gauss(config.corruption_mean, corruption_std), 0.0, 1.0
            )
            patterns.append(
                Pattern(items=items, weight=raw_weight / total_weight,
                        corruption=corruption)
            )
        return patterns

    def _draw_pattern_items(self, size: int, previous: Tuple[int, ...]) -> Itemset:
        """Pick ``size`` items, reusing a correlated share of ``previous``."""
        config = self.config
        rng = self._rng
        chosen: set = set()
        if previous and config.correlation > 0:
            fraction = min(
                1.0, rng.expovariate(1.0 / config.correlation)
            )
            carried = min(len(previous), size, round(fraction * size))
            if carried:
                chosen.update(rng.sample(previous, carried))
        while len(chosen) < size:
            chosen.add(rng.randrange(1, config.num_items + 1))
        return tuple(sorted(chosen))

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def _pick_pattern(self) -> Pattern:
        """Toss the |L|-sided weighted die."""
        point = self._rng.random()
        low, high = 0, len(self._cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if self._cumulative[mid] < point:
                low = mid + 1
            else:
                high = mid
        return self.patterns[low]

    def _corrupt(self, pattern: Pattern) -> List[int]:
        """Drop items while a uniform draw stays below the corruption level."""
        rng = self._rng
        items = list(pattern.items)
        while items and rng.random() < pattern.corruption:
            items.pop(rng.randrange(len(items)))
        return items

    def generate(
        self, num_transactions: Optional[int] = None
    ) -> TransactionDatabase:
        """Emit a database of ``num_transactions`` baskets (default ``|D|``).

        The item universe of the returned database is the full
        ``1..N`` range, matching the paper's setup where the initial MFCS
        element is the itemset of all database items.
        """
        config = self.config
        rng = self._rng
        count = config.num_transactions if num_transactions is None else num_transactions
        transactions: List[List[int]] = []
        deferred: Optional[Pattern] = None
        for _ in range(count):
            size = max(1, _poisson(rng, config.avg_transaction_size))
            basket: set = set()
            # Guard beyond the published procedure: a pattern whose
            # corruption level clipped to ~1.0 corrupts to an empty
            # fragment every time, and a heavily weighted one can starve
            # the fill loop; cap the picks per transaction and accept a
            # short basket instead (padding with one random item when the
            # basket would otherwise be empty).
            attempts_left = max(64, 8 * size)
            while attempts_left > 0:
                attempts_left -= 1
                pattern = deferred if deferred is not None else self._pick_pattern()
                deferred = None
                fragment = self._corrupt(pattern)
                if basket and len(basket) + len(fragment) > size:
                    if rng.random() < 0.5:
                        basket.update(fragment)
                    else:
                        deferred = pattern
                    break
                basket.update(fragment)
                if len(basket) >= size:
                    break
            if not basket:
                basket.add(rng.randrange(1, config.num_items + 1))
            transactions.append(sorted(basket))
        return TransactionDatabase(
            transactions, universe=range(1, config.num_items + 1)
        )


def generate(config: QuestConfig, seed: Optional[int] = None) -> TransactionDatabase:
    """One-shot convenience: build the pool and the database in one call.

    ``seed`` overrides ``config.seed`` when given, so one config object can
    be reused across replications.
    """
    if seed is not None:
        config = replace(config, seed=seed)
    return QuestGenerator(config).generate()


# ----------------------------------------------------------------------
# numeric helpers
# ----------------------------------------------------------------------


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's Poisson sampler; fine for the small means the paper uses."""
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def _clamp(value: int, low: int, high: int) -> int:
    return max(low, min(high, value))


def _clamp_float(value: float, low: float, high: float) -> float:
    return max(low, min(high, value))


def _cumulative_sums(weights: Sequence[float]) -> List[float]:
    sums: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight
        sums.append(running)
    if sums:
        sums[-1] = 1.0  # guard against float drift in the die toss
    return sums
