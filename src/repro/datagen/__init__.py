"""Synthetic data generation (IBM Quest reimplementation) and named configs."""

from .configs import (
    CONCENTRATED,
    CONCENTRATED_SUPPORTS,
    SCATTERED,
    SCATTERED_SUPPORTS,
    parse_name,
    scaled,
)
from .quest import Pattern, QuestConfig, QuestGenerator, generate
from .scenarios import zipf_baskets

__all__ = [
    "CONCENTRATED",
    "CONCENTRATED_SUPPORTS",
    "SCATTERED",
    "SCATTERED_SUPPORTS",
    "Pattern",
    "QuestConfig",
    "QuestGenerator",
    "generate",
    "parse_name",
    "scaled",
    "zipf_baskets",
]
