"""Synthetic scenario generators for the paper's application domains.

The Quest generator (:mod:`repro.datagen.quest`) produces the paper's
benchmark family; the generators here produce *interpretable* workloads
for the three applications the paper names — a sector-structured stock
market, a web clickstream with planted session funnels, and an HR
relation with known keys.  The examples and the application tests share
them.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple

from ..db.transaction_db import TransactionDatabase

# ----------------------------------------------------------------------
# correlated stock market (paper conclusion's motivating domain)
# ----------------------------------------------------------------------

#: default sector layout: name -> contiguous stock ids
DEFAULT_SECTORS: Dict[str, "range"] = {
    "tech": range(0, 14),
    "banks": range(14, 25),
    "energy": range(25, 33),
    "retail": range(33, 40),
}


def correlated_market(
    num_days: int = 1000,
    sectors: Dict[str, Sequence[int]] = None,
    sector_up_prob: float = 0.35,
    follow_prob: float = 0.985,
    idiosyncratic_prob: float = 0.05,
    seed: int = 11,
) -> TransactionDatabase:
    """Daily up-move baskets of a sector-correlated market.

    Each day every sector independently rallies with ``sector_up_prob``;
    member stocks follow a rally with ``follow_prob`` and otherwise move
    idiosyncratically.  The maximal frequent itemsets of the result are
    (noise aside) the sector blocks — long itemsets, the regime the
    paper's conclusion argues makes the maximum frequent set essential.
    """
    sectors = dict(DEFAULT_SECTORS) if sectors is None else sectors
    rng = random.Random(seed)
    all_stocks = sorted(
        stock for members in sectors.values() for stock in members
    )
    days: List[List[int]] = []
    for _ in range(num_days):
        risers: List[int] = []
        for members in sectors.values():
            rally = rng.random() < sector_up_prob
            for stock in members:
                if rally and rng.random() < follow_prob:
                    risers.append(stock)
                elif rng.random() < idiosyncratic_prob:
                    risers.append(stock)
        days.append(sorted(set(risers)))
    return TransactionDatabase(days, universe=all_stocks)


def sector_of(stock: int, sectors: Dict[str, Sequence[int]] = None) -> str:
    """Sector name of a stock id under the given (or default) layout."""
    sectors = dict(DEFAULT_SECTORS) if sectors is None else sectors
    for name, members in sectors.items():
        if stock in members:
            return name
    return "?"


# ----------------------------------------------------------------------
# clickstream with planted session funnels (episodes domain)
# ----------------------------------------------------------------------

#: event-type vocabulary of the default clickstream
EVENT_NAMES: Dict[int, str] = {
    0: "login", 1: "page_view", 2: "search", 3: "add_to_cart",
    4: "checkout", 5: "payment", 6: "error_500", 7: "retry",
    8: "support_chat", 9: "logout",
}

#: (episode template, weight) pairs planted in the stream
DEFAULT_TEMPLATES: List[Tuple[Tuple[int, ...], float]] = [
    ((0, 1, 2), 0.35),             # browse
    ((0, 1, 2, 3), 0.25),          # shop
    ((0, 1, 2, 3, 4, 5), 0.20),    # purchase funnel
    ((6, 7), 0.12),                # failure + retry
    ((6, 7, 8), 0.08),             # failure escalates to support
]


def clickstream(
    length: int = 6000,
    templates: List[Tuple[Tuple[int, ...], float]] = None,
    keep_prob: float = 0.9,
    noise_prob: float = 0.35,
    num_event_types: int = None,
    seed: int = 3,
) -> List[int]:
    """An event-type sequence with weighted session templates planted.

    Each appended session is a shuffled template with events kept with
    ``keep_prob``; with ``noise_prob`` a random event follows.  Feed the
    result to :func:`repro.apps.episodes.sequence_to_events`.
    """
    templates = DEFAULT_TEMPLATES if templates is None else templates
    if num_event_types is None:
        num_event_types = max(
            event for template, _ in templates for event in template
        ) + 1
    rng = random.Random(seed)
    cumulative: List[Tuple[float, Tuple[int, ...]]] = []
    total = 0.0
    for template, weight in templates:
        total += weight
        cumulative.append((total, template))
    stream: List[int] = []
    while len(stream) < length:
        point = rng.random() * total
        template = next(t for threshold, t in cumulative if point <= threshold)
        session = [event for event in template if rng.random() < keep_prob]
        rng.shuffle(session)
        stream.extend(session)
        if rng.random() < noise_prob:
            stream.append(rng.randrange(num_event_types))
    return stream[:length]


# ----------------------------------------------------------------------
# Zipf-skewed retail baskets (compressed-counting-tier benchmark cell)
# ----------------------------------------------------------------------


def zipf_baskets(
    num_transactions: int = 50000,
    num_items: int = 2000,
    skew: float = 1.5,
    avg_basket_size: int = 10,
    seed: int = 17,
) -> TransactionDatabase:
    """Retail-like baskets with Zipf(``skew``) item popularity.

    Real basket data pairs a handful of staple items with a long tail of
    rarities; under ``skew >= 1.5`` the tail items' vertical bitmaps are
    almost entirely zero words — the regime the roaring engine's array
    containers and absent-chunk skipping are built for, and the sparse
    cell of the density-sweep benchmark.  Basket sizes are geometric
    around ``avg_basket_size``; everything is deterministic in ``seed``.
    """
    rng = random.Random(seed)
    weights = [1.0 / (rank ** skew) for rank in range(1, num_items + 1)]
    cumulative: List[float] = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)
    stop_prob = 1.0 / max(1, avg_basket_size)
    baskets: List[List[int]] = []
    for _ in range(num_transactions):
        basket = set()
        while True:
            point = rng.random() * total
            basket.add(bisect_left(cumulative, point))
            if rng.random() < stop_prob:
                break
        baskets.append(sorted(basket))
    return TransactionDatabase(baskets, universe=range(num_items))


# ----------------------------------------------------------------------
# HR relation with known keys (minimal-keys domain)
# ----------------------------------------------------------------------

EMPLOYEE_COLUMNS = [
    "employee_id", "email", "first_name", "last_name",
    "department", "office", "badge_no",
]


def employees_table(count: int = 400, seed: int = 21):
    """Rows + column names of an HR table with three obvious minimal keys.

    ``employee_id``, ``email`` and ``badge_no`` are unique by
    construction; everything else is heavily repeated.
    """
    rng = random.Random(seed)
    first_names = ["ada", "grace", "alan", "edsger", "barbara", "donald"]
    last_names = ["lovelace", "hopper", "turing", "dijkstra", "liskov"]
    departments = ["eng", "sales", "hr", "ops"]
    rows = []
    for employee_id in range(count):
        first = rng.choice(first_names)
        last = rng.choice(last_names)
        department = rng.choice(departments)
        rows.append((
            employee_id,
            "%s.%s.%d@corp.example" % (first, last, employee_id),
            first,
            last,
            department,
            "%s-%d" % (department, rng.randint(1, 3)),
            1000 + employee_id,
        ))
    return rows, list(EMPLOYEE_COLUMNS)
