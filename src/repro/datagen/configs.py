"""Named generator configurations used by the paper's evaluation.

The paper's Figure 3 (scattered distributions) uses ``|L| = 2000`` and
Figure 4 (concentrated distributions) uses ``|L| = 50``; both keep
``N = 1000`` items and ``|D| = 100K`` transactions.  The helpers here parse
the conventional ``T<x>.I<y>.D<z>K`` names and produce scaled-down variants
(`scaled`) so the same experiments run at laptop-friendly sizes — support
thresholds are fractions, so scaling ``|D|`` preserves the distributional
shape (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import Dict, Tuple

from .quest import QuestConfig

_NAME_PATTERN = re.compile(
    r"^T(?P<t>\d+(?:\.\d+)?)\.I(?P<i>\d+(?:\.\d+)?)\.D(?P<d>\d+)(?P<k>K?)$",
    re.IGNORECASE,
)


def parse_name(name: str, num_patterns: int = 2000, num_items: int = 1000,
               seed: int = 0) -> QuestConfig:
    """Parse ``T10.I4.D100K`` into a :class:`QuestConfig`.

    >>> config = parse_name("T10.I4.D100K")
    >>> (config.avg_transaction_size, config.avg_pattern_size, config.num_transactions)
    (10.0, 4.0, 100000)
    """
    match = _NAME_PATTERN.match(name.strip())
    if match is None:
        raise ValueError("not a T<x>.I<y>.D<z>[K] database name: %r" % name)
    transactions = int(match.group("d")) * (1000 if match.group("k") else 1)
    return QuestConfig(
        num_transactions=transactions,
        avg_transaction_size=float(match.group("t")),
        avg_pattern_size=float(match.group("i")),
        num_patterns=num_patterns,
        num_items=num_items,
        seed=seed,
    )


def scaled(config: QuestConfig, num_transactions: int) -> QuestConfig:
    """The same workload at a different ``|D|`` (all else unchanged)."""
    return replace(config, num_transactions=num_transactions)


#: Figure 3 databases: scattered distributions, |L| = 2000.
SCATTERED: Dict[str, QuestConfig] = {
    name: parse_name(name, num_patterns=2000)
    for name in ("T5.I2.D100K", "T10.I4.D100K", "T20.I6.D100K")
}

#: Figure 4 databases: concentrated distributions, |L| = 50.
CONCENTRATED: Dict[str, QuestConfig] = {
    name: parse_name(name, num_patterns=50)
    for name in ("T20.I6.D100K", "T20.I10.D100K", "T20.I15.D100K")
}

#: Minimum-support sweeps (percent) per figure panel, following Section 4.2.
SCATTERED_SUPPORTS: Dict[str, Tuple[float, ...]] = {
    "T5.I2.D100K": (0.75, 0.5, 0.33, 0.25),
    "T10.I4.D100K": (1.5, 1.0, 0.75, 0.5),
    "T20.I6.D100K": (1.0, 0.75, 0.5, 0.33),
}

CONCENTRATED_SUPPORTS: Dict[str, Tuple[float, ...]] = {
    "T20.I6.D100K": (18.0, 15.0, 12.0, 11.0),
    "T20.I10.D100K": (12.0, 9.0, 6.0),
    "T20.I15.D100K": (9.0, 8.0, 7.0, 6.0),
}
