"""Borders of itemset theories (Mannila & Toivonen).

The paper's related-work section points to Mannila and Toivonen's
"Levelwise search and borders of theories" [11]: the frequent itemsets
form a downward-closed family whose *positive border* is exactly the
maximum frequent set, and whose *negative border* is the set of minimal
infrequent itemsets — precisely the itemsets any levelwise algorithm must
count and reject.  These notions make sharp test oracles:

* Pincer-Search's output must equal the positive border of the
  brute-force frequent family;
* Apriori's counted-and-rejected candidates are a subset of the negative
  border plus nothing below it;
* ``|negative border|`` lower-bounds the candidates of any bottom-up
  algorithm, which is the complexity model the paper escapes ("as our
  algorithm does not fit in this model, their complexity low bound does
  not apply to it", Section 5).
"""

from __future__ import annotations

from typing import Iterable, Set

from ..core.candidates import apriori_join
from ..core.cover import CoverIndex
from ..core.itemset import Itemset
from ..core.lattice import downward_closure, maximal_elements


def positive_border(family: Iterable[Itemset]) -> Set[Itemset]:
    """Maximal members of a downward-closed family (= the MFS).

    >>> sorted(positive_border([(1,), (2,), (1, 2), (3,)]))
    [(1, 2), (3,)]
    """
    return maximal_elements(family)


def negative_border(
    mfs: Iterable[Itemset], universe: Iterable[int]
) -> Set[Itemset]:
    """Minimal itemsets outside the family described by ``mfs``.

    ``mfs`` describes the downward-closed family of frequent itemsets; an
    itemset is in the negative border iff it is not frequent but all of
    its immediate subsets are.  Enumeration is levelwise: infrequent
    single items first, then for every frequent level the join of its
    members filtered by the all-subsets-frequent condition (any border
    itemset of size ≥ 2 appears in that join output, because its two
    lexicographically adjacent immediate subsets share a prefix).

    >>> sorted(negative_border([(1, 2)], [1, 2, 3]))
    [(3,)]
    >>> sorted(negative_border([(1, 2), (1, 3), (2, 3)], [1, 2, 3]))
    [(1, 2, 3)]
    """
    cover = CoverIndex(maximal_elements(mfs))
    border: Set[Itemset] = {
        (item,) for item in sorted(set(universe)) if not cover.covers((item,))
    }
    frequent = downward_closure(cover.members)
    levels = sorted({len(member) for member in frequent})
    for level in levels:
        level_members = sorted(f for f in frequent if len(f) == level)
        for candidate in apriori_join(level_members):
            if cover.covers(candidate):
                continue
            if all(
                subset in frequent
                for subset in _immediate_subsets(candidate)
            ):
                border.add(candidate)
    return border


def _immediate_subsets(candidate: Itemset):
    for index in range(len(candidate)):
        yield candidate[:index] + candidate[index + 1:]


def border_certificate(
    mfs: Iterable[Itemset], universe: Iterable[int]
) -> int:
    """Size of the smallest "certificate" a levelwise miner must verify.

    ``|positive border| + |negative border|`` — every bottom-up
    breadth-first algorithm counts at least this many itemsets (Mannila &
    Toivonen's lower bound).  Pincer-Search can beat it because frequent
    MFCS elements certify entire sublattices at once.
    """
    mfs_set = maximal_elements(mfs)
    return len(mfs_set) + len(negative_border(mfs_set, universe))


def is_downward_closed(family: Iterable[Itemset]) -> bool:
    """True iff the family contains every non-empty subset of its members.

    >>> is_downward_closed([(1,), (2,), (1, 2)])
    True
    >>> is_downward_closed([(1, 2)])
    False
    """
    members = set(family)
    return all(
        subset in members
        for member in members
        for subset in _immediate_subsets(member)
        if subset
    )
