"""Border theory utilities (positive/negative borders of itemset families)."""

from .borders import (
    border_certificate,
    is_downward_closed,
    negative_border,
    positive_border,
)

__all__ = [
    "border_certificate",
    "is_downward_closed",
    "negative_border",
    "positive_border",
]
