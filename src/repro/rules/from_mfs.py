"""Rule generation straight from the maximum frequent set.

Paper, Section 2.1: "an efficient way of generating interesting
association rules is by examining the maximum frequent set first, and then
proceeding to their subsets ... while generating rules, all one needs to
know is the support of the maximal frequent itemsets and of the itemsets
'a little' shorter.  If the maximum frequent set is known, one can easily
generate the required subsets and count their supports by reading the
database once."

This module implements exactly that post-processing: expand the subsets of
the MFS members down to a chosen depth, count all of them in one database
pass, and feed the result into the stage-2 generator.  Deepening on demand
(:func:`rules_from_mfs` with ``depth=None``) keeps expanding until the
consequent growth of every emitted rule is exhausted or the full closure
is reached.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Optional, Set

from ..core.itemset import Itemset
from ..core.result import MiningResult
from ..db.counting import SupportCounter, resolve_counter
from ..db.transaction_db import TransactionDatabase
from .generation import AssociationRule, generate_rules


def mfs_subsets_to_depth(
    mfs: Iterable[Itemset], depth: int
) -> Set[Itemset]:
    """All subsets of MFS members whose length is within ``depth`` of them.

    ``depth=0`` is the MFS itself; ``depth=1`` adds the immediate subsets;
    and so on.  Subsets shared by several members appear once.

    >>> sorted(mfs_subsets_to_depth([(1, 2, 3)], 1))
    [(1, 2), (1, 2, 3), (1, 3), (2, 3)]
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    wanted: Set[Itemset] = set()
    for member in mfs:
        low = max(1, len(member) - depth)
        for size in range(low, len(member) + 1):
            wanted.update(combinations(member, size))
    return wanted


def expand_mfs_supports(
    db: TransactionDatabase,
    result: MiningResult,
    depth: int,
    counter: Optional[SupportCounter] = None,
    engine: str = "auto",
) -> Dict[Itemset, int]:
    """Supports of all MFS subsets down to ``depth``, in one extra pass.

    Re-uses every support the mining run already counted; only the missing
    subsets hit the database.  Returns a combined support table (the
    mining run's counts plus the new ones).
    """
    engine_obj, _ = resolve_counter(db, engine, counter)
    wanted = mfs_subsets_to_depth(result.mfs, depth)
    missing = sorted(wanted - set(result.supports))
    counted = engine_obj.count(db, missing)
    combined = dict(result.supports)
    combined.update(counted)
    return combined


def rules_from_mfs(
    db: TransactionDatabase,
    result: MiningResult,
    min_confidence: float,
    depth: Optional[int] = 2,
    engine: str = "auto",
) -> List[AssociationRule]:
    """Stage-2 rules using the MFS-first strategy of the paper.

    ``depth`` bounds how far below the maximal itemsets the rule search
    reaches: rules are generated from all frequent itemsets within
    ``depth - 1`` of an MFS member, with antecedent supports available one
    level deeper.  ``depth=None`` expands the entire closure (exponential
    in the longest member — only for short MFS members).
    """
    if depth is None:
        depth = max((len(member) for member in result.mfs), default=0)
    supports = expand_mfs_supports(db, result, depth, engine=engine)
    # Rules whose antecedent support is unknown (one level below the
    # expansion horizon) are skipped inside generate_rules; deepen `depth`
    # to reach them.
    return generate_rules(
        supports,
        num_transactions=result.num_transactions,
        min_confidence=min_confidence,
        min_support_count=result.min_support_count,
    )
