"""Association-rule generation (mining stage 2)."""

from .from_mfs import expand_mfs_supports, mfs_subsets_to_depth, rules_from_mfs
from .generation import AssociationRule, generate_rules, interesting_rules

__all__ = [
    "AssociationRule",
    "expand_mfs_supports",
    "generate_rules",
    "interesting_rules",
    "mfs_subsets_to_depth",
    "rules_from_mfs",
]
