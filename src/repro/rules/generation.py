"""Association-rule generation from frequent itemsets (mining stage 2).

The paper's Section 2.1: "The normally followed scheme for mining
association rules consists of two stages: 1. the discovery of frequent
itemsets, followed by 2. the generation of association rules."  This
module is stage 2 in its classic Agrawal–Srikant form; the MFS-first
variant the paper advocates lives in :mod:`repro.rules.from_mfs`.

A rule ``X -> Y`` (X, Y non-empty, disjoint) has support
``support(X ∪ Y)`` and confidence ``support(X ∪ Y) / support(X)``.  Rule
generation exploits the anti-monotonicity of confidence in the consequent:
if ``Z \\ H -> H`` fails the confidence threshold, so does ``Z \\ H' -> H'``
for every ``H' ⊇ H``, which is what lets consequents be grown levelwise
(the *ap-genrules* scheme).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..core.candidates import apriori_join
from ..core.itemset import Itemset, difference, format_itemset


@dataclass(frozen=True)
class AssociationRule:
    """One association rule with its quality measures.

    ``support`` and ``confidence`` are fractions; ``lift`` is present only
    when the consequent's own support was known at generation time.
    """

    antecedent: Itemset
    consequent: Itemset
    support: float
    confidence: float
    lift: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.antecedent or not self.consequent:
            raise ValueError("antecedent and consequent must be non-empty")
        if set(self.antecedent) & set(self.consequent):
            raise ValueError("antecedent and consequent must be disjoint")

    @property
    def itemset(self) -> Itemset:
        """The underlying frequent itemset ``X ∪ Y``."""
        return tuple(sorted(self.antecedent + self.consequent))

    def __str__(self) -> str:
        return "%s -> %s  (sup=%.4f, conf=%.4f)" % (
            format_itemset(self.antecedent),
            format_itemset(self.consequent),
            self.support,
            self.confidence,
        )


def generate_rules(
    supports: Dict[Itemset, int],
    num_transactions: int,
    min_confidence: float,
    min_support_count: int = 1,
) -> List[AssociationRule]:
    """All confident rules derivable from the supplied supports.

    ``supports`` maps itemsets to absolute supports; rules are generated
    from every itemset of length ≥ 2 meeting ``min_support_count``, and a
    rule is emitted only when the support of its antecedent is also known
    (always the case for supports produced by Apriori, or by
    :func:`repro.rules.from_mfs.expand_mfs_supports` with enough depth).

    >>> sup = {(1,): 4, (2,): 3, (1, 2): 3}
    >>> [str(r) for r in generate_rules(sup, 4, 0.9)]
    ['{2} -> {1}  (sup=0.7500, conf=1.0000)']
    """
    if not 0.0 <= min_confidence <= 1.0:
        raise ValueError("min_confidence must be a fraction in [0, 1]")
    if num_transactions <= 0:
        raise ValueError("num_transactions must be positive")
    rules: List[AssociationRule] = []
    frequent = [
        itemset_
        for itemset_, count in supports.items()
        if len(itemset_) >= 2 and count >= min_support_count
    ]
    for itemset_ in sorted(frequent, key=lambda member: (len(member), member)):
        rules.extend(
            _rules_for_itemset(
                itemset_, supports, num_transactions, min_confidence
            )
        )
    return rules


def _rules_for_itemset(
    itemset_: Itemset,
    supports: Dict[Itemset, int],
    num_transactions: int,
    min_confidence: float,
) -> List[AssociationRule]:
    """ap-genrules over one frequent itemset, growing consequents levelwise."""
    itemset_count = supports[itemset_]
    rules: List[AssociationRule] = []
    # level 1: single-item consequents
    consequents: List[Itemset] = []
    for item in itemset_:
        rule = _try_rule(
            itemset_, (item,), itemset_count, supports, num_transactions,
            min_confidence,
        )
        if rule is not None:
            rules.append(rule)
            consequents.append((item,))
    # grow consequents; anti-monotonicity prunes via the join itself
    while len(consequents) > 1 and len(consequents[0]) + 1 < len(itemset_):
        grown = sorted(apriori_join(consequents))
        consequents = []
        for consequent in grown:
            rule = _try_rule(
                itemset_, consequent, itemset_count, supports,
                num_transactions, min_confidence,
            )
            if rule is not None:
                rules.append(rule)
                consequents.append(consequent)
    return rules


def _try_rule(
    itemset_: Itemset,
    consequent: Itemset,
    itemset_count: int,
    supports: Dict[Itemset, int],
    num_transactions: int,
    min_confidence: float,
) -> Optional[AssociationRule]:
    antecedent = difference(itemset_, consequent)
    antecedent_count = supports.get(antecedent)
    if antecedent_count is None or antecedent_count == 0:
        return None
    confidence = itemset_count / antecedent_count
    if confidence < min_confidence:
        return None
    consequent_count = supports.get(consequent)
    lift = None
    if consequent_count:
        lift = confidence / (consequent_count / num_transactions)
    return AssociationRule(
        antecedent=antecedent,
        consequent=consequent,
        support=itemset_count / num_transactions,
        confidence=confidence,
        lift=lift,
    )


def interesting_rules(
    rules: Iterable[AssociationRule],
    min_lift: float = 1.0,
    top: Optional[int] = None,
) -> List[AssociationRule]:
    """Filter rules by lift and keep the ``top`` most confident ones.

    Rules without a known lift are dropped when ``min_lift > 0``.
    """
    kept = [
        rule
        for rule in rules
        if min_lift <= 0 or (rule.lift is not None and rule.lift >= min_lift)
    ]
    kept.sort(key=lambda rule: (-rule.confidence, -rule.support, rule.itemset))
    return kept[:top] if top is not None else kept
