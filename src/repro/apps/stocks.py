"""Co-movement pattern discovery in price series (paper application #2).

The paper's conclusion motivates Pincer-Search with stock markets:
"Prices of individual stocks are frequently quite correlated with each
other (the market as a whole, goes up or down).  Therefore, the
discovered patterns may contain many items (stocks) and the frequent
itemsets are long."

This module performs the standard reduction from price series to market
baskets: each trading period becomes a transaction whose items are the
instruments whose return crossed a threshold (up-moves by default; signed
items distinguish up from down).  Maximal frequent itemsets are then the
largest groups of instruments that co-move often — and because correlated
markets make them long, this is exactly the regime where the maximum
frequent set matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.pincer import PincerSearch
from ..db.transaction_db import TransactionDatabase

#: Signed item encoding: instrument ``i`` up-move -> ``2 i``, down-move ->
#: ``2 i + 1``.  Keeps items non-negative ints as the substrate expects.
UP, DOWN = 0, 1


def returns_from_prices(prices: Sequence[float]) -> List[float]:
    """Simple per-period returns of one price series.

    >>> returns_from_prices([100.0, 110.0, 99.0])
    [0.1, -0.1]
    """
    if any(price <= 0 for price in prices):
        raise ValueError("prices must be positive")
    return [
        (later - earlier) / earlier
        for earlier, later in zip(prices, prices[1:])
    ]


def movement_item(instrument: int, direction: int) -> int:
    """Encode (instrument, direction) as a basket item."""
    if direction not in (UP, DOWN):
        raise ValueError("direction must be UP (0) or DOWN (1)")
    return 2 * instrument + direction


def decode_item(item: int) -> Tuple[int, int]:
    """Inverse of :func:`movement_item`.

    >>> decode_item(movement_item(7, DOWN))
    (7, 1)
    """
    return item // 2, item % 2


def movements_database(
    price_table: Mapping[int, Sequence[float]],
    threshold: float = 0.0,
    signed: bool = False,
) -> TransactionDatabase:
    """Turn aligned price series into a movement-basket database.

    ``price_table`` maps instrument id to its price series; all series
    must have equal length.  A period's basket holds every instrument
    whose return exceeds ``threshold`` (and, when ``signed``, items for
    returns below ``-threshold`` too).
    """
    lengths = {len(series) for series in price_table.values()}
    if len(lengths) > 1:
        raise ValueError("price series must be aligned (equal length)")
    if not price_table or lengths.pop() < 2:
        return TransactionDatabase([])
    returns = {
        instrument: returns_from_prices(series)
        for instrument, series in price_table.items()
    }
    num_periods = len(next(iter(returns.values())))
    baskets: List[List[int]] = []
    for period in range(num_periods):
        basket: List[int] = []
        for instrument, series in returns.items():
            value = series[period]
            if value > threshold:
                basket.append(
                    movement_item(instrument, UP) if signed else instrument
                )
            elif signed and value < -threshold:
                basket.append(movement_item(instrument, DOWN))
        baskets.append(basket)
    universe: Optional[Iterable[int]] = None
    if signed:
        universe = [
            movement_item(instrument, direction)
            for instrument in price_table
            for direction in (UP, DOWN)
        ]
    else:
        universe = list(price_table)
    return TransactionDatabase(baskets, universe=universe)


@dataclass(frozen=True)
class CoMovementGroup:
    """A maximal set of instruments that co-move frequently."""

    members: Tuple[Tuple[int, int], ...]  # (instrument, direction) pairs
    support: float

    def __len__(self) -> int:
        return len(self.members)

    def instruments(self) -> Tuple[int, ...]:
        return tuple(instrument for instrument, _ in self.members)


def co_movement_groups(
    price_table: Mapping[int, Sequence[float]],
    min_support: float,
    threshold: float = 0.0,
    signed: bool = False,
    miner: Optional[PincerSearch] = None,
) -> List[CoMovementGroup]:
    """Maximal co-moving instrument groups, largest first."""
    db = movements_database(price_table, threshold, signed)
    if len(db) == 0:
        return []
    result = (miner or PincerSearch()).mine(db, min_support)
    groups = []
    for member in result.mfs:
        if signed:
            decoded = tuple(decode_item(item) for item in member)
        else:
            decoded = tuple((item, UP) for item in member)
        groups.append(
            CoMovementGroup(
                members=decoded, support=result.support(member) or 0.0
            )
        )
    groups.sort(key=lambda group: (-len(group), group.members))
    return groups
