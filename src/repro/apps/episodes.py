"""Parallel-episode discovery in event sequences (paper application #3).

The paper lists episode discovery (Mannila–Toivonen, its reference [10])
among the problems built on frequent-set discovery and names it first in
its planned applications.  A *parallel episode* is a set of event types;
it occurs in a time window when every one of its event types does.  The
standard reduction (WINEPI): slide a window over the sequence, take each
window's set of event types as a transaction, and mine frequent itemsets —
the window-support of an episode is exactly the itemset support.  The
*maximal* frequent episodes are then the maximum frequent set, which is
where Pincer-Search comes in: sessions with long correlated event chains
produce long maximal episodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.itemset import Itemset
from ..core.pincer import PincerSearch
from ..db.transaction_db import TransactionDatabase


@dataclass(frozen=True)
class Event:
    """One timestamped event of the input sequence."""

    time: int
    event_type: int


@dataclass(frozen=True)
class Episode:
    """A discovered parallel episode with its window support."""

    event_types: Itemset
    support: float
    window_count: int

    def __len__(self) -> int:
        return len(self.event_types)


def sequence_to_events(event_types: Sequence[int]) -> List[Event]:
    """Adapt a plain list of event types to unit-spaced events.

    >>> sequence_to_events([7, 9])
    [Event(time=0, event_type=7), Event(time=1, event_type=9)]
    """
    return [
        Event(time=index, event_type=event_type)
        for index, event_type in enumerate(event_types)
    ]


def windows(events: Sequence[Event], width: int, step: int = 1) -> List[frozenset]:
    """Event-type sets of the sliding time windows ``[t, t + width)``.

    Windows slide over the *time* axis (not event indices), matching the
    WINEPI definition; empty windows are kept — they are part of the
    window count the support is normalised by.
    """
    if width < 1 or step < 1:
        raise ValueError("window width and step must be positive")
    if not events:
        return []
    ordered = sorted(events, key=lambda event: event.time)
    start_time = ordered[0].time - width + 1
    end_time = ordered[-1].time
    result: List[frozenset] = []
    position = 0
    active: List[Event] = []
    for start in range(start_time, end_time + 1, step):
        while position < len(ordered) and ordered[position].time < start + width:
            active.append(ordered[position])
            position += 1
        active = [event for event in active if event.time >= start]
        result.append(frozenset(event.event_type for event in active))
    return result


def windows_database(
    events: Sequence[Event], width: int, step: int = 1
) -> TransactionDatabase:
    """The WINEPI transaction database of an event sequence."""
    return TransactionDatabase(windows(events, width, step))


def mine_episodes(
    events: Sequence[Event],
    width: int,
    min_support: float,
    step: int = 1,
    miner: Optional[PincerSearch] = None,
) -> List[Episode]:
    """Maximal parallel episodes with window support ≥ ``min_support``.

    Returns episodes sorted longest-first (the interesting ones for the
    paper's argument), each carrying its exact window support.
    """
    db = windows_database(events, width, step)
    if len(db) == 0:
        return []
    mining = (miner or PincerSearch()).mine(db, min_support)
    episodes = [
        Episode(
            event_types=member,
            support=mining.support(member) or 0.0,
            window_count=mining.support_count(member) or 0,
        )
        for member in mining.mfs
    ]
    episodes.sort(key=lambda episode: (-len(episode), episode.event_types))
    return episodes


def episode_rules(
    events: Sequence[Event],
    width: int,
    min_support: float,
    min_confidence: float,
    step: int = 1,
) -> List[Tuple[Itemset, Itemset, float]]:
    """WINEPI-style rules "if these events occur, so do those".

    Returns ``(antecedent_types, consequent_types, confidence)`` triples
    derived from the maximal episodes via the MFS-first rule generator.
    """
    from ..rules.from_mfs import rules_from_mfs

    db = windows_database(events, width, step)
    if len(db) == 0:
        return []
    mining = PincerSearch().mine(db, min_support)
    rules = rules_from_mfs(db, mining, min_confidence=min_confidence, depth=2)
    return [
        (rule.antecedent, rule.consequent, rule.confidence) for rule in rules
    ]
