"""Applications the paper names: episodes, stock co-movement, minimal keys."""

from .episodes import (
    Episode,
    Event,
    episode_rules,
    mine_episodes,
    sequence_to_events,
    windows,
    windows_database,
)
from .keys import (
    Relation,
    candidate_key_report,
    maximal_non_keys,
    minimal_keys,
)
from .stocks import (
    DOWN,
    UP,
    CoMovementGroup,
    co_movement_groups,
    decode_item,
    movement_item,
    movements_database,
    returns_from_prices,
)

__all__ = [
    "DOWN",
    "UP",
    "CoMovementGroup",
    "Episode",
    "Event",
    "Relation",
    "candidate_key_report",
    "co_movement_groups",
    "decode_item",
    "episode_rules",
    "maximal_non_keys",
    "mine_episodes",
    "minimal_keys",
    "movement_item",
    "movements_database",
    "returns_from_prices",
    "sequence_to_events",
    "windows",
    "windows_database",
]
