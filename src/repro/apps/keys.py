"""Minimal-key discovery for relations (the paper's fourth application).

The paper's opening sentence lists "minimal keys" among the data mining
problems whose key component is frequent-set-style discovery (via
Mannila & Toivonen's levelwise framework, its reference [11]).  The
reduction:

* an attribute set ``X`` is a **key** of a relation iff no two rows agree
  on all attributes of ``X``;
* "is NOT a key" is anti-monotone (drop attributes and rows can only
  collide more), so the maximal non-keys are exactly the maximum
  "frequent" set of that predicate — discoverable by the pincer's two-way
  search (:mod:`repro.core.predicate`);
* the **minimal keys** are then the minimal transversals of the
  complements of the maximal non-keys: ``X`` is a key iff it intersects
  the complement of every maximal non-key (otherwise ``X`` would sit
  inside some maximal non-key).

For the relations this library targets (tens of attributes), the
transversal step uses a direct branch-and-bound.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from ..core.itemset import Itemset
from ..core.lattice import minimal_elements
from ..core.predicate import PredicatePincer


class Relation:
    """A named-column relation (list of equal-length rows).

    Attributes are addressed by index internally; ``column_names`` is
    kept only for presentation.
    """

    def __init__(
        self,
        rows: Iterable[Sequence[object]],
        column_names: Sequence[str] = (),
    ) -> None:
        self.rows: List[Tuple[object, ...]] = [tuple(row) for row in rows]
        widths = {len(row) for row in self.rows}
        if len(widths) > 1:
            raise ValueError("rows must all have the same arity")
        self.arity = widths.pop() if widths else len(column_names)
        if column_names and len(column_names) != self.arity:
            raise ValueError("column_names arity mismatch")
        self.column_names = list(column_names) or [
            "col%d" % index for index in range(self.arity)
        ]

    def __len__(self) -> int:
        return len(self.rows)

    def is_key(self, attributes: Iterable[int]) -> bool:
        """True iff the projection onto ``attributes`` has no duplicates.

        The empty attribute set is a key only for relations with at most
        one row.

        >>> r = Relation([(1, "a"), (1, "b")])
        >>> r.is_key([0]), r.is_key([1]), r.is_key([0, 1])
        (False, True, True)
        """
        wanted = tuple(sorted(set(attributes)))
        seen: Set[Tuple[object, ...]] = set()
        for row in self.rows:
            projection = tuple(row[index] for index in wanted)
            if projection in seen:
                return False
            seen.add(projection)
        return True

    def names(self, attributes: Iterable[int]) -> Tuple[str, ...]:
        """Column names of an attribute set, for presentation."""
        return tuple(self.column_names[index] for index in sorted(attributes))


def maximal_non_keys(relation: Relation) -> Set[Itemset]:
    """All maximal attribute sets that are NOT keys, via the pincer search.

    >>> r = Relation([(1, "a", "x"), (1, "b", "x"), (2, "a", "x")])
    >>> sorted(maximal_non_keys(r))
    [(0, 2), (1, 2)]
    """
    if len(relation.rows) <= 1 or relation.arity == 0:
        return set()
    miner = PredicatePincer(
        lambda attributes: not relation.is_key(attributes),
        check_antimonotone=False,  # holds by construction
    )
    result, _ = miner.mine(range(relation.arity))
    return result


def minimal_keys(relation: Relation) -> Set[Itemset]:
    """All minimal keys of the relation.

    ``X`` is a key iff it is not contained in any maximal non-key, i.e.
    iff it hits the complement of each of them; minimal keys are the
    minimal such hitting sets.

    >>> r = Relation([(1, "a", "x"), (1, "b", "x"), (2, "a", "x")])
    >>> sorted(minimal_keys(r))
    [(0, 1)]
    """
    universe = tuple(range(relation.arity))
    if len(relation.rows) <= 1:
        return {()} if relation.arity >= 0 else set()
    non_keys = maximal_non_keys(relation)
    if not non_keys:
        # every single attribute is already a key (or arity is 0)
        if relation.arity == 0:
            return set()
        return {(index,) for index in universe}
    complements = [
        tuple(sorted(set(universe) - set(non_key))) for non_key in non_keys
    ]
    if any(not complement for complement in complements):
        return set()  # the full attribute set is not a key: no keys exist
    transversals = _minimal_transversals(complements, universe)
    return {transversal for transversal in transversals}


def _minimal_transversals(
    families: List[Itemset], universe: Itemset
) -> Set[Itemset]:
    """Minimal hitting sets of ``families`` by incremental expansion.

    Classic Berge-style algorithm: fold the families in one at a time,
    keeping the family of partial transversals minimal after each step.
    Exponential in the worst case; relations with dozens of attributes
    are fine.
    """
    partial: Set[Itemset] = {()}
    for family in families:
        expanded: Set[Itemset] = set()
        for transversal in partial:
            if any(item in family for item in transversal):
                expanded.add(transversal)
                continue
            for item in family:
                grown = tuple(sorted(set(transversal) | {item}))
                expanded.add(grown)
        partial = set(minimal_elements(expanded))
    return partial


def candidate_key_report(relation: Relation) -> str:
    """Human-readable summary used by examples and the CLI."""
    keys = sorted(minimal_keys(relation), key=lambda key: (len(key), key))
    lines = [
        "%d rows, %d attributes, %d minimal key(s):"
        % (len(relation), relation.arity, len(keys))
    ]
    for key in keys:
        lines.append("  (%s)" % ", ".join(relation.names(key)))
    return "\n".join(lines)
