"""``pincer obs top`` — live operator console over a telemetry segment.

Attach to a running mine by the segment name the engine logged (or the
one pinned with ``pincer mine --telemetry NAME``) and watch, refreshed
in place with ANSI escapes:

* one row per shard worker: state, per-shard candidate throughput bar,
  cumulative candidates/rows, RSS, heartbeat age;
* the coordinator line: current pass, batch size, aggregate rate;
* the candidate-bound ETA — the Geerts–Goethals–Van den Bussche bound
  published by the miner divided by the observed aggregate rate is a
  provable upper bound on the next pass's counting time.

The console is read-only and lock-free (seqlock snapshots); attaching,
detaching, or killing it cannot perturb the mine.  ``--frames N`` caps
the refresh count (``--frames 1`` prints one plain frame and exits —
scripts and tests use this), ``--no-ansi`` disables cursor control for
dumb terminals and log capture.

``--serve SOCKET`` additionally (or instead) polls a running ``pincer
serve`` daemon's ``stats`` op each frame and renders the query plane:
windowed qps and p50/p95/p99 latency, rejection and cache-hit rates,
in-flight cost against the admission budget, and the daemon vitals the
``stats`` op carries.  With both a segment name and ``--serve``, the
serve panel renders above the worker rows.

Run as a module::

    python -m repro.obs.top pincer-live --interval 0.5
    python -m repro.obs.top --serve /tmp/pincer.sock --frames 1 --no-ansi
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional

from .telemetry import (
    STATE_COUNTING,
    STATE_STEALING,
    HeartbeatRecord,
    TelemetryReader,
)

__all__ = ["TopConsole", "format_frame", "format_serve_frame", "main"]

_BAR_WIDTH = 16
_ANSI_HOME = "\x1b[H"
_ANSI_CLEAR = "\x1b[2J"
_ANSI_ERASE_LINE = "\x1b[K"


def _human_rate(rate: float) -> str:
    if rate >= 1e6:
        return "%.1fM/s" % (rate / 1e6)
    if rate >= 1e3:
        return "%.1fk/s" % (rate / 1e3)
    return "%.0f/s" % rate


def _human_kb(kb: int) -> str:
    if kb >= 1 << 20:
        return "%.1fGB" % (kb / float(1 << 20))
    if kb >= 1 << 10:
        return "%.1fMB" % (kb / float(1 << 10))
    return "%dkB" % kb


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


class TopConsole:
    """Stateful frame renderer: keeps per-slot samples to derive rates."""

    def __init__(self, reader: TelemetryReader) -> None:
        self._reader = reader
        # slot -> (mono_ts, candidates_done, rows_done)
        self._prev: Dict[int, tuple] = {}

    def sample(self, now: Optional[float] = None) -> Dict[str, Any]:
        """One snapshot of every slot plus derived per-shard rates."""
        if now is None:
            now = time.monotonic()
        coordinator = self._reader.coordinator()
        workers = self._reader.workers()
        rates: List[float] = []
        for record in workers:
            rate = 0.0
            if record is not None:
                previous = self._prev.get(record.slot)
                if previous is not None:
                    prev_ts, prev_candidates, _ = previous
                    dt = record.mono_ts - prev_ts
                    if dt > 0:
                        rate = (record.candidates_done - prev_candidates) / dt
                self._prev[record.slot] = (
                    record.mono_ts, record.candidates_done, record.rows_done
                )
            rates.append(rate)
        return {
            "now": now,
            "coordinator": coordinator,
            "workers": workers,
            "rates": rates,
        }

    def render(self, name: str, now: Optional[float] = None) -> str:
        return format_frame(name, self.sample(now))


def format_frame(name: str, sample: Dict[str, Any]) -> str:
    """Render one sample into the multi-line console frame."""
    now = sample["now"]
    coordinator: Optional[HeartbeatRecord] = sample["coordinator"]
    workers: List[Optional[HeartbeatRecord]] = sample["workers"]
    rates: List[float] = sample["rates"]
    lines: List[str] = []
    published = [record for record in workers if record is not None]
    lines.append(
        "pincer top — segment %s — %d/%d workers publishing"
        % (name, len(published), len(workers))
    )
    aggregate = sum(rates)
    if coordinator is not None:
        done = sum(record.candidates_done for record in published)
        total = coordinator.candidates_total or 0
        progress = ""
        if total:
            # candidates_done is cumulative across passes; clamp the
            # in-pass view to the batch size
            in_pass = min(total, max(0, done - coordinator.candidates_done))
            progress = "  batch %d/%d" % (in_pass, total)
        eta = ""
        if coordinator.bound and aggregate > 0:
            eta = "  next pass <= %.2fs (bound %d)" % (
                coordinator.bound / aggregate, coordinator.bound
            )
        lines.append(
            "pass %d  state %s%s  agg %s%s"
            % (
                coordinator.pass_no,
                coordinator.state_name,
                progress,
                _human_rate(aggregate),
                eta,
            )
        )
    else:
        lines.append("coordinator: (no heartbeat yet)")
    peak = max(rates) if any(rates) else 0.0
    for worker_id, record in enumerate(workers):
        if record is None:
            lines.append("  w%-2d (no heartbeat)" % worker_id)
            continue
        rate = rates[worker_id]
        busy = record.state in (STATE_COUNTING, STATE_STEALING)
        bar = _bar(rate / peak if peak > 0 else (1.0 if busy else 0.0))
        lines.append(
            "  w%-2d %-8s |%s| %9s  cand %-9d rows %-9d rss %-8s age %5.1fs"
            % (
                worker_id,
                record.state_name,
                bar,
                _human_rate(rate),
                record.candidates_done,
                record.rows_done,
                _human_kb(record.rss_kb),
                record.age(now),
            )
        )
    return "\n".join(lines)


def _human_ms(seconds: Any) -> str:
    if not isinstance(seconds, (int, float)):
        return "-"
    if seconds >= 1.0:
        return "%.2fs" % seconds
    return "%.1fms" % (seconds * 1000.0)


def format_serve_frame(socket_path: str, stats: Dict[str, Any]) -> str:
    """Render one ``stats`` reply from a serve daemon as a panel."""
    if not stats.get("ok"):
        return "pincer serve — %s — no stats (%s)" % (
            socket_path, stats.get("error", "unreachable")
        )
    vitals = stats.get("vitals", {})
    slo = stats.get("slo") or {}
    latency = slo.get("latency", {})
    lines = [
        "pincer serve — %s — pid %s — engine %s — up %.0fs"
        % (
            socket_path,
            vitals.get("pid", "?"),
            vitals.get("engine", "?"),
            vitals.get("uptime_seconds", 0.0),
        ),
        "  snapshot %s  served %s  rejected %s"
        % (
            vitals.get("snapshot", "?"),
            stats.get("served", 0),
            stats.get("rejected", 0),
        ),
    ]
    if slo:
        lines.append(
            "  window %ds: qps %.2f  p50 %s  p95 %s  p99 %s"
            % (
                int(slo.get("window_seconds", 0)),
                slo.get("qps", 0.0),
                _human_ms(latency.get("p50")),
                _human_ms(latency.get("p95")),
                _human_ms(latency.get("p99")),
            )
        )
        lines.append(
            "  reject %.1f%%  cache hit %.1f%%  errors %d"
            % (
                100.0 * slo.get("rejection_rate", 0.0),
                100.0 * slo.get("cache_hit_rate", 0.0),
                slo.get("errors", 0),
            )
        )
    budget = vitals.get("cost_budget") or 0
    inflight = vitals.get("inflight_cost", 0)
    rate = vitals.get("counting_rate")
    lines.append(
        "  inflight %s queries / %s cost |%s| budget %s  rate %s"
        % (
            vitals.get("inflight_queries", 0),
            inflight,
            _bar(inflight / budget if budget else 0.0),
            budget,
            _human_rate(rate) if isinstance(rate, (int, float)) else "(uncal)",
        )
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.top`` / ``pincer obs top`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="pincer obs top",
        description="live per-shard console over a telemetry segment "
        "and/or a serve daemon",
    )
    parser.add_argument(
        "name",
        nargs="?",
        default=None,
        help="telemetry segment name (logged by the engine, or pinned "
        "with --telemetry NAME)",
    )
    parser.add_argument(
        "--serve", default=None, metavar="SOCKET",
        help="also poll a 'pincer serve' daemon's stats op and render "
        "its query plane (qps, windowed latency, inflight cost)",
    )
    parser.add_argument(
        "--plane", choices=("shm", "file"), default=None,
        help="segment backing plane (default: probe shm, then file)",
    )
    parser.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="refresh interval (default: 0.5)",
    )
    parser.add_argument(
        "--frames", type=int, default=0, metavar="N",
        help="stop after N frames (0 = until interrupted or the segment "
        "disappears; 1 = print a single frame and exit)",
    )
    parser.add_argument(
        "--no-ansi", action="store_true",
        help="plain frames, no cursor control (logs, dumb terminals)",
    )
    args = parser.parse_args(argv)
    if args.name is None and args.serve is None:
        parser.error("give a telemetry segment name and/or --serve SOCKET")
    reader = None
    console = None
    if args.name is not None:
        try:
            reader = TelemetryReader.attach(args.name, plane=args.plane)
        except (FileNotFoundError, OSError, ValueError) as exc:
            sys.stderr.write(
                "pincer obs top: cannot attach %r: %s\n" % (args.name, exc)
            )
            return 1
        console = TopConsole(reader)

    def serve_panel() -> str:
        from ..serve import request as serve_request

        try:
            stats = serve_request(args.serve, {"op": "stats"}, timeout=5.0)
        except (OSError, ValueError) as exc:
            stats = {"ok": False, "error": str(exc)}
        return format_serve_frame(args.serve, stats)

    use_ansi = not args.no_ansi and args.frames != 1 and sys.stdout.isatty()
    frame = 0
    try:
        if use_ansi:
            sys.stdout.write(_ANSI_CLEAR)
        while True:
            frame += 1
            parts: List[str] = []
            if args.serve is not None:
                parts.append(serve_panel())
            if console is not None:
                parts.append(console.render(args.name))
            rendered = "\n".join(parts)
            if use_ansi:
                rendered = _ANSI_HOME + rendered.replace(
                    "\n", _ANSI_ERASE_LINE + "\n"
                ) + _ANSI_ERASE_LINE
            sys.stdout.write(rendered + "\n")
            sys.stdout.flush()
            if args.frames and frame >= args.frames:
                break
            time.sleep(max(0.05, args.interval))
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        if reader is not None:
            reader.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
