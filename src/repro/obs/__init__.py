"""``repro.obs`` — tracing, metrics, and structured run-logging.

Zero-dependency observability for the miners and counting engines:

* :mod:`repro.obs.tracing` — nestable wall-clock spans emitted as JSONL
  (``run > pass > {count, prune, mfcs_gen, generate, recover}``);
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry the
  engines and miners write into;
* :mod:`repro.obs.logsetup` — the stdlib ``repro`` logger hierarchy and
  the ``--log-level`` configuration hook;
* :mod:`repro.obs.schema` — the versioned event schema plus validators
  (also a CLI: ``python -m repro.obs.schema run.jsonl``);
* :mod:`repro.obs.instrument` — the :class:`Instrumentation` bundle and
  the shared disabled :data:`NOOP` instance.

Everything is off by default and near-zero-cost when disabled; see
DESIGN.md's "Observability" section for the span hierarchy and the event
schema, and README.md for a worked ``--trace`` session.
"""

from .instrument import Instrumentation, NOOP, capture
from .logsetup import ROOT_LOGGER_NAME, configure_logging, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NullRegistry,
)
from .schema import (
    SCHEMA_VERSION,
    SchemaError,
    validate_metrics_document,
    validate_metrics_file,
    validate_stats_document,
    validate_trace_event,
    validate_trace_file,
    validate_trace_lines,
)
from .tracing import NOOP_SPAN, NOOP_TRACER, NoopSpan, NoopTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "NOOP",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "NULL_INSTRUMENT",
    "NoopSpan",
    "NoopTracer",
    "NullRegistry",
    "ROOT_LOGGER_NAME",
    "SCHEMA_VERSION",
    "SchemaError",
    "Span",
    "Tracer",
    "capture",
    "configure_logging",
    "get_logger",
    "validate_metrics_document",
    "validate_metrics_file",
    "validate_stats_document",
    "validate_trace_event",
    "validate_trace_file",
    "validate_trace_lines",
]
