"""``repro.obs`` — tracing, metrics, and structured run-logging.

Zero-dependency observability for the miners and counting engines:

* :mod:`repro.obs.tracing` — nestable wall-clock spans emitted as JSONL
  (``run > pass > {count, prune, mfcs_gen, generate, recover}``);
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry the
  engines and miners write into;
* :mod:`repro.obs.logsetup` — the stdlib ``repro`` logger hierarchy and
  the ``--log-level`` configuration hook;
* :mod:`repro.obs.schema` — the versioned event schema plus validators
  (also a CLI: ``python -m repro.obs.schema run.jsonl``);
* :mod:`repro.obs.instrument` — the :class:`Instrumentation` bundle and
  the shared disabled :data:`NOOP` instance;
* :mod:`repro.obs.resources` — per-span CPU/memory attribution
  (``--profile``) and the folded-stack sampling profiler;
* :mod:`repro.obs.progress` — the per-pass heartbeat reporter
  (``--progress``) with the candidate-upper-bound ETA;
* :mod:`repro.obs.export` — Chrome/Perfetto trace and Prometheus text
  exporters (``python -m repro.obs.export``);
* :mod:`repro.obs.report` — the indented span-tree trace report
  (``python -m repro.obs.report``);
* :mod:`repro.obs.telemetry` — the live shared-memory heartbeat plane
  (``--telemetry``): seqlock heartbeat slots published by shard workers,
  plus the reader/collector side the engines poll mid-pass;
* :mod:`repro.obs.watchdog` — the stall watchdog that turns silent
  heartbeats into ``shard_stalled`` events and mid-pass reassignment;
* :mod:`repro.obs.top` — the ``pincer obs top`` live operator console
  over a telemetry segment and/or a serve daemon (``--serve SOCKET``);
* :mod:`repro.obs.requestlog` — the query plane's JSONL access log
  (schema v4 ``request`` records) and the bounded slow-query snapshot
  ring ``pincer serve --access-log`` writes;
* :mod:`repro.obs.slo` — the rolling-window SLO ring (windowed
  p50/p95/p99 latency, QPS, rejection/cache-hit rates) behind the
  serve ``metrics`` wire op.

Everything is off by default and near-zero-cost when disabled; see
DESIGN.md's "Observability" section for the span hierarchy and the event
schema, and README.md for a worked ``--trace`` session.
"""

from .export import load_trace_events, metrics_to_prometheus, trace_to_perfetto
from .instrument import Instrumentation, NOOP, capture
from .logsetup import ROOT_LOGGER_NAME, configure_logging, get_logger
from .progress import NOOP_PROGRESS, NoopProgress, ProgressReporter
from .resources import SamplingProfiler, SpanProfiler, rusage_snapshot
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NullRegistry,
)
from .requestlog import RequestLog, SlowQueryRing
from .schema import (
    SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
    SchemaError,
    validate_metrics_document,
    validate_metrics_file,
    validate_request_log_file,
    validate_request_log_lines,
    validate_request_record,
    validate_stats_document,
    validate_trace_event,
    validate_trace_file,
    validate_trace_lines,
)
from .slo import SloWindow
from .telemetry import (
    EngineTelemetry,
    HeartbeatRecord,
    TelemetryCollector,
    TelemetryConfig,
    TelemetryReader,
    TelemetrySegment,
    TelemetryWriter,
)
from .tracing import NOOP_SPAN, NOOP_TRACER, NoopSpan, NoopTracer, Span, Tracer
from .watchdog import StallEvent, StallWatchdog

__all__ = [
    "Counter",
    "EngineTelemetry",
    "Gauge",
    "HeartbeatRecord",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "NOOP",
    "NOOP_PROGRESS",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "NULL_INSTRUMENT",
    "NoopProgress",
    "NoopSpan",
    "NoopTracer",
    "NullRegistry",
    "ProgressReporter",
    "ROOT_LOGGER_NAME",
    "RequestLog",
    "SCHEMA_VERSION",
    "SUPPORTED_VERSIONS",
    "SamplingProfiler",
    "SchemaError",
    "SloWindow",
    "SlowQueryRing",
    "Span",
    "SpanProfiler",
    "StallEvent",
    "StallWatchdog",
    "TelemetryCollector",
    "TelemetryConfig",
    "TelemetryReader",
    "TelemetrySegment",
    "TelemetryWriter",
    "Tracer",
    "capture",
    "configure_logging",
    "get_logger",
    "load_trace_events",
    "metrics_to_prometheus",
    "rusage_snapshot",
    "trace_to_perfetto",
    "validate_metrics_document",
    "validate_metrics_file",
    "validate_request_log_file",
    "validate_request_log_lines",
    "validate_request_record",
    "validate_stats_document",
    "validate_trace_event",
    "validate_trace_file",
    "validate_trace_lines",
]
