"""Per-span resource attribution and a sampling stack profiler.

Two independent tools make the trace a *flight recorder* rather than a
stopwatch:

* :class:`SpanProfiler` — attached to a :class:`~repro.obs.tracing.Tracer`
  (``capture(..., profile=True)`` or ``--profile``), it stamps every span
  with ``cpu_s`` (process CPU via :func:`time.process_time`, inclusive of
  children, like the wall-clock ``dur``) and — when :mod:`tracemalloc` is
  tracing — ``mem_peak_kb``, the peak Python heap growth over the span's
  lifetime relative to its entry point.  Peaks are nest-aware: a child's
  absolute peak is propagated into its parent frame, so a parent's
  ``mem_peak_kb`` is never smaller than the growth any child observed.
* :class:`SamplingProfiler` — a daemon thread that samples the target
  thread's Python stack at a fixed interval and aggregates *folded
  stacks* (``outer;inner;leaf count`` lines, the input format of every
  flamegraph renderer).  It is wall-clock sampling: blocked time shows up
  too, which is exactly what a "where did the run go" question wants.

Both are strictly opt-in.  The span profiler costs two clock reads plus
(under tracemalloc) two allocation-counter reads per span; nothing here
runs when profiling is off, so the disabled-overhead budget of
:mod:`repro.bench.obs_overhead` is untouched.

:func:`rusage_snapshot` is the shared OS-level accounting helper: the
sharded engine's workers use it to report their own CPU time and high-water
RSS over the result channel (see :mod:`repro.db.parallel`).
"""

from __future__ import annotations

import sys
import threading
import time
import tracemalloc
from typing import Any, Dict, List, Optional

try:  # Unix only; the snapshot degrades gracefully elsewhere
    import resource as _resource
except ImportError:  # pragma: no cover - non-Unix platforms
    _resource = None

__all__ = [
    "SamplingProfiler",
    "SpanProfiler",
    "fold_stack",
    "rusage_snapshot",
]


def rusage_snapshot() -> Dict[str, float]:
    """OS resource accounting for the calling process.

    Returns ``{"cpu_user_s", "cpu_system_s", "maxrss_kb"}``; all zeros
    when the platform has no :mod:`resource` module.  ``ru_maxrss`` is
    kilobytes on Linux and bytes on macOS — normalised to kB here.
    """
    if _resource is None:  # pragma: no cover - non-Unix platforms
        return {"cpu_user_s": 0.0, "cpu_system_s": 0.0, "maxrss_kb": 0.0}
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    maxrss_kb = float(usage.ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        maxrss_kb /= 1024.0
    return {
        "cpu_user_s": usage.ru_utime,
        "cpu_system_s": usage.ru_stime,
        "maxrss_kb": maxrss_kb,
    }


class _Frame:
    """One open profiled span: entry clocks plus the running peak."""

    __slots__ = ("cpu_start", "mem_start", "mem_peak")

    def __init__(self, cpu_start: float, mem_start: int) -> None:
        self.cpu_start = cpu_start
        self.mem_start = mem_start
        # absolute tracemalloc peak observed while this frame was open
        # (children propagate theirs upward on close)
        self.mem_peak = mem_start


class SpanProfiler:
    """Per-span CPU and memory deltas, attached to span attrs.

    Designed to be driven by the tracer: :meth:`begin` when a span opens,
    :meth:`end` (returning the attrs to attach) when it closes.  Frames
    form a stack parallel to the tracer's span stack; like the tracer,
    :meth:`end` tolerates out-of-order closes from exception unwinding.

    Parameters
    ----------
    trace_memory:
        When True (default), :meth:`install` starts :mod:`tracemalloc` if
        nobody else has, and spans gain ``mem_peak_kb``.  When False only
        CPU is attributed — tracemalloc costs real time (every allocation
        is intercepted), so memory attribution is separable.
    """

    def __init__(self, trace_memory: bool = True) -> None:
        self.trace_memory = trace_memory
        self._frames: List[_Frame] = []
        self._started_tracemalloc = False

    # ------------------------------------------------------------------

    def install(self) -> "SpanProfiler":
        """Start tracemalloc if memory attribution is on and it isn't."""
        if self.trace_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        return self

    def uninstall(self) -> None:
        """Stop tracemalloc iff :meth:`install` started it."""
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracemalloc = False

    @property
    def memory_active(self) -> bool:
        return self.trace_memory and tracemalloc.is_tracing()

    # ------------------------------------------------------------------

    def begin(self) -> _Frame:
        """Open a profiling frame for a span that just started."""
        if self.memory_active:
            current, _ = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
        else:
            current = 0
        frame = _Frame(time.process_time(), current)
        self._frames.append(frame)
        return frame

    def end(self, frame: _Frame) -> Dict[str, float]:
        """Close ``frame``; returns the attrs to stamp onto the span."""
        attrs: Dict[str, float] = {
            "cpu_s": max(0.0, time.process_time() - frame.cpu_start)
        }
        memory = self.memory_active
        if memory:
            _, peak = tracemalloc.get_traced_memory()
            frame.mem_peak = max(frame.mem_peak, peak)
            attrs["mem_peak_kb"] = round(
                max(0, frame.mem_peak - frame.mem_start) / 1024.0, 3
            )
            tracemalloc.reset_peak()
        # pop this frame (and any orphans exception unwinding left above
        # it), then propagate the absolute peak into the parent so its
        # window covers everything its children saw
        while self._frames and self._frames[-1] is not frame:
            self._frames.pop()
        if self._frames:
            self._frames.pop()
        if memory and self._frames:
            parent = self._frames[-1]
            parent.mem_peak = max(parent.mem_peak, frame.mem_peak)
        return attrs


# ----------------------------------------------------------------------
# sampling profiler (folded stacks)
# ----------------------------------------------------------------------


def fold_stack(frame: Any) -> str:
    """Render a frame chain as a ``;``-joined folded stack (root first)."""
    parts: List[str] = []
    while frame is not None:
        code = frame.f_code
        parts.append("%s:%s" % (code.co_filename.rsplit("/", 1)[-1], code.co_name))
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Background thread sampling one thread's Python stack.

    Aggregates identical stacks into a counter; :meth:`write` emits the
    classic folded-stack text (one ``stack count`` line per distinct
    stack, sorted by count descending) that ``flamegraph.pl``, speedscope
    and Perfetto's flamegraph importers all accept.

    Parameters
    ----------
    interval:
        Seconds between samples (default 5 ms — coarse enough to stay
        under ~1% overhead on CPython, fine enough for pass-level
        attribution).
    thread_id:
        The :func:`threading.get_ident` of the thread to sample; defaults
        to the caller's thread (construct the profiler on the thread you
        want profiled, then :meth:`start`).
    """

    def __init__(
        self, interval: float = 0.005, thread_id: Optional[int] = None
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.thread_id = (
            thread_id if thread_id is not None else threading.get_ident()
        )
        self.samples: Dict[str, int] = {}
        self.total_samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("sampling profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampling-profiler", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample_once()

    def _sample_once(self) -> None:
        frame = sys._current_frames().get(self.thread_id)
        if frame is None:
            return
        stack = fold_stack(frame)
        self.samples[stack] = self.samples.get(stack, 0) + 1
        self.total_samples += 1

    def stop(self) -> "SamplingProfiler":
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=2.0)
            self._thread = None
        return self

    # ------------------------------------------------------------------

    def folded_lines(self) -> List[str]:
        """The aggregated ``stack count`` lines, hottest first."""
        return [
            "%s %d" % (stack, count)
            for stack, count in sorted(
                self.samples.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.folded_lines():
                handle.write(line + "\n")

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
