"""Versioned schemas for trace events, metrics documents, and stats dumps.

Everything the observability subsystem writes to disk is JSON with an
explicit schema version (the ``"v"`` field), so traces recorded today can
be read by tomorrow's tooling — and so CI can mechanically reject a run
that emits a malformed line.  The validators here are deliberately
zero-dependency (no ``jsonschema``): each one is a plain function that
raises :class:`SchemaError` with a precise message on the first violation.

Four document families share the version number :data:`SCHEMA_VERSION`:

``span`` / ``meta`` events (one JSON object per line of a ``--trace`` file)
    A *trace* is a JSONL stream.  The first line is a ``meta`` event
    naming the schema version and the process that produced the stream;
    every following line is a ``span`` event, emitted when the span
    *closes* (children therefore precede their parents in the file, as in
    most span logs).  Fields of a ``span`` event:

    ============  ======================================================
    ``v``         schema version (int, in :data:`SUPPORTED_VERSIONS`)
    ``type``      ``"span"``
    ``span``      span id, unique within the trace (int, > 0)
    ``parent``    id of the enclosing span, or None for a root span
    ``name``      span name (``run``, ``pass``, ``count``, ``mfcs_gen``,
                  ``generate``, ``recover``, ``prune``, ...)
    ``ts``        wall-clock start time (``time.time()``, float seconds)
    ``dur``       duration in float seconds (>= 0)
    ``attrs``     flat mapping of str -> scalar (str/int/float/bool/None)
    ============  ======================================================

    Schema v2 adds two optional event types: ``progress`` (heartbeat
    lines from :mod:`repro.obs.progress` — ``ts``, a ``phase`` string,
    and flat scalar fields) and ``truncated`` (the single end-of-trace
    marker a size-capped tracer emits instead of growing unboundedly;
    carries the ``dropped`` event count).

    Schema v3 adds the live telemetry plane's event types: ``telemetry``
    (a mid-pass aggregate mirrored from the shared heartbeat segment by
    the collector — ``ts``, a ``workers`` int, and flat scalar fields)
    and ``shard_stalled`` (the watchdog's structured stall record —
    ``ts``, the ``shard`` index, a ``kind`` of ``"dead"`` or
    ``"wedged"``, and the observed ``age_s``).

``metrics`` documents (the ``--metrics-out`` file)
    A single JSON object::

        {"v": 2, "type": "metrics",
         "counters":   {name: int},
         "gauges":     {name: number},
         "histograms": {name: {"count": int, "total": number,
                               "min": number, "max": number,
                               "sumsq": number, "stddev": number}}}

    v1 histograms lack ``sumsq``/``stddev``; the validator accepts both.

``stats`` documents (:meth:`repro.core.stats.MiningStats.to_dict`)
    The per-run accounting the figures are built from, round-trippable
    via ``MiningStats.from_dict``.

``request`` records (schema v4, one JSONL line per served query)
    The access log :mod:`repro.obs.requestlog` writes for the query
    plane of ``pincer serve``.  Required fields: ``v``, ``type``
    (``"request"``), ``ts``, ``id`` (the wire request id), ``op``
    (``"mine"`` or ``"rules"``), ``ok``, ``admitted`` (bools), and
    ``seconds``.  Optional typed fields cover the admission price
    (``cost``, ``warm``, ``threshold``), queueing (``queue_wait_s``),
    work done (``passes``, ``cache_hits``, ``cache_misses``,
    ``result_size``), the ETA quoted to the client (``eta_s``, nullable
    until the rate estimator calibrates), and ``error``.  All values
    must be flat scalars — one query, one line, greppable forever.

Run as a module to validate files (the CI observability smoke job)::

    python -m repro.obs.schema run.jsonl --metrics m.json \
        --requests access.jsonl
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

#: Version stamped into every emitted document.  v2 added the flight
#: recorder: ``progress`` and ``truncated`` trace-event types, profiler
#: span attrs (``cpu_s``/``mem_peak_kb``), and histogram ``sumsq`` /
#: ``stddev`` fields in metrics documents.  v3 added the live telemetry
#: plane: ``telemetry`` and ``shard_stalled`` trace-event types and
#: histogram ``p50``/``p95``/``p99`` reservoir percentiles in metrics
#: documents.  v4 added the query plane: ``request`` access-log records
#: and the ``request_id`` span attribute serve queries are grouped by.
SCHEMA_VERSION = 4

#: Versions the validators accept: traces recorded by earlier releases
#: must keep validating (backward compatibility is the point of the
#: version field).
SUPPORTED_VERSIONS = (1, 2, 3, 4)

#: The ``kind`` values a ``shard_stalled`` event may carry: a worker
#: whose process is gone versus one that is alive but no longer beating.
STALL_KINDS = ("dead", "wedged")

#: Span names the instrumented miners emit; traces may add new names
#: freely (the validator only checks the *shape*), this list is the
#: documented vocabulary for trace readers.
KNOWN_SPAN_NAMES = (
    "run",
    "pass",
    "count",
    "prune",
    "mfcs_gen",
    "generate",
    "recover",
    "sweep",
    "partition",
    "cell",
    "command",
)

_SCALAR_TYPES = (str, int, float, bool, type(None))


class SchemaError(ValueError):
    """A document does not conform to its declared schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _require_version(document: Dict[str, Any], what: str) -> None:
    _require(isinstance(document, dict), "%s must be a JSON object" % what)
    version = document.get("v")
    _require(
        version in SUPPORTED_VERSIONS,
        "%s has schema version %r, expected one of %s"
        % (what, version, list(SUPPORTED_VERSIONS)),
    )


def _require_scalar_attrs(attrs: Any, what: str) -> None:
    _require(isinstance(attrs, dict), "%s attrs must be an object" % what)
    for key, value in attrs.items():
        _require(isinstance(key, str), "%s attr key %r must be str" % (what, key))
        _require(
            isinstance(value, _SCALAR_TYPES),
            "%s attr %r must be a scalar, got %s" % (what, key, type(value).__name__),
        )


def validate_trace_event(event: Dict[str, Any]) -> None:
    """Validate one line of a trace stream; raises :class:`SchemaError`."""
    _require_version(event, "trace event")
    kind = event.get("type")
    if kind == "meta":
        _require(isinstance(event.get("ts"), (int, float)), "meta ts must be a number")
        _require(isinstance(event.get("pid"), int), "meta pid must be an int")
        _require(isinstance(event.get("producer"), str), "meta producer must be str")
        return
    if kind == "progress":
        _require(
            isinstance(event.get("ts"), (int, float)),
            "progress ts must be a number",
        )
        _require(
            isinstance(event.get("phase"), str) and bool(event["phase"]),
            "progress phase must be a non-empty str",
        )
        _require_scalar_attrs(
            {k: v for k, v in event.items() if k not in ("v", "type")},
            "progress",
        )
        return
    if kind == "truncated":
        _require(
            isinstance(event.get("ts"), (int, float)),
            "truncated ts must be a number",
        )
        _require(
            isinstance(event.get("dropped"), int) and event["dropped"] > 0,
            "truncated dropped must be a positive int",
        )
        return
    if kind == "telemetry":
        _require(
            isinstance(event.get("ts"), (int, float)),
            "telemetry ts must be a number",
        )
        _require(
            isinstance(event.get("workers"), int) and event["workers"] >= 0,
            "telemetry workers must be an int >= 0",
        )
        _require_scalar_attrs(
            {k: v for k, v in event.items() if k not in ("v", "type")},
            "telemetry",
        )
        return
    if kind == "shard_stalled":
        _require(
            isinstance(event.get("ts"), (int, float)),
            "shard_stalled ts must be a number",
        )
        _require(
            isinstance(event.get("shard"), int) and event["shard"] >= 0,
            "shard_stalled shard must be an int >= 0",
        )
        _require(
            event.get("kind") in STALL_KINDS,
            "shard_stalled kind must be one of %s" % (list(STALL_KINDS),),
        )
        _require(
            isinstance(event.get("age_s"), (int, float))
            and event["age_s"] >= 0,
            "shard_stalled age_s must be a number >= 0",
        )
        _require_scalar_attrs(
            {k: v for k, v in event.items() if k not in ("v", "type")},
            "shard_stalled",
        )
        return
    _require(
        kind == "span",
        "trace event type must be 'span', 'meta', 'progress', 'truncated', "
        "'telemetry' or 'shard_stalled', got %r" % kind,
    )
    _require(
        isinstance(event.get("span"), int) and event["span"] > 0,
        "span id must be a positive int",
    )
    parent = event.get("parent")
    _require(
        parent is None or (isinstance(parent, int) and parent > 0),
        "span parent must be a positive int or null",
    )
    name = event.get("name")
    _require(isinstance(name, str) and bool(name), "span name must be a non-empty str")
    _require(isinstance(event.get("ts"), (int, float)), "span ts must be a number")
    dur = event.get("dur")
    _require(isinstance(dur, (int, float)) and dur >= 0, "span dur must be >= 0")
    _require_scalar_attrs(event.get("attrs", {}), "span")


def validate_metrics_document(document: Dict[str, Any]) -> None:
    """Validate a ``--metrics-out`` JSON document."""
    _require_version(document, "metrics document")
    _require(
        document.get("type") == "metrics",
        "metrics document type must be 'metrics', got %r" % document.get("type"),
    )
    counters = document.get("counters", {})
    _require(isinstance(counters, dict), "counters must be an object")
    for name, value in counters.items():
        _require(
            isinstance(name, str) and isinstance(value, int),
            "counter %r must map str -> int" % (name,),
        )
    gauges = document.get("gauges", {})
    _require(isinstance(gauges, dict), "gauges must be an object")
    for name, value in gauges.items():
        _require(
            isinstance(name, str) and isinstance(value, (int, float)),
            "gauge %r must map str -> number" % (name,),
        )
    histograms = document.get("histograms", {})
    _require(isinstance(histograms, dict), "histograms must be an object")
    # v1 histograms predate the sum-of-squares summary; v2 must carry it
    spread_keys = ("sumsq", "stddev") if document["v"] >= 2 else ()
    for name, cells in histograms.items():
        _require(isinstance(cells, dict), "histogram %r must be an object" % name)
        _require(
            isinstance(cells.get("count"), int) and cells["count"] >= 0,
            "histogram %r count must be an int >= 0" % name,
        )
        for key in ("total", "min", "max") + spread_keys:
            _require(
                isinstance(cells.get(key), (int, float)),
                "histogram %r %s must be a number" % (name, key),
            )
        # v3 percentiles (reservoir estimates) are additive: required to
        # be numeric when present, permitted to be absent (a merged or
        # hand-built document may carry summaries only)
        for key in ("p50", "p95", "p99"):
            if key in cells:
                _require(
                    isinstance(cells[key], (int, float)),
                    "histogram %r %s must be a number" % (name, key),
                )


def validate_stats_document(document: Dict[str, Any]) -> None:
    """Validate a :meth:`MiningStats.to_dict` dump."""
    _require_version(document, "stats document")
    _require(
        document.get("type") == "mining_stats",
        "stats document type must be 'mining_stats'",
    )
    _require(isinstance(document.get("algorithm"), str), "algorithm must be str")
    _require(
        isinstance(document.get("seconds"), (int, float)),
        "seconds must be a number",
    )
    _require(
        isinstance(document.get("records_read"), int),
        "records_read must be an int",
    )
    # additive v1 keys: absent in pre-roaring documents, so optional
    if "engine" in document:
        _require(isinstance(document["engine"], str), "engine must be str")
    if "engine_evidence" in document:
        _require(
            isinstance(document["engine_evidence"], dict),
            "engine_evidence must be an object",
        )
    passes = document.get("passes")
    _require(isinstance(passes, list), "passes must be a list")
    for entry in passes:
        _require(isinstance(entry, dict), "each pass must be an object")
        _require(
            isinstance(entry.get("pass_number"), int) and entry["pass_number"] >= 1,
            "pass_number must be an int >= 1",
        )
        for key, value in entry.items():
            if key == "seconds":
                _require(
                    isinstance(value, (int, float)),
                    "pass seconds must be a number",
                )
            else:
                _require(
                    isinstance(value, int),
                    "pass field %r must be an int" % key,
                )


#: The wire ops an access-log record may describe (control ops — ping,
#: stats, metrics, shutdown — are not queries and are not logged).
REQUEST_OPS = ("mine", "rules")

#: Optional ``request`` record fields that must be non-negative ints.
_REQUEST_INT_FIELDS = (
    "cost", "passes", "cache_hits", "cache_misses", "result_size",
    "threshold",
)

#: Optional ``request`` record fields that must be non-negative numbers.
_REQUEST_NUMBER_FIELDS = ("queue_wait_s", "min_support")


def validate_request_record(record: Dict[str, Any]) -> None:
    """Validate one access-log line (schema v4 ``request`` records)."""
    _require_version(record, "request record")
    _require(
        record["v"] >= 4,
        "request records require schema v4, got v%r" % record.get("v"),
    )
    _require(
        record.get("type") == "request",
        "request record type must be 'request', got %r" % record.get("type"),
    )
    _require(
        isinstance(record.get("ts"), (int, float)),
        "request ts must be a number",
    )
    _require(
        isinstance(record.get("id"), str) and bool(record["id"]),
        "request id must be a non-empty str",
    )
    _require(
        record.get("op") in REQUEST_OPS,
        "request op must be one of %s, got %r"
        % (list(REQUEST_OPS), record.get("op")),
    )
    for key in ("ok", "admitted"):
        _require(
            isinstance(record.get(key), bool),
            "request %s must be a bool" % key,
        )
    seconds = record.get("seconds")
    _require(
        isinstance(seconds, (int, float))
        and not isinstance(seconds, bool)
        and seconds >= 0,
        "request seconds must be a number >= 0",
    )
    for key in _REQUEST_INT_FIELDS:
        if key in record:
            _require(
                isinstance(record[key], int)
                and not isinstance(record[key], bool)
                and record[key] >= 0,
                "request %s must be an int >= 0" % key,
            )
    for key in _REQUEST_NUMBER_FIELDS:
        if key in record:
            _require(
                isinstance(record[key], (int, float))
                and not isinstance(record[key], bool)
                and record[key] >= 0,
                "request %s must be a number >= 0" % key,
            )
    if "eta_s" in record:
        eta = record["eta_s"]
        _require(
            eta is None
            or (
                isinstance(eta, (int, float))
                and not isinstance(eta, bool)
                and eta >= 0
            ),
            "request eta_s must be a number >= 0 or null",
        )
    if "warm" in record:
        _require(isinstance(record["warm"], bool), "request warm must be a bool")
    if "error" in record:
        _require(isinstance(record["error"], str), "request error must be str")
    _require_scalar_attrs(
        {k: v for k, v in record.items() if k not in ("v", "type")},
        "request",
    )


def validate_request_log_lines(lines: Iterable[str]) -> int:
    """Validate a JSONL access log; returns the number of records."""
    count = 0
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SchemaError("line %d is not JSON: %s" % (number, exc)) from None
        try:
            validate_request_record(record)
        except SchemaError as exc:
            raise SchemaError("line %d: %s" % (number, exc)) from None
        count += 1
    return count


def validate_request_log_file(path: str) -> int:
    """Validate an access-log file on disk; returns the record count."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_request_log_lines(handle)


def validate_trace_lines(lines: Iterable[str]) -> int:
    """Validate a JSONL trace stream; returns the number of events.

    The first event must be the ``meta`` header.  Raises
    :class:`SchemaError` naming the offending line number.
    """
    count = 0
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SchemaError("line %d is not JSON: %s" % (number, exc)) from None
        try:
            validate_trace_event(event)
        except SchemaError as exc:
            raise SchemaError("line %d: %s" % (number, exc)) from None
        if count == 0:
            _require(
                event.get("type") == "meta",
                "line %d: first trace event must be the meta header" % number,
            )
        count += 1
    return count


def validate_trace_file(path: str) -> int:
    """Validate a trace file on disk; returns the number of events."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_trace_lines(handle)


def validate_metrics_file(path: str) -> None:
    with open(path, "r", encoding="utf-8") as handle:
        validate_metrics_document(json.load(handle))


def main(argv: Optional[List[str]] = None) -> int:
    """Validate trace / metrics files; exits non-zero on the first error."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.schema",
        description="validate observability output against the v%d schema"
        % SCHEMA_VERSION,
    )
    parser.add_argument("trace", nargs="*", help="JSONL trace files")
    parser.add_argument(
        "--metrics", action="append", default=[], metavar="PATH",
        help="metrics JSON documents (repeatable)",
    )
    parser.add_argument(
        "--requests", action="append", default=[], metavar="PATH",
        help="JSONL access logs from 'pincer serve' (repeatable)",
    )
    args = parser.parse_args(argv)
    if not args.trace and not args.metrics and not args.requests:
        parser.error("give at least one trace, --metrics or --requests file")
    try:
        for path in args.trace:
            events = validate_trace_file(path)
            sys.stderr.write("%s: %d events ok\n" % (path, events))
        for path in args.metrics:
            validate_metrics_file(path)
            sys.stderr.write("%s: metrics ok\n" % path)
        for path in args.requests:
            records = validate_request_log_file(path)
            sys.stderr.write("%s: %d request records ok\n" % (path, records))
    except (SchemaError, OSError) as exc:
        sys.stderr.write("invalid: %s\n" % exc)
        return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
