"""The :class:`Instrumentation` bundle threaded through miners and engines.

One object carries the whole observability surface — a tracer and a
metrics registry — so instrumented code needs a single optional ``obs``
parameter instead of three.  The module-level :data:`NOOP` instance is the
default everywhere: its ``enabled`` flag is False, its spans are the
shared no-op span, and its instruments swallow writes, which is what makes
instrumentation safe to leave compiled into every hot path.

Conventions for instrumented code:

* accept ``obs: Optional[Instrumentation] = None`` and normalise with
  ``obs = obs if obs is not None else NOOP``;
* wrap per-pass (not per-item) work in ``with obs.span(...)``, which is
  cheap enough unguarded;
* guard anything finer — per-candidate counters, attribute dictionaries —
  behind ``if obs.enabled:``.

:func:`capture` is the factory the CLI and tests use to build an enabled
bundle from output paths, and :meth:`Instrumentation.finish` writes the
metrics document and closes the trace sink.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NullRegistry,
)
from .progress import NOOP_PROGRESS, NoopProgress, ProgressReporter
from .telemetry import TelemetryConfig
from .tracing import NOOP_SPAN, NOOP_TRACER, NoopSpan, NoopTracer, Span, Tracer

__all__ = ["Instrumentation", "NOOP", "capture"]


class Instrumentation:
    """Tracer + metrics registry (+ optional progress) behind one handle."""

    enabled = True

    def __init__(
        self,
        tracer: Optional[Union[Tracer, NoopTracer]] = None,
        metrics: Optional[MetricsRegistry] = None,
        metrics_path: Optional[str] = None,
        progress: Optional[Union[ProgressReporter, NoopProgress]] = None,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics_path = metrics_path
        self.progress = progress if progress is not None else NOOP_PROGRESS
        #: live telemetry plane request; multi-process engines that see a
        #: config here build an EngineTelemetry segment at attach
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    # delegation shims — the whole instrumented surface in one namespace
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Union[Span, NoopSpan]:
        return self.tracer.span(name, **attrs)

    def bind(self, sink: Optional[list] = None, **attrs: Any):
        """Ambient span context (see :meth:`Tracer.bind`): a context
        manager stamping ``attrs`` on every span opened inside it and
        collecting closed span events into ``sink`` when given."""
        return self.tracer.bind(sink=sink, **attrs)

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self.metrics.histogram(name)

    # ------------------------------------------------------------------

    def finish(self) -> None:
        """Write the metrics document (if a path was given), close the trace."""
        if self.metrics_path is not None:
            self.metrics.write(self.metrics_path)
        profiler = getattr(self.tracer, "profiler", None)
        self.tracer.close()
        if profiler is not None:
            profiler.uninstall()

    def __enter__(self) -> "Instrumentation":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.finish()


class _NoopInstrumentation(Instrumentation):
    """The shared disabled bundle; every operation is free."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(
            tracer=NOOP_TRACER, metrics=NullRegistry(), progress=NOOP_PROGRESS
        )

    def span(self, name: str, **attrs: Any) -> NoopSpan:
        return NOOP_SPAN

    def bind(self, sink: Optional[list] = None, **attrs: Any) -> NoopSpan:
        return NOOP_SPAN

    def counter(self, name: str) -> Counter:
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def finish(self) -> None:
        return None


NOOP = _NoopInstrumentation()


def capture(
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    producer: str = "repro",
    profile: bool = False,
    progress: Optional[Union[bool, ProgressReporter, NoopProgress]] = None,
    trace_max_events: Optional[int] = None,
    telemetry: Optional[Union[bool, str, TelemetryConfig]] = None,
) -> Instrumentation:
    """Build an :class:`Instrumentation` from output paths.

    With nothing requested the shared :data:`NOOP` bundle is returned, so
    callers can wire CLI flags straight through without branching.

    ``profile=True`` attaches a
    :class:`~repro.obs.resources.SpanProfiler` to the tracer (requires
    ``trace_path`` — the attribution lands in span attrs) and starts
    tracemalloc for the bundle's lifetime; ``trace_max_events`` caps the
    trace file (a ``truncated`` marker replaces the overflow);
    ``progress`` threads a heartbeat reporter through to the miners —
    pass a :class:`~repro.obs.progress.ProgressReporter` or ``True`` for
    a default stderr reporter; ``telemetry`` requests the live
    shared-memory heartbeat plane (``True``/``"auto"`` for a generated
    segment name, a string to pin the name for ``pincer obs top``, or a
    full :class:`~repro.obs.telemetry.TelemetryConfig`).
    """
    if progress is True:
        progress = ProgressReporter()
    elif progress is False:
        progress = None
    telemetry = TelemetryConfig.from_option(telemetry)
    if (
        trace_path is None
        and metrics_path is None
        and progress is None
        and telemetry is None
    ):
        if profile:
            raise ValueError("profile=True requires a trace_path to land in")
        return NOOP
    if profile and trace_path is None:
        raise ValueError("profile=True requires a trace_path to land in")
    profiler = None
    if profile:
        from .resources import SpanProfiler

        profiler = SpanProfiler().install()
    tracer = (
        Tracer.to_path(
            trace_path,
            producer=producer,
            max_events=trace_max_events,
            profiler=profiler,
        )
        if trace_path is not None
        else NOOP_TRACER
    )
    metrics = MetricsRegistry()
    if progress is not None and isinstance(progress, ProgressReporter):
        if progress._tracer is None and tracer is not NOOP_TRACER:
            progress._tracer = tracer
        if progress._metrics is None:
            progress._metrics = metrics
    return Instrumentation(
        tracer=tracer,
        metrics=metrics,
        metrics_path=metrics_path,
        progress=progress,
        telemetry=telemetry,
    )
