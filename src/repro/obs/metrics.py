"""Process-local metrics registry: counters, gauges, histograms.

The registry is a named bag of three instrument kinds, all plain Python
objects with ``__slots__`` so the enabled path costs one dict lookup plus
one attribute update per observation:

* :class:`Counter` — monotonically increasing int (``inc``);
* :class:`Gauge` — last-written value (``set``);
* :class:`Histogram` — running ``count/total/min/max/sumsq`` summary
  (``observe``; ``sumsq`` powers the exported ``stddev``).  Deliberately
  no buckets: the consumers here (bench records, the metrics JSON
  document) want cheap summaries, and keeping the per-observation cost at
  five scalar updates is what lets engines observe every batch.

Disabled instrumentation uses :data:`NULL_INSTRUMENT` — a single object
answering ``inc``/``set``/``observe`` with a no-op — handed out by
:class:`NullRegistry` without allocating anything per call.

Registries serialise to the versioned ``metrics`` document of
:mod:`repro.obs.schema` via :meth:`MetricsRegistry.to_dict`, and
cross-process aggregation (the sharded engine's workers) goes through
:meth:`MetricsRegistry.merge_counters`.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Mapping, Union

from .schema import SCHEMA_VERSION

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NullRegistry",
]

Number = Union[int, float]


class Counter:
    """Monotonic int counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """Running summary (count, total, min, max, sumsq) of observed values.

    The sum of squares rides along so :meth:`to_dict` can report the
    population standard deviation without keeping samples — the summary
    stays five scalar updates per observation, no buckets.
    """

    __slots__ = ("count", "total", "min", "max", "sumsq")

    def __init__(self) -> None:
        self.count = 0
        self.total: Number = 0
        self.min: Number = 0
        self.max: Number = 0
        self.sumsq: Number = 0

    def observe(self, value: Number) -> None:
        if self.count == 0 or value < self.min:
            self.min = value
        if self.count == 0 or value > self.max:
            self.max = value
        self.count += 1
        self.total += value
        self.sumsq += value * value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation of the observed values."""
        if not self.count:
            return 0.0
        variance = self.sumsq / self.count - self.mean ** 2
        return math.sqrt(variance) if variance > 0 else 0.0

    def to_dict(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "sumsq": self.sumsq,
            "stddev": round(self.stddev, 9),
        }


class _NullInstrument:
    """Answers every instrument method with a no-op (the disabled path)."""

    __slots__ = ()
    value = 0
    count = 0

    def inc(self, amount: int = 1) -> None:
        return None

    def set(self, value: Number) -> None:
        return None

    def observe(self, value: Number) -> None:
        return None


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named counters/gauges/histograms plus JSON serialisation."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    def merge_counters(self, values: Mapping[str, int]) -> None:
        """Add a mapping of counter increments (per-shard aggregation)."""
        for name, amount in values.items():
            self.counter(name).inc(amount)

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The versioned ``metrics`` document (see :mod:`repro.obs.schema`)."""
        return {
            "v": SCHEMA_VERSION,
            "type": "metrics",
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def write(self, path: str) -> None:
        """Dump the metrics document to ``path`` as pretty JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


class NullRegistry(MetricsRegistry):
    """Disabled registry: every instrument is :data:`NULL_INSTRUMENT`."""

    enabled = False

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:  # type: ignore[override]
        return NULL_INSTRUMENT  # type: ignore[return-value]
