"""Process-local metrics registry: counters, gauges, histograms.

The registry is a named bag of three instrument kinds, all plain Python
objects with ``__slots__`` so the enabled path costs one dict lookup plus
one attribute update per observation:

* :class:`Counter` — monotonically increasing int (``inc``);
* :class:`Gauge` — last-written value (``set``);
* :class:`Histogram` — running ``count/total/min/max/sumsq`` summary
  (``observe``; ``sumsq`` powers the exported ``stddev``) plus a bounded
  reservoir sample feeding :meth:`Histogram.percentile` — tail latency
  (p95/p99) cannot be reconstructed from moments alone.  Deliberately no
  buckets: the consumers here (bench records, the metrics JSON document)
  want cheap summaries, and keeping the per-observation cost at a handful
  of scalar updates is what lets engines observe every batch.

Disabled instrumentation uses :data:`NULL_INSTRUMENT` — a single object
answering ``inc``/``set``/``observe`` with a no-op — handed out by
:class:`NullRegistry` without allocating anything per call.

Instrument *creation* (the name → instrument lookup) and cross-process
merges are guarded by a lock, so a coordinator thread — the telemetry
collector, a daemon front-end — can write into the same registry as the
mining thread.  Individual ``inc``/``set``/``observe`` calls stay
lock-free: they are single attribute updates, and the GIL already makes
them atomic enough for monotonic counters and last-write gauges.

Registries serialise to the versioned ``metrics`` document of
:mod:`repro.obs.schema` via :meth:`MetricsRegistry.to_dict`, and
cross-process aggregation (the sharded engine's workers) goes through
:meth:`MetricsRegistry.merge_counters`.
"""

from __future__ import annotations

import json
import math
import random
import threading
from typing import Any, Dict, List, Mapping, Union

from .schema import SCHEMA_VERSION

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NullRegistry",
]

Number = Union[int, float]

#: Bounded sample kept per histogram for percentile estimation.  512
#: values bound the p99 estimate's relative rank error to ~±0.6% of the
#: distribution while costing at most 4 KiB per histogram.
RESERVOIR_SIZE = 512


class Counter:
    """Monotonic int counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """Running summary (count, total, min, max, sumsq) of observed values.

    The sum of squares rides along so :meth:`to_dict` can report the
    population standard deviation without keeping samples.  A bounded
    reservoir (:data:`RESERVOIR_SIZE` values, uniform sample over the
    whole observation stream) additionally powers :meth:`percentile` —
    per-query SLOs need p95/p99, and mean/stddev cannot describe a tail.
    The reservoir's RNG is seeded per instance so documents are
    reproducible run to run.
    """

    __slots__ = ("count", "total", "min", "max", "sumsq", "_sample", "_rng")

    def __init__(self) -> None:
        self.count = 0
        self.total: Number = 0
        self.min: Number = 0
        self.max: Number = 0
        self.sumsq: Number = 0
        self._sample: List[Number] = []
        self._rng = random.Random(0x5EED)

    def observe(self, value: Number) -> None:
        if self.count == 0 or value < self.min:
            self.min = value
        if self.count == 0 or value > self.max:
            self.max = value
        self.count += 1
        self.total += value
        self.sumsq += value * value
        # Vitter's algorithm R: after the reservoir fills, each further
        # value replaces a uniformly-chosen slot with probability R/count
        if len(self._sample) < RESERVOIR_SIZE:
            self._sample.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < RESERVOIR_SIZE:
                self._sample[slot] = value

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) of the sampled distribution.

        Nearest-rank over the bounded reservoir: exact while ``count``
        stays within :data:`RESERVOIR_SIZE`, a uniform-sample estimate
        beyond it.  Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        rank = max(0, min(len(ordered) - 1, math.ceil(p / 100.0 * len(ordered)) - 1))
        return float(ordered[rank])

    @property
    def samples(self) -> List[Number]:
        """A copy of the reservoir sample.  Merged views — the rolling
        SLO window concatenating its buckets' reservoirs — need the raw
        values; moments alone cannot be re-ranked."""
        return list(self._sample)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation of the observed values."""
        if not self.count:
            return 0.0
        variance = self.sumsq / self.count - self.mean ** 2
        return math.sqrt(variance) if variance > 0 else 0.0

    def to_dict(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "sumsq": self.sumsq,
            "stddev": round(self.stddev, 9),
            "p50": round(self.percentile(50.0), 9),
            "p95": round(self.percentile(95.0), 9),
            "p99": round(self.percentile(99.0), 9),
        }


class _NullInstrument:
    """Answers every instrument method with a no-op (the disabled path)."""

    __slots__ = ()
    value = 0
    count = 0

    def inc(self, amount: int = 1) -> None:
        return None

    def set(self, value: Number) -> None:
        return None

    def observe(self, value: Number) -> None:
        return None

    def percentile(self, p: float) -> float:
        return 0.0


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named counters/gauges/histograms plus JSON serialisation.

    Instrument creation and :meth:`merge_counters` are serialised by an
    internal lock, so a coordinator thread (the telemetry collector, a
    daemon front-end) and the mining thread can share one registry; the
    hot-path writes on an *already created* instrument stay lock-free.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = self._histograms[name] = Histogram()
        return instrument

    def merge_counters(self, values: Mapping[str, int]) -> None:
        """Add a mapping of counter increments (per-shard aggregation)."""
        with self._lock:
            for name, amount in values.items():
                counter = self._counters.get(name)
                if counter is None:
                    counter = self._counters[name] = Counter()
                counter.inc(amount)

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The versioned ``metrics`` document (see :mod:`repro.obs.schema`)."""
        with self._lock:  # freeze the name sets against concurrent creation
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        return {
            "v": SCHEMA_VERSION,
            "type": "metrics",
            "counters": {name: counter.value for name, counter in counters},
            "gauges": {name: gauge.value for name, gauge in gauges},
            "histograms": {
                name: histogram.to_dict() for name, histogram in histograms
            },
        }

    def write(self, path: str) -> None:
        """Dump the metrics document to ``path`` as pretty JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


class NullRegistry(MetricsRegistry):
    """Disabled registry: every instrument is :data:`NULL_INSTRUMENT`."""

    enabled = False

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:  # type: ignore[override]
        return NULL_INSTRUMENT  # type: ignore[return-value]
