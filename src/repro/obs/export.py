"""Exporters: JSONL traces -> Chrome/Perfetto, metrics -> Prometheus.

The native formats of :mod:`repro.obs` are deliberately minimal (JSONL
spans, one metrics JSON object).  This module converts them into the two
industry-standard formats tooling already exists for:

* **Chrome trace-event JSON** (``--format perfetto``) — loadable in
  ``chrome://tracing`` and https://ui.perfetto.dev.  Each span becomes a
  complete (``"ph": "X"``) event with microsecond timestamps; span attrs
  ride in ``args``.  ``progress`` events become counter (``"ph": "C"``)
  tracks for ``|C_k|`` / ``|MFCS|`` / ``|MFS|``, so the pincer movement
  is visible as two converging curves right above the span rows.
* **Prometheus text exposition** (``--format prometheus``) — counters map
  to ``repro_<name>_total``, gauges to ``repro_<name>``, histograms to
  the summary-style ``_count``/``_sum`` pair plus ``_min``/``_max``/
  ``_stddev``/``_p50``/``_p95``/``_p99`` gauges (the registry keeps
  summaries and a sampling reservoir, not buckets).  ``telemetry``
  events become per-second throughput counter tracks and
  ``shard_stalled`` events instant markers in the Perfetto view.

Run as a module::

    python -m repro.obs.export run.jsonl --format perfetto --out run.perfetto.json
    python -m repro.obs.export metrics.json --format prometheus
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "load_trace_events",
    "metrics_to_prometheus",
    "trace_to_perfetto",
]

#: progress-event fields rendered as Perfetto counter tracks
_PROGRESS_COUNTERS = ("candidates", "mfcs_size", "mfs_size")

#: telemetry-event fields rendered as Perfetto counter tracks
_TELEMETRY_COUNTERS = ("candidates_per_s", "rows_per_s", "workers_active")


def load_trace_events(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL trace file into a list of event dicts."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def trace_to_perfetto(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert trace events into a Chrome trace-event JSON document.

    Timestamps are microseconds relative to the earliest event, keeping
    the numbers small and the viewer's time origin at the run start.
    """
    events = list(events)
    pid = 1
    producer = "repro"
    for event in events:
        if event.get("type") == "meta":
            pid = event.get("pid", 1)
            producer = event.get("producer", "repro")
            break
    starts = [
        event["ts"]
        for event in events
        if event.get("type")
        in ("span", "progress", "truncated", "telemetry", "shard_stalled")
        and isinstance(event.get("ts"), (int, float))
    ]
    origin = min(starts) if starts else 0.0

    def micros(ts: float) -> float:
        return round((ts - origin) * 1e6, 3)

    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 1,
            "args": {"name": producer},
        }
    ]
    for event in events:
        kind = event.get("type")
        if kind == "span":
            trace_events.append(
                {
                    "name": event["name"],
                    "cat": "repro",
                    "ph": "X",
                    "ts": micros(event["ts"]),
                    "dur": round(event.get("dur", 0.0) * 1e6, 3),
                    "pid": pid,
                    "tid": 1,
                    "args": dict(event.get("attrs", {})),
                }
            )
        elif kind == "progress":
            for field in _PROGRESS_COUNTERS:
                value = event.get(field)
                if isinstance(value, (int, float)):
                    trace_events.append(
                        {
                            "name": field,
                            "cat": "repro",
                            "ph": "C",
                            "ts": micros(event["ts"]),
                            "pid": pid,
                            "tid": 1,
                            "args": {field: value},
                        }
                    )
        elif kind == "telemetry":
            for field in _TELEMETRY_COUNTERS:
                value = event.get(field)
                if isinstance(value, (int, float)):
                    trace_events.append(
                        {
                            "name": field,
                            "cat": "repro",
                            "ph": "C",
                            "ts": micros(event["ts"]),
                            "pid": pid,
                            "tid": 1,
                            "args": {field: value},
                        }
                    )
        elif kind == "shard_stalled":
            trace_events.append(
                {
                    "name": "shard %d %s (%.1fs)"
                    % (
                        event.get("shard", -1),
                        event.get("kind", "stalled"),
                        event.get("age_s", 0.0),
                    ),
                    "cat": "repro",
                    "ph": "i",
                    "s": "g",
                    "ts": micros(event.get("ts", origin)),
                    "pid": pid,
                    "tid": 1,
                    "args": {
                        key: event[key]
                        for key in ("shard", "kind", "age_s", "threshold_s", "pid")
                        if key in event
                    },
                }
            )
        elif kind == "truncated":
            trace_events.append(
                {
                    "name": "trace truncated (%d dropped)"
                    % event.get("dropped", 0),
                    "cat": "repro",
                    "ph": "i",
                    "s": "g",
                    "ts": micros(event.get("ts", origin)),
                    "pid": pid,
                    "tid": 1,
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str) -> str:
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():  # metric names cannot lead digit
        sanitized = "_" + sanitized
    return prefix + sanitized


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def metrics_to_prometheus(
    document: Dict[str, Any], prefix: str = "repro_"
) -> str:
    """Render a metrics document in Prometheus text exposition format."""
    lines: List[str] = []
    for name, value in sorted(document.get("counters", {}).items()):
        metric = _prom_name(name, prefix) + "_total"
        lines.append("# TYPE %s counter" % metric)
        lines.append("%s %s" % (metric, _format_value(value)))
    for name, value in sorted(document.get("gauges", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append("# TYPE %s gauge" % metric)
        lines.append("%s %s" % (metric, _format_value(value)))
    for name, cells in sorted(document.get("histograms", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append("# TYPE %s summary" % metric)
        lines.append("%s_count %s" % (metric, _format_value(cells["count"])))
        lines.append("%s_sum %s" % (metric, _format_value(cells["total"])))
        for key in ("min", "max", "stddev", "p50", "p95", "p99"):
            if key in cells:
                lines.append(
                    "# TYPE %s_%s gauge" % (metric, key)
                )
                lines.append(
                    "%s_%s %s" % (metric, key, _format_value(cells[key]))
                )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.export`` — convert traces and metrics."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="export repro.obs output to standard formats",
    )
    parser.add_argument(
        "input",
        help="a JSONL trace (perfetto) or metrics JSON document (prometheus)",
    )
    parser.add_argument(
        "--format", required=True, choices=("perfetto", "prometheus"),
        help="perfetto: Chrome trace-event JSON; prometheus: text exposition",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="output file (default: stdout)",
    )
    parser.add_argument(
        "--prefix", default="repro_",
        help="metric name prefix for --format prometheus",
    )
    args = parser.parse_args(argv)
    try:
        if args.format == "perfetto":
            document = trace_to_perfetto(load_trace_events(args.input))
            rendered = json.dumps(document, indent=2, sort_keys=True) + "\n"
        else:
            with open(args.input, "r", encoding="utf-8") as handle:
                rendered = metrics_to_prometheus(
                    json.load(handle), prefix=args.prefix
                )
    except (OSError, ValueError, KeyError) as exc:
        sys.stderr.write("export failed: %s\n" % exc)
        return 1
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        sys.stderr.write("wrote %s\n" % args.out)
    else:
        sys.stdout.write(rendered)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
