"""Structured JSONL access log for the ``pincer serve`` query plane.

One line per wire query (schema v4 ``request`` records, see
:mod:`repro.obs.schema`): request id, op, admission price and decision,
queue wait, passes run, cache hits/misses, result size, latency, and the
ETA quoted to the client.  Lines are written whole under a lock and
flushed immediately, so concurrent handler threads can never tear or
interleave records and a crashed daemon loses at most the query in
flight.

Riding along is a bounded **slow-query recorder**: every admitted,
successful query's latency feeds an EWMA, and a query slower than
``slow_factor`` times the smoothed latency (never below
``slow_min_seconds``) gets its full span subtree — the events collected
by :meth:`~repro.obs.tracing.Tracer.bind` during the query — snapshotted
into an on-disk ring of at most ``slow_capacity`` files.  The ring gives
operators the *trace* of the outliers the access log can only name,
without ever growing the disk footprint: slot files are overwritten
oldest-first.
"""

from __future__ import annotations

import glob
import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

from .schema import SCHEMA_VERSION

__all__ = ["RequestLog", "SlowQueryRing"]

#: Default floor under which a query is never "slow" — warm cache hits
#: jitter in the milliseconds and should not churn the ring.
DEFAULT_SLOW_MIN_SECONDS = 0.5

#: Default outlier factor over the smoothed latency.
DEFAULT_SLOW_FACTOR = 4.0


class SlowQueryRing:
    """Fixed-capacity on-disk ring of slow-query snapshots.

    Each snapshot is one JSON file ``slow-NNNN.json`` holding the access
    record plus the span events of that query.  Slot ``seq % capacity``
    is overwritten, so the ring holds the most recent ``capacity`` slow
    queries and nothing older.  Writes go through a temp file and
    ``os.replace`` so a reader never sees a half-written snapshot.
    """

    def __init__(self, directory: str, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.directory = directory
        self.capacity = int(capacity)
        self._seq = 0
        os.makedirs(directory, exist_ok=True)

    def snapshot(
        self,
        record: Dict[str, Any],
        spans: Optional[List[Dict[str, Any]]] = None,
    ) -> str:
        """Write one snapshot; returns the slot file path."""
        slot = self._seq % self.capacity
        self._seq += 1
        path = os.path.join(self.directory, "slow-%04d.json" % slot)
        tmp = path + ".tmp"
        document = {
            "v": SCHEMA_VERSION,
            "type": "slow_query",
            "ts": time.time(),
            "seq": self._seq - 1,
            "record": record,
            "spans": list(spans) if spans else [],
        }
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        return path

    def entries(self) -> List[Dict[str, Any]]:
        """All snapshots on disk, oldest sequence first."""
        documents = []
        for path in sorted(glob.glob(os.path.join(self.directory, "slow-*.json"))):
            with open(path, "r", encoding="utf-8") as handle:
                documents.append(json.load(handle))
        documents.sort(key=lambda doc: doc.get("seq", 0))
        return documents


class RequestLog:
    """Append-only JSONL access log plus the slow-query recorder.

    Parameters
    ----------
    path:
        The JSONL file; opened in append mode so a restarted daemon
        continues the same log.
    slow_dir:
        Directory for the :class:`SlowQueryRing`; None disables slow
        recording (the access log still gets every record).
    slow_capacity / slow_min_seconds / slow_factor:
        Ring size and outlier thresholds (see the module docstring).
    alpha:
        EWMA smoothing weight for the latency baseline.
    """

    def __init__(
        self,
        path: str,
        slow_dir: Optional[str] = None,
        slow_capacity: int = 32,
        slow_min_seconds: float = DEFAULT_SLOW_MIN_SECONDS,
        slow_factor: float = DEFAULT_SLOW_FACTOR,
        alpha: float = 0.3,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.path = path
        self.slow_min_seconds = float(slow_min_seconds)
        self.slow_factor = float(slow_factor)
        self._alpha = alpha
        self._ewma: Optional[float] = None
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")
        self.ring = (
            SlowQueryRing(slow_dir, capacity=slow_capacity)
            if slow_dir is not None
            else None
        )
        self.records_written = 0
        self.slow_recorded = 0

    # ------------------------------------------------------------------

    def log(
        self,
        record: Dict[str, Any],
        spans: Optional[List[Dict[str, Any]]] = None,
    ) -> Dict[str, Any]:
        """Write one access record; returns the full line's payload.

        ``record`` carries the caller's fields (id, op, timings, ...);
        the envelope (``v``/``type``/``ts``) is stamped here.  When the
        record describes an admitted, successful query, its latency
        feeds the slow-query EWMA, and outliers get snapshotted together
        with ``spans`` into the ring.
        """
        payload: Dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "type": "request",
            "ts": time.time(),
        }
        payload.update(record)
        line = json.dumps(payload, separators=(",", ":"))
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            self.records_written += 1
            seconds = payload.get("seconds")
            if (
                payload.get("ok")
                and payload.get("admitted")
                and isinstance(seconds, (int, float))
            ):
                slow = self._is_slow(float(seconds))
                self._observe(float(seconds))
                if slow and self.ring is not None:
                    self.ring.snapshot(payload, spans)
                    self.slow_recorded += 1
        return payload

    def _is_slow(self, seconds: float) -> bool:
        if self._ewma is None:
            # no baseline yet: only the absolute floor applies
            return seconds > self.slow_min_seconds
        threshold = max(self.slow_min_seconds, self.slow_factor * self._ewma)
        return seconds > threshold

    def _observe(self, seconds: float) -> None:
        self._ewma = (
            seconds
            if self._ewma is None
            else (1.0 - self._alpha) * self._ewma + self._alpha * seconds
        )

    # ------------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            try:
                self._handle.flush()
                self._handle.close()
            except (OSError, ValueError):  # pragma: no cover - closed twice
                pass

    def __enter__(self) -> "RequestLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
